"""Live fleet monitoring: provisional verdicts while trucks still drive.

Trains a small LEAD model, then replays an unseen day's trajectories as
one interleaved, slightly out-of-order ping feed through the
:class:`repro.stream.FleetSessionManager` — exactly what a regulator's
ingest service would run.  Every simulated half hour the manager ticks:
each session that changed gets a fresh provisional verdict (candidate
pair, probability, confidence tier).  Watch the verdicts sharpen as stay
points close, then converge at end-of-day to the offline
``LEAD.detect`` answer — bit for bit.

Usage::

    python examples/live_monitoring.py
"""

import numpy as np

from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                   WorldConfig, generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.stream import (FleetConfig, FleetSessionManager,
                          dataset_ping_stream, scramble_stream)

TICK_EVERY_S = 1800.0  # one detection pass per simulated half hour


def main() -> None:
    # 1. Offline stage: world, labelled days, a small trained model.
    world = SyntheticWorld(WorldConfig(seed=11))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=40, num_trucks=18, seed=11),
        world=world)
    train, _, test = dataset.split_by_truck((8, 1, 1), seed=0)
    config = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, max_samples_per_epoch=120, seed=0),
        detector_training=DetectorTrainingConfig(epochs=4, seed=0))
    lead = LEAD(world.pois, config)
    lead.fit(train.samples, verbose=True)

    # 2. The live feed: unseen truck-days, interleaved in time order,
    #    scrambled within a small window like a real uplink.
    pings = scramble_stream(dataset_ping_stream(test.samples),
                            window=4, seed=0)
    manager = FleetSessionManager(lead, FleetConfig(max_sessions=256))
    print(f"\nreplaying {len(pings)} pings from {len(test)} trucks "
          f"(tick every {TICK_EVERY_S / 60:.0f} simulated minutes)\n")

    announced: dict[tuple[str, str], tuple] = {}

    def announce(verdicts) -> None:
        for verdict in verdicts:
            key = (verdict.truck_id, verdict.day)
            state = (verdict.pair, verdict.confidence, verdict.final)
            if announced.get(key) != state:
                announced[key] = state
                print(f"  {verdict.summary()}")

    next_tick = pings[0].t + TICK_EVERY_S
    for ping in pings:
        while ping.t >= next_tick:
            announce(manager.tick())
            next_tick += TICK_EVERY_S
        manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                       day=ping.day)

    # 3. End of day: flush and verify convergence to the offline answer.
    print("\nend of day — final verdicts:")
    finals = manager.flush_all()
    announce(finals)
    converged = 0
    for sample in test.samples:
        trajectory = sample.trajectory
        offline = lead.detect(trajectory)
        final = next(v for v in finals
                     if (v.truck_id, v.day) == (str(trajectory.truck_id),
                                                str(trajectory.day)))
        if offline is None:
            assert final.pair is None
            continue
        assert final.pair == offline.pair
        assert np.allclose(final.distribution, offline.distribution,
                           rtol=1e-9, atol=0.0)
        converged += 1
    stats = manager.stats()
    print(f"\n{converged} streamed verdicts converged exactly to "
          f"offline LEAD.detect")
    print(f"fleet counters: {stats['fleet']}")
    print(f"session totals: {stats['sessions']}")
    if "feature_cache" in stats:
        print(f"feature cache:  hit_rate="
              f"{stats['feature_cache']['hit_rate']:.2f} "
              f"(closed segments re-served every tick)")


if __name__ == "__main__":
    main()
