"""Automatic waybill generation from detected loaded trajectories.

The paper's introduction motivates LEAD with the poor quality of manually
filled waybills: drivers keep the system's default times (8:00 load,
17:00 unload) and type coarse or wrong addresses.  This example simulates
that behaviour, then generates waybills from LEAD detections and compares
both against ground truth.

Usage::

    python examples/waybill_generation.py
"""

from dataclasses import dataclass

import numpy as np

from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                   WorldConfig, generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.geo import haversine_m


@dataclass
class Waybill:
    loading_t: float       # seconds since midnight
    unloading_t: float
    loading_lat: float
    loading_lng: float
    unloading_lat: float
    unloading_lng: float


def driver_waybill(label, rng) -> Waybill:
    """A low-quality manual waybill (default times, coarse addresses)."""
    default_load = 8 * 3600.0      # "8:00 am", regardless of reality
    default_unload = 17 * 3600.0   # "5:00 pm"
    coarse = 3000.0 / 111_000.0    # ~3 km address error
    return Waybill(
        loading_t=default_load, unloading_t=default_unload,
        loading_lat=label.loading_lat + rng.normal(0, coarse),
        loading_lng=label.loading_lng + rng.normal(0, coarse),
        unloading_lat=label.unloading_lat + rng.normal(0, coarse),
        unloading_lng=label.unloading_lng + rng.normal(0, coarse))


def lead_waybill(result) -> Waybill:
    """A waybill generated from the detected loaded trajectory."""
    candidate = result.candidate
    loading = candidate.stay_points[0]
    unloading = candidate.stay_points[-1]
    return Waybill(
        loading_t=loading.arrival_t, unloading_t=unloading.arrival_t,
        loading_lat=loading.centroid[0], loading_lng=loading.centroid[1],
        unloading_lat=unloading.centroid[0],
        unloading_lng=unloading.centroid[1])


def waybill_errors(waybill: Waybill, label) -> tuple[float, float]:
    """(mean time error minutes, mean location error meters) vs truth."""
    time_error = (abs(waybill.loading_t - label.loading.start)
                  + abs(waybill.unloading_t - label.unloading.start)) / 2
    location_error = (
        haversine_m(waybill.loading_lat, waybill.loading_lng,
                    label.loading_lat, label.loading_lng)
        + haversine_m(waybill.unloading_lat, waybill.unloading_lng,
                      label.unloading_lat, label.unloading_lng)) / 2
    return time_error / 60.0, location_error


def main() -> None:
    world = SyntheticWorld(WorldConfig(seed=23))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=40, num_trucks=18, seed=23),
        world=world)
    train, _, test = dataset.split_by_truck((8, 1, 1), seed=0)

    lead = LEAD(world.pois, LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, max_samples_per_epoch=120, seed=0),
        detector_training=DetectorTrainingConfig(epochs=4, seed=0)))
    lead.fit(train.samples)

    rng = np.random.default_rng(0)
    manual_time, manual_loc, auto_time, auto_loc = [], [], [], []
    for sample in test:
        result = lead.detect(sample.trajectory)
        if result is None:
            continue
        te, le = waybill_errors(driver_waybill(sample.label, rng),
                                sample.label)
        manual_time.append(te)
        manual_loc.append(le)
        te, le = waybill_errors(lead_waybill(result), sample.label)
        auto_time.append(te)
        auto_loc.append(le)

    print(f"waybills compared on {len(auto_time)} unseen truck-days")
    print(f"  manual waybill: time error {np.mean(manual_time):7.1f} min, "
          f"location error {np.mean(manual_loc):7.0f} m")
    print(f"  LEAD waybill:   time error {np.mean(auto_time):7.1f} min, "
          f"location error {np.mean(auto_loc):7.0f} m")
    print("(LEAD waybills inherit the accuracy of the detected loading/"
          "unloading stay points; manual ones inherit driver habits.)")


if __name__ == "__main__":
    main()
