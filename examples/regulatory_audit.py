"""Regulatory audit of detected loaded trajectories.

The paper (introduction, reason 2) notes that a loaded HCT truck is
prohibited from entering main urban areas and from moving on roads between
2:00 am and 5:00 am.  With loaded trajectories detected, both rules can be
audited automatically.  This example runs LEAD over unseen truck-days and
reports violations.

Usage::

    python examples/regulatory_audit.py
"""

import numpy as np

from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                   WorldConfig, generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig

CURFEW = (2 * 3600.0, 5 * 3600.0)   # no loaded movement 2:00-5:00 am
MOVING_SPEED_KMH = 10.0


def audit(result, urban_core) -> list[str]:
    """Check one detected loaded trajectory against both rules."""
    violations = []
    loaded = result.candidate.subtrajectory()
    inside = [urban_core.contains(lat, lng)
              for lat, lng in zip(loaded.lats, loaded.lngs)]
    if any(inside):
        fraction = 100.0 * sum(inside) / len(inside)
        violations.append(
            f"urban-area entry while loaded ({fraction:.0f}% of loaded "
            f"fixes inside the core)")
    speeds = loaded.segment_speeds_kmh()
    mids = (loaded.ts[:-1] + loaded.ts[1:]) / 2.0
    curfew_moving = (speeds > MOVING_SPEED_KMH) & \
        (mids >= CURFEW[0]) & (mids <= CURFEW[1])
    if curfew_moving.any():
        violations.append(
            f"moved while loaded during the 2-5 am curfew "
            f"({int(curfew_moving.sum())} segments)")
    return violations


def main() -> None:
    world = SyntheticWorld(WorldConfig(seed=31))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=40, num_trucks=18, seed=31),
        world=world)
    train, _, test = dataset.split_by_truck((8, 1, 1), seed=0)

    lead = LEAD(world.pois, LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, max_samples_per_epoch=120, seed=0),
        detector_training=DetectorTrainingConfig(epochs=4, seed=0)))
    lead.fit(train.samples)

    audited = 0
    flagged = 0
    for sample in test:
        result = lead.detect(sample.trajectory)
        if result is None:
            continue
        audited += 1
        violations = audit(result, world.urban_core)
        if violations:
            flagged += 1
            print(f"truck {sample.trajectory.truck_id} "
                  f"({sample.trajectory.day}):")
            for violation in violations:
                print(f"  - {violation}")
    print(f"\naudited {audited} truck-days, flagged {flagged} "
          f"(loaded trucks legally avoid the urban core, so most days "
          f"should be clean)")


if __name__ == "__main__":
    main()
