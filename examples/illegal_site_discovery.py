"""Discovering unregistered loading/unloading sites from detections.

The paper's introduction (reason 1) says governments use the origins and
destinations of loaded trajectories to identify illegal loading and
unloading locations.  This example clusters the endpoints of detected
loaded trajectories and flags clusters far from every *registered* site —
the workflow of ICFinder (Zhu et al., 2021 [4]) built on top of LEAD.

Usage::

    python examples/illegal_site_discovery.py
"""

import numpy as np

from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                   WorldConfig, generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.geo import haversine_m

REGISTERED_FRACTION = 0.7   # only 70% of real l/u sites are registered
MATCH_RADIUS_M = 600.0


def cluster_endpoints(points: list[tuple[float, float]],
                      radius_m: float = 400.0
                      ) -> list[tuple[float, float, int]]:
    """Greedy radius clustering: (lat, lng, member count) per cluster."""
    clusters: list[list[tuple[float, float]]] = []
    for lat, lng in points:
        for members in clusters:
            center = np.mean(members, axis=0)
            if haversine_m(lat, lng, center[0], center[1]) <= radius_m:
                members.append((lat, lng))
                break
        else:
            clusters.append([(lat, lng)])
    return [(*np.mean(members, axis=0), len(members))
            for members in clusters]


def main() -> None:
    world = SyntheticWorld(WorldConfig(seed=47))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=50, num_trucks=20, seed=47),
        world=world)
    train, _, test = dataset.split_by_truck((8, 1, 1), seed=0)

    # Pretend the government registry covers only part of the real sites.
    rng = np.random.default_rng(0)
    registered = [site for site in world.lu_sites
                  if rng.uniform() < REGISTERED_FRACTION]
    print(f"registry: {len(registered)} of {len(world.lu_sites)} real sites")

    lead = LEAD(world.pois, LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, max_samples_per_epoch=120, seed=0),
        detector_training=DetectorTrainingConfig(epochs=4, seed=0)))
    lead.fit(train.samples)

    endpoints = []
    for sample in list(train) + list(test):
        result = lead.detect(sample.trajectory)
        if result is None:
            continue
        candidate = result.candidate
        endpoints.append(candidate.stay_points[0].centroid)
        endpoints.append(candidate.stay_points[-1].centroid)

    clusters = cluster_endpoints(endpoints)
    suspicious = []
    for lat, lng, count in clusters:
        distance = min(haversine_m(lat, lng, s.lat, s.lng)
                       for s in registered)
        if distance > MATCH_RADIUS_M and count >= 2:
            suspicious.append((lat, lng, count, distance))

    print(f"detected {len(endpoints)} l/u endpoints forming "
          f"{len(clusters)} clusters")
    print(f"{len(suspicious)} clusters match no registered site:")
    for lat, lng, count, distance in sorted(suspicious,
                                            key=lambda s: -s[2])[:10]:
        print(f"  ({lat:.4f}, {lng:.4f})  visits={count:2d}  "
              f"nearest registered site {distance/1000:.1f} km away")


if __name__ == "__main__":
    main()
