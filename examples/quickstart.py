"""Quickstart: generate a synthetic HCT world, train LEAD, detect.

Runs end to end in about a minute on one CPU core (tiny scale).  For the
paper-scale experiment use ``REPRO_SCALE=default`` and the benchmarks.

Usage::

    python examples/quickstart.py
"""

from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                   WorldConfig, generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig


def main() -> None:
    # 1. A synthetic Nantong-like city: POIs, road network, l/u sites.
    world = SyntheticWorld(WorldConfig(seed=11))
    print("world:", world.summary())

    # 2. Labelled truck-days (the proprietary dataset's synthetic stand-in).
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=40, num_trucks=18, seed=11),
        world=world)
    train, _, test = dataset.split_by_truck((8, 1, 1), seed=0)
    print(f"dataset: {len(dataset)} truck-days "
          f"({len(train)} train / {len(test)} test)")

    # 3. Offline stage: train the LEAD framework (small budget for a demo).
    config = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, max_samples_per_epoch=120, seed=0),
        detector_training=DetectorTrainingConfig(epochs=4, seed=0))
    lead = LEAD(world.pois, config)
    report = lead.fit(train.samples, verbose=True)
    print(f"trained on {report.num_trajectories_used} trajectories")

    # 4. Online stage: detect the loaded trajectory of an unseen day.
    sample = test[0]
    result = lead.detect(sample.trajectory)
    if result is None:
        print("trajectory had too few stay points to analyse")
        return
    detected = result.candidate
    print(f"\ntruck {sample.trajectory.truck_id}: detected loaded "
          f"trajectory <sp_{result.pair[0]} --> sp_{result.pair[1]}>")
    loading = detected.stay_points[0]
    unloading = detected.stay_points[-1]
    print(f"  loading stay:   {loading.arrival_t/3600:5.2f}h - "
          f"{loading.departure_t/3600:5.2f}h at {loading.centroid}")
    print(f"  unloading stay: {unloading.arrival_t/3600:5.2f}h - "
          f"{unloading.departure_t/3600:5.2f}h at {unloading.centroid}")
    truth_pair = sample.label.to_ordinal_pair(result.processed.stay_points)
    print(f"  ground truth: <sp_{truth_pair[0]} --> sp_{truth_pair[1]}>"
          if truth_pair else "  ground truth unavailable")


if __name__ == "__main__":
    main()
