"""Fig. 9 — MSE training-loss curves of the hierarchical autoencoder.

Regenerates the paper's Fig. 9 (loss curves for the autoencoder inside
LEAD, LEAD-NoSel, and LEAD-NoHie) from the cached training histories, and
benchmarks one autoencoder training step.

Paper shape to check: the full hierarchical autoencoder converges to the
lowest loss in the fewest epochs; NoSel is next; NoHie is worst.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_loss_curves
from repro.nn import Adam


def test_fig9_autoencoder_curves(experiment, trained_lead, benchmark):
    curves = experiment.fig9()
    print()
    print(format_loss_curves(
        curves, "Fig. 9: MSE loss curves of hierarchical autoencoders",
        loss_name="mse"))

    # Benchmark one self-supervised training step (batch forward+backward).
    train, _, _ = experiment.splits
    processed = trained_lead.processor.process(train[0].trajectory,
                                               train[0].label)
    features = trained_lead.featurizer.featurize_all(
        processed.candidates[:8])
    model = trained_lead.autoencoder
    optimizer = Adam(model.parameters(), lr=1e-4)

    def step():
        loss = model.reconstruction_loss_batch(features)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)
