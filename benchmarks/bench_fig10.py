"""Fig. 10 — KLD training-loss curves of the forward/backward detectors.

Regenerates the paper's Fig. 10 from the cached training histories and
benchmarks one detector training step (forward + backward + update).

Paper shape to check: both detectors' KLD losses decrease and flatten,
confirming they approximate the label distributions.
"""

from __future__ import annotations

import numpy as np

from repro.detection import (DetectorSample, build_forward_group,
                             pair_to_index, smooth_label)
from repro.eval import format_loss_curves
from repro.nn import Adam, kld_loss


def test_fig10_detector_curves(experiment, trained_lead, benchmark):
    curves = experiment.fig10()
    print()
    print(format_loss_curves(
        curves, "Fig. 10: KLD loss curves of forward/backward detectors",
        loss_name="kld"))
    assert set(curves) == {"forward-detector", "backward-detector"}

    # Benchmark one supervised detector step on a real trajectory.
    test_set = experiment.test_set()
    processed, pair = test_set[0]
    cvecs = trained_lead.encode_candidates(processed)
    target = pair_to_index(processed.num_stay_points, pair)
    sample = DetectorSample(cvecs, processed.num_stay_points, target)
    detector = trained_lead.forward_detector
    optimizer = Adam(detector.parameters(), lr=1e-5)
    label = smooth_label(len(sample.cvecs), sample.target_index)

    def step():
        group = build_forward_group(sample.cvecs, sample.num_stay_points)
        loss = kld_loss(label, detector(group))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    value = benchmark(step)
    assert np.isfinite(value)
