"""Table III — detection accuracy of SP-R / SP-GRU / SP-LSTM / LEAD.

Regenerates the paper's Table III rows (accuracy by stay-point bucket)
from cached artifacts and benchmarks the online LEAD detection call.

Paper shape to check: LEAD >> SP-LSTM >= SP-GRU > SP-R, and accuracy
decreases as the number of stay points grows.
"""

from __future__ import annotations

from repro.eval import accuracy_by_bucket, format_accuracy_table


def test_table3_accuracy(experiment, trained_lead, sample_processed,
                         benchmark):
    results = experiment.table3()
    print()
    print(format_accuracy_table(
        results, "Table III: accuracy of baselines and LEAD (%)"))
    overall = {method: accuracy_by_bucket(records)["3~14"][0]
               for method, records in results.items()}
    print(f"\noverall: {overall}")

    # The benchmarked operation: one online detection (Eq. 13 end to end).
    benchmark(lambda: trained_lead.detect_processed(sample_processed))
