"""Shared fixtures for the paper-reproduction benchmarks.

Benchmarks regenerate the paper's tables/figures from cached artifacts
(trained once per scale; see ``repro.experiments``).  Select the scale
with ``REPRO_SCALE`` (default ``default``; use ``tiny`` for a smoke run).
"""

from __future__ import annotations

import pytest

from repro.experiments import Experiment


@pytest.fixture(scope="session")
def experiment() -> Experiment:
    return Experiment()


@pytest.fixture(scope="session")
def trained_lead(experiment):
    return experiment.lead_variant("LEAD")


@pytest.fixture(scope="session")
def sample_processed(experiment):
    """One processed test trajectory, for micro-benchmarks."""
    test_set = experiment.test_set()
    if not test_set:
        pytest.skip("empty test set at this scale")
    # Pick the median-size trajectory for a representative workload.
    ordered = sorted(test_set, key=lambda item: item[0].num_stay_points)
    return ordered[len(ordered) // 2][0]
