"""Fig. 8 — mean inference time per raw trajectory, by stay-point bucket.

Regenerates the paper's Fig. 8 series from the recorded per-trajectory
wall times, and benchmarks each method's detection call directly so the
relative ordering is measured live by pytest-benchmark as well.

Paper shape to check: LEAD answers with a single forward computation per
component, while SP-R scans its whole white list per stay point and
SP-GRU/SP-LSTM classify stay points one at a time.
"""

from __future__ import annotations

import pytest

from repro.eval import format_timing_table


def test_fig8_timing_table(experiment, benchmark):
    results = experiment.fig8()
    print()
    print(format_timing_table(
        results, "Fig. 8: mean inference time by #stay points"))
    lead = experiment.lead_variant("LEAD")
    test_set = experiment.test_set()
    benchmark(lambda: [lead.detect_processed(p).pair
                       for p, _ in test_set[:5]])


@pytest.mark.parametrize("method", ["SP-R", "SP-GRU", "SP-LSTM", "LEAD"])
def test_fig8_per_method(experiment, sample_processed, benchmark, method):
    detect = experiment._detect_fn(method, verbose=False)
    result = benchmark(lambda: detect(sample_processed))
    assert isinstance(result, tuple) or result is not None
