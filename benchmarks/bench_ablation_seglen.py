"""Ablation (beyond the paper): segment-subsampling length.

DESIGN.md §2 documents one engineering deviation: each stay/move segment
is subsampled to ``max_segment_len`` points before entering the LSTMs.
This bench measures how the cap trades encoding cost for fidelity: the
encoding time of one trajectory at several caps, plus the number of GPS
points retained.
"""

from __future__ import annotations

import pytest

from repro.features import (CandidateFeaturizer, FeatureConfig,
                            FeatureExtractor, ZScoreNormalizer)
from repro.pipeline import LEAD


@pytest.mark.parametrize("seg_len", [4, 8, 16, 32])
def test_encode_cost_vs_segment_length(experiment, trained_lead,
                                       sample_processed, benchmark,
                                       seg_len):
    extractor = FeatureExtractor(
        experiment.world.pois,
        FeatureConfig(max_segment_len=seg_len))
    featurizer = CandidateFeaturizer(extractor,
                                     trained_lead.featurizer.normalizer)
    model = trained_lead.autoencoder
    stay = [featurizer._segment_features(sp)
            for sp in sample_processed.stay_points]
    move = [featurizer._segment_features(mp)
            for mp in sample_processed.move_points]
    pairs = [c.pair for c in sample_processed.candidates]
    retained = sum(len(s) for s in stay) + sum(len(s) for s in move)
    print(f"\nmax_segment_len={seg_len}: {retained} GPS points retained "
          f"across {len(stay) + len(move)} segments")

    cvecs = benchmark(lambda: model.encode_trajectory(stay, move, pairs))
    assert cvecs.shape == (len(pairs), model.config.cvec_dim)
