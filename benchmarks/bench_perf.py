"""Throughput benchmarks for the fleet-scale inference layer (PR 2).

Measures the three levers of the throughput layer on the cached
experiment artifacts:

* per-trajectory vs cross-trajectory *batched* encoding and detection
  (the ``detect_batch`` acceptance criterion: batched detection must
  beat the per-trajectory loop);
* cold- vs warm-cache featurization (the content-keyed segment cache);
* fused-kernel vs legacy-tape autoencoder training throughput (PR 3:
  the fused default must beat the per-step tape);
* the end-to-end ``repro bench`` harness itself, asserting the payload
  it writes is well-formed and that batched == unbatched holds.

Run with ``REPRO_SCALE=tiny`` for a smoke pass; the committed
``BENCH_lead.json`` is produced by ``python -m repro.cli bench`` at the
default scale.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="module")
def test_processed(experiment):
    processed = [p for p, _ in experiment.test_set()]
    if len(processed) < 2:
        pytest.skip("need at least two test trajectories")
    return processed


def test_encode_batch_vs_loop(trained_lead, test_processed, benchmark):
    loop = [trained_lead.encode_candidates(p) for p in test_processed]
    batched = benchmark(
        lambda: trained_lead.encode_candidates_batch(test_processed))
    assert len(batched) == len(loop)
    for single, merged in zip(loop, batched):
        assert np.allclose(single, merged, rtol=1e-9, atol=0.0)


def test_detect_batch_vs_loop(trained_lead, test_processed, benchmark):
    loop = [trained_lead.detect_processed(p) for p in test_processed]
    batched = benchmark(
        lambda: trained_lead.detect_processed_batch(test_processed))
    assert [r.pair for r in batched] == [r.pair for r in loop]
    for single, merged in zip(loop, batched):
        assert np.allclose(single.distribution, merged.distribution,
                           rtol=1e-9, atol=0.0)


def test_featurize_warm_cache(trained_lead, test_processed, benchmark):
    if trained_lead.feature_cache is not None:
        trained_lead.feature_cache.clear()
    trained_lead.extractor.clear_cache()
    for processed in test_processed:   # cold pass fills the cache
        trained_lead._segments(processed)

    def warm() -> None:
        for processed in test_processed:
            trained_lead._segments(processed)

    benchmark(warm)
    if trained_lead.feature_cache is not None:
        assert trained_lead.feature_cache.stats.hit_rate > 0.5


def test_train_fused_vs_legacy_tape(trained_lead, test_processed, benchmark):
    """Fused training must beat the legacy per-step tape on real data."""
    import time

    from repro.encoding import (AutoencoderTrainer,
                                AutoencoderTrainingConfig,
                                HierarchicalAutoencoder)
    samples = []
    for processed in test_processed:
        samples.extend(
            trained_lead.featurizer.featurize_all(processed.candidates))
        if len(samples) >= 64:
            break

    def fit(cfg: AutoencoderTrainingConfig) -> float:
        model = HierarchicalAutoencoder(trained_lead.config.encoder)
        start = time.perf_counter()
        AutoencoderTrainer(model, cfg).fit(samples)
        return time.perf_counter() - start

    fused_s = benchmark(
        lambda: fit(AutoencoderTrainingConfig(epochs=1, seed=0)))
    legacy_s = fit(AutoencoderTrainingConfig(epochs=1, seed=0, fused=False,
                                             bucket_batches=False))
    assert fused_s < legacy_s


def test_bench_harness_payload(tmp_path):
    from repro.perf import compare_to_baseline, run_bench
    payload = run_bench(repeats=1, train_wall=False)
    assert payload["equivalence"]["allclose"]
    for key in ("encode_single_tps", "encode_batch_tps",
                "detect_single_tps", "detect_batch_tps",
                "train_steps_fused_sps", "train_steps_unfused_sps"):
        assert payload["metrics"][key] > 0
    assert payload["metrics"]["train_fused_speedup"] > 1.0
    # A payload never regresses against itself.
    assert compare_to_baseline(payload, payload) == []


def test_preprocess_vectorized_vs_legacy(trained_lead, test_processed,
                                         benchmark):
    """The chunked scanner must beat the legacy per-fix loop, exactly."""
    from repro.perf.bench import _legacy_extract_spans
    import time

    extractor = trained_lead.processor.extractor
    cleaned = [p.cleaned for p in test_processed]

    def vectorized() -> None:
        for trajectory in cleaned:
            extractor.extract(trajectory)

    benchmark(vectorized)
    start = time.perf_counter()
    legacy = [_legacy_extract_spans(t, extractor.max_distance_m,
                                    extractor.min_duration_s)
              for t in cleaned]
    legacy_s = time.perf_counter() - start
    start = time.perf_counter()
    spans = [[(sp.start, sp.end) for sp in extractor.extract(t)]
             for t in cleaned]
    vector_s = time.perf_counter() - start
    assert spans == legacy          # bit-identical span sets
    assert vector_s < legacy_s      # and strictly faster


def test_preprocess_payload_metrics(tmp_path):
    from repro.perf import run_bench
    payload = run_bench(repeats=1, train_wall=False)
    pre = payload["preprocess_equivalence"]
    assert pre["spans_identical"] and pre["filter_identical"] \
        and pre["poi_allclose"]
    for key in ("preprocess_extract_tps", "preprocess_filter_tps",
                "preprocess_poi_pps"):
        assert payload["metrics"][key] > 0
    assert payload["metrics"]["preprocess_extract_speedup"] > 1.0
