"""Ablation (beyond the paper): stay-point threshold sensitivity.

The paper tunes Dmax = 500 m and Tmin = 15 min so that "most staying
behaviors can be included in stay points".  This bench sweeps both
thresholds over the test trajectories, reporting how many stay points are
extracted and how often the ground-truth label still maps onto them —
the quantity that bounds every method's achievable accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.processing import StayPointExtractor, extract_move_points

SWEEP = [
    (250.0, 15 * 60.0),
    (500.0, 15 * 60.0),   # the paper's setting
    (1000.0, 15 * 60.0),
    (500.0, 8 * 60.0),
    (500.0, 25 * 60.0),
]


@pytest.mark.parametrize("dmax,tmin", SWEEP)
def test_threshold_sensitivity(experiment, benchmark, dmax, tmin):
    extractor = StayPointExtractor(max_distance_m=dmax,
                                   min_duration_s=tmin)
    _, val, test = experiment.splits
    samples = (list(val) + list(test))[:20]
    lead = experiment.lead_variant("LEAD")
    cleaned = [lead.processor.noise_filter.filter(s.trajectory)
               for s in samples]

    counts = []
    mapped = 0
    for sample, clean in zip(samples, cleaned):
        stay_points = extractor.extract(clean)
        counts.append(len(stay_points))
        if len(stay_points) >= 2 and \
                sample.label.to_ordinal_pair(stay_points) is not None:
            mapped += 1
    print(f"\nDmax={dmax:.0f}m Tmin={tmin/60:.0f}min: "
          f"mean #stay points {np.mean(counts):.1f}, "
          f"label mappable on {mapped}/{len(samples)} trajectories")

    benchmark(lambda: [extractor.extract(c) for c in cleaned[:5]])
