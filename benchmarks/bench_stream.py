"""Streaming-layer benchmark: pings/sec, per-tick latency, CI gate.

Replays the experiment scale's test set as one interleaved fleet ping
feed through :class:`repro.stream.FleetSessionManager` and measures
ingest throughput, per-tick detection latency, flush throughput, and
the suffix-only refeaturization property (late ticks hit the
slice-keyed segment cache for every closed segment, so per-ping cost is
sublinear in trajectory length).  The payload also records
streamed-vs-offline equivalence: every final verdict must match
``LEAD.detect`` bit-for-bit in pair and ``allclose`` in distribution.

Run standalone (this is what CI does, gated against the committed
baseline)::

    PYTHONPATH=src python benchmarks/bench_stream.py --scale tiny \
        --out BENCH_stream.json \
        --baseline benchmarks/baselines/BENCH_stream_tiny.json

or through pytest alongside the other benchmarks
(``pytest benchmarks/bench_stream.py``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.io import atomic_write_json
from repro.perf import (STREAM_GATED_METRICS, compare_to_baseline,
                        format_stream_bench_table, run_stream_bench)


def test_stream_bench_payload(experiment):
    """The streaming bench payload is well-formed and equivalent."""
    payload = run_stream_bench(scale=experiment.config.name, repeats=1,
                               num_ticks=4)
    for key in STREAM_GATED_METRICS:
        assert payload["metrics"][key] > 0
    assert payload["equivalence"]["allclose"]
    assert payload["sublinear"] is None or payload["sublinear"]["suffix_only"]
    json.dumps(payload)  # JSON-safe


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming detection throughput benchmark")
    parser.add_argument("--scale", default=None,
                        choices=["tiny", "small", "default"],
                        help="experiment scale (default: REPRO_SCALE or "
                             "'default')")
    parser.add_argument("--out", default="BENCH_stream.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--ticks", type=int, default=8,
                        help="detection ticks spread across the replay")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_stream json to gate "
                             "against; exits 2 on regression")
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument("--min-serve-scaling", type=float, default=None,
                        help="fail unless serve_ingest_pps is at least "
                             "this multiple of stream_ingest_pps; used "
                             "when regenerating the committed "
                             "default-scale artifact, which pins the "
                             ">= 2x sharded-serve claim")
    args = parser.parse_args(argv)
    payload = run_stream_bench(scale=args.scale, repeats=args.repeats,
                               num_ticks=args.ticks)
    atomic_write_json(args.out, payload)
    print(format_stream_bench_table(payload))
    print(f"wrote {args.out}")
    if not payload["equivalence"]["allclose"]:
        print("FAIL: streamed final verdicts diverge from offline "
              "LEAD.detect", file=sys.stderr)
        return 2
    if payload["sublinear"] is not None \
            and not payload["sublinear"]["suffix_only"]:
        print("FAIL: late ticks re-featurized closed segments "
              "(suffix-only refeaturization broken)", file=sys.stderr)
        return 2
    if args.min_serve_scaling is not None:
        scaling = payload["metrics"]["serve_scaling"]
        if scaling < args.min_serve_scaling:
            print(f"FAIL: serve_ingest_pps is only {scaling:.2f}x "
                  f"stream_ingest_pps (need "
                  f">= {args.min_serve_scaling:g}x)", file=sys.stderr)
            return 2
        print(f"serve scaling {scaling:.2f}x >= "
              f"{args.min_serve_scaling:g}x")
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(payload, baseline,
                                       max_regression=args.max_regression,
                                       metrics=STREAM_GATED_METRICS)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 2
        print(f"no regression vs {args.baseline} "
              f"(threshold {args.max_regression:g}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
