"""Table IV — ablation study: LEAD vs its six variants.

Regenerates the paper's Table IV (accuracy by stay-point bucket for
LEAD-NoPoi/NoSel/NoHie/NoGro/NoFor/NoBac and full LEAD) and benchmarks a
variant's online detection.

Paper shape to check: full LEAD is best everywhere; NoPoi hurts the most;
NoFor/NoBac hurt the least.
"""

from __future__ import annotations

from repro.eval import accuracy_by_bucket, format_accuracy_table


def test_table4_ablations(experiment, sample_processed, benchmark):
    results = experiment.table4()
    print()
    print(format_accuracy_table(
        results, "Table IV: accuracy of LEAD and LEAD-variants (%)"))
    overall = {method: round(accuracy_by_bucket(records)["3~14"][0], 1)
               for method, records in results.items()}
    print(f"\noverall: {overall}")

    nogro = experiment.lead_variant("LEAD-NoGro")
    benchmark(lambda: nogro.detect_processed(sample_processed))
