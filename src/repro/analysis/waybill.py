"""Automatic waybill generation (paper introduction).

A waybill records when and where hazardous chemicals were loaded and
unloaded.  Drivers fill them manually and badly; with the loaded
trajectory detected, a high-quality waybill "can be automatically
generated", easing the drivers' burden and giving regulators reliable
loading/unloading information.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import haversine_m
from ..model import LoadedLabel
from ..pipeline import DetectionResult

__all__ = ["Waybill", "waybill_from_detection", "waybill_errors"]


@dataclass(frozen=True)
class Waybill:
    """Loading/unloading times (unix seconds) and locations (WGS84)."""

    loading_t: float
    unloading_t: float
    loading_lat: float
    loading_lng: float
    unloading_lat: float
    unloading_lng: float

    def __post_init__(self) -> None:
        if self.unloading_t < self.loading_t:
            raise ValueError("waybill unloads before it loads")


def waybill_from_detection(result: DetectionResult) -> Waybill:
    """Generate a waybill from a detected loaded trajectory.

    The loading time/location come from the starting stay point of the
    detected candidate, the unloading ones from its ending stay point.
    """
    candidate = result.candidate
    loading = candidate.stay_points[0]
    unloading = candidate.stay_points[-1]
    return Waybill(
        loading_t=loading.arrival_t,
        unloading_t=unloading.arrival_t,
        loading_lat=loading.centroid[0],
        loading_lng=loading.centroid[1],
        unloading_lat=unloading.centroid[0],
        unloading_lng=unloading.centroid[1])


def waybill_errors(waybill: Waybill, label: LoadedLabel
                   ) -> tuple[float, float]:
    """Waybill quality vs ground truth.

    Returns ``(mean time error in minutes, mean location error in
    meters)``, averaging the loading and unloading ends.
    """
    time_error_s = (abs(waybill.loading_t - label.loading.start)
                    + abs(waybill.unloading_t - label.unloading.start)) / 2.0
    location_error_m = (
        haversine_m(waybill.loading_lat, waybill.loading_lng,
                    label.loading_lat, label.loading_lng)
        + haversine_m(waybill.unloading_lat, waybill.unloading_lng,
                      label.unloading_lat, label.unloading_lng)) / 2.0
    return time_error_s / 60.0, location_error_m
