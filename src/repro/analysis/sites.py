"""Loading/unloading site discovery from detections.

Aggregating the endpoints of detected loaded trajectories reveals the
city's real loading/unloading locations; clusters far from every
*registered* facility are candidates for illegal sites (the ICFinder
use case the paper cites as [4]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import haversine_m
from ..pipeline import DetectionResult

__all__ = ["SiteCluster", "cluster_endpoints", "find_unregistered_sites"]


@dataclass(frozen=True)
class SiteCluster:
    """A cluster of detected l/u endpoints."""

    lat: float
    lng: float
    visits: int

    def __post_init__(self) -> None:
        if self.visits < 1:
            raise ValueError("a cluster needs at least one visit")


def cluster_endpoints(points: list[tuple[float, float]],
                      radius_m: float = 400.0) -> list[SiteCluster]:
    """Greedy incremental radius clustering of (lat, lng) endpoints.

    Deterministic given point order; adequate for the hundreds of
    endpoints a city produces per day.
    """
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    members: list[list[tuple[float, float]]] = []
    for lat, lng in points:
        for cluster in members:
            center = np.mean(cluster, axis=0)
            if haversine_m(lat, lng, float(center[0]),
                           float(center[1])) <= radius_m:
                cluster.append((lat, lng))
                break
        else:
            members.append([(lat, lng)])
    clusters = []
    for cluster in members:
        center = np.mean(cluster, axis=0)
        clusters.append(SiteCluster(float(center[0]), float(center[1]),
                                    len(cluster)))
    return clusters


def detection_endpoints(results: list[DetectionResult]
                        ) -> list[tuple[float, float]]:
    """Loading and unloading centroids of detected loaded trajectories."""
    endpoints = []
    for result in results:
        candidate = result.candidate
        endpoints.append(candidate.stay_points[0].centroid)
        endpoints.append(candidate.stay_points[-1].centroid)
    return endpoints


def find_unregistered_sites(results: list[DetectionResult],
                            registered: list[tuple[float, float]],
                            match_radius_m: float = 600.0,
                            min_visits: int = 2,
                            cluster_radius_m: float = 400.0
                            ) -> list[SiteCluster]:
    """Clusters of detected l/u activity far from every registered site.

    Returns clusters with at least ``min_visits`` endpoint visits whose
    center is more than ``match_radius_m`` from every registered
    location, sorted by visit count (most active first).
    """
    clusters = cluster_endpoints(detection_endpoints(results),
                                 cluster_radius_m)
    suspicious = []
    for cluster in clusters:
        if cluster.visits < min_visits:
            continue
        if registered:
            nearest = min(haversine_m(cluster.lat, cluster.lng, lat, lng)
                          for lat, lng in registered)
            if nearest <= match_radius_m:
                continue
        suspicious.append(cluster)
    return sorted(suspicious, key=lambda c: -c.visits)
