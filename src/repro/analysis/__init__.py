"""Downstream analyses on detected loaded trajectories.

The paper's introduction motivates loaded-trajectory detection with three
government use cases: identifying illegal loading/unloading locations,
checking regulation compliance, and improving urban planning.  This
package provides those analyses as library APIs (the examples are thin
wrappers around them).
"""

from .waybill import Waybill, waybill_from_detection, waybill_errors
from .compliance import (ComplianceRule, CurfewRule, UrbanAreaRule,
                         Violation, audit_detection)
from .sites import (SiteCluster, cluster_endpoints, detection_endpoints,
                    find_unregistered_sites)

__all__ = [
    "Waybill", "waybill_from_detection", "waybill_errors",
    "ComplianceRule", "CurfewRule", "UrbanAreaRule", "Violation",
    "audit_detection",
    "SiteCluster", "cluster_endpoints", "detection_endpoints",
    "find_unregistered_sites",
]
