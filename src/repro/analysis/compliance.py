"""Regulation-compliance auditing of loaded trajectories.

The paper cites two concrete regulations: a loaded HCT truck must not
enter main urban areas, and must not move on roads between 2:00 and
5:00 am [5].  Rules are small strategy objects so cities can add their
own.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import BoundingBox
from ..model import Trajectory
from ..pipeline import DetectionResult

__all__ = ["Violation", "ComplianceRule", "UrbanAreaRule", "CurfewRule",
           "audit_detection"]


@dataclass(frozen=True)
class Violation:
    """One detected rule violation."""

    rule: str
    description: str
    severity: float  # 0..1, fraction of the loaded leg affected

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")


class ComplianceRule:
    """Base class: check a loaded subtrajectory, return violations."""

    name = "rule"

    def check(self, loaded: Trajectory) -> list[Violation]:
        raise NotImplementedError


class UrbanAreaRule(ComplianceRule):
    """No loaded driving inside the main urban area."""

    name = "urban-area"

    def __init__(self, urban_area: BoundingBox) -> None:
        self.urban_area = urban_area

    def check(self, loaded: Trajectory) -> list[Violation]:
        if len(loaded) == 0:
            return []
        inside = np.array([self.urban_area.contains(lat, lng)
                           for lat, lng in zip(loaded.lats, loaded.lngs)])
        if not inside.any():
            return []
        fraction = float(inside.mean())
        return [Violation(
            rule=self.name,
            description=(f"{100 * fraction:.0f}% of loaded GPS fixes "
                         f"inside the restricted urban area"),
            severity=fraction)]


class CurfewRule(ComplianceRule):
    """No loaded movement during the night curfew (default 2:00-5:00 am)."""

    name = "curfew"

    def __init__(self, start_s: float = 2 * 3600.0,
                 end_s: float = 5 * 3600.0,
                 moving_speed_kmh: float = 10.0) -> None:
        if end_s <= start_s:
            raise ValueError("curfew must end after it starts")
        self.start_s = start_s
        self.end_s = end_s
        self.moving_speed_kmh = moving_speed_kmh

    def check(self, loaded: Trajectory) -> list[Violation]:
        if len(loaded) < 2:
            return []
        speeds = loaded.segment_speeds_kmh()
        mids = (loaded.ts[:-1] + loaded.ts[1:]) / 2.0
        seconds_of_day = np.mod(mids, 86_400.0)
        moving = ((speeds > self.moving_speed_kmh)
                  & (seconds_of_day >= self.start_s)
                  & (seconds_of_day <= self.end_s))
        if not moving.any():
            return []
        return [Violation(
            rule=self.name,
            description=(f"moved while loaded during the curfew on "
                         f"{int(moving.sum())} trajectory segments"),
            severity=float(moving.mean()))]


def audit_detection(result: DetectionResult,
                    rules: list[ComplianceRule]) -> list[Violation]:
    """Run every rule against the detected loaded subtrajectory."""
    loaded = result.candidate.subtrajectory()
    violations: list[Violation] = []
    for rule in rules:
        violations.extend(rule.check(loaded))
    return violations
