"""Unified observability: metrics, tracing spans, structured events.

See DESIGN.md §14 for the architecture, the event taxonomy, and the
span naming scheme.  The three pillars:

* :mod:`repro.obs.metrics` — thread-safe counters / gauges /
  fixed-bucket histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.trace` — nested spans with deterministic ids under
  seeded runs, context-propagated across threads and parallel tasks;
* :mod:`repro.obs.events` — a bounded structured event log for
  discrete, auditable occurrences (degradations, breaker trips,
  spill failures, reorder drops).

Telemetry is opt-in per thread via :func:`observe`; with no active
bundle, the :func:`obs_span` / :func:`obs_event` helpers are no-ops, so
instrumented hot paths stay bit-identical to their pre-instrumentation
behavior (CI gates the residual overhead at ≤ 5%).
"""

from .core import (Observability, active_obs, obs_event, obs_span,
                   observe)
from .events import EventLog, read_jsonl
from .export import (flatten, render_prometheus, render_span_tree,
                     render_table, render_tables)
from .metrics import (DEFAULT_LATENCY_BUCKETS_S, Counter, Gauge,
                      Histogram, MetricsRegistry, default_registry)
from .trace import Span, SpanContext, Tracer

__all__ = [
    "Observability", "observe", "active_obs", "obs_span", "obs_event",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "default_registry", "DEFAULT_LATENCY_BUCKETS_S",
    "Tracer", "Span", "SpanContext",
    "EventLog", "read_jsonl",
    "render_prometheus", "render_table", "render_tables",
    "render_span_tree", "flatten",
]
