"""Exporters: Prometheus-style text exposition, aligned tables, trees.

All three renderers are deterministic (sorted keys, no timestamps) so
they can be golden-tested and diffed across seeded runs.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["render_prometheus", "render_table", "render_tables",
           "render_span_tree", "flatten"]


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (one ``# TYPE`` per metric).

    Histograms expand to the conventional ``_bucket``/``_sum``/
    ``_count`` series with cumulative ``le`` labels.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        if instrument.name not in seen_types:
            seen_types.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} "
                             f"{instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if instrument.kind == "histogram":
            snap = instrument.snapshot()
            base = dict(instrument.labels)
            for bound, cum in snap["buckets"].items():
                labels = dict(base)
                labels["le"] = bound
                lines.append(f"{instrument.name}_bucket"
                             f"{_labels(labels)} {cum}")
            lines.append(f"{instrument.name}_sum{_labels(base)} "
                         f"{_num(snap['sum'])}")
            lines.append(f"{instrument.name}_count{_labels(base)} "
                         f"{snap['count']}")
        else:
            lines.append(f"{instrument.key} {_num(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


def _num(value) -> str:
    """Render ints without a decimal point, floats compactly."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return f"{as_float:g}"


def flatten(payload, prefix: str = "") -> dict[str, object]:
    """Nested dicts → one level of dotted keys (lists join with ``,``)."""
    flat: dict[str, object] = {}
    if not isinstance(payload, dict):
        return {prefix or "value": payload}
    for key in sorted(payload, key=str):
        value = payload[key]
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, dotted))
        elif isinstance(value, (list, tuple)):
            flat[dotted] = ",".join(str(v) for v in value)
        else:
            flat[dotted] = value
    return flat


def render_table(payload: dict, title: str | None = None, *,
                 width: int | None = None) -> str:
    """An aligned two-column ``key  value`` table from a nested dict.

    ``width`` overrides the key-column width; pass one shared value
    when printing several tables together (see :func:`render_tables`)
    so multi-label metric rows stay aligned across sections.
    """
    flat = flatten(payload)
    if not flat:
        return (title + "\n") if title else ""
    if width is None:
        width = max(len(key) for key in flat)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), width + 2))
    for key, value in flat.items():
        rendered = _num(value) if isinstance(value, (int, float)) \
            else str(value)
        lines.append(f"{key.ljust(width)}  {rendered}")
    return "\n".join(lines) + "\n"


def render_tables(sections: list[tuple[str | None, dict]]) -> str:
    """Several titled tables sharing **one** key-column width.

    Every renderer that prints more than one stats table goes through
    here: the width is computed over the union of all sections' keys,
    so rows with differing label sets (e.g. per-shard metrics next to
    fleet counters) line up instead of each table picking its own
    width.
    """
    flats = [flatten(payload) for _title, payload in sections]
    keys = [key for flat in flats for key in flat]
    width = max((len(key) for key in keys), default=0)
    return "\n".join(render_table(payload, title, width=width)
                     for (title, payload) in sections)


def render_span_tree(spans: list[dict]) -> str:
    """An indented tree of span dicts (as produced by the tracer/sink).

    Children sort by record sequence, so the tree reflects completion
    order within each parent; durations print in milliseconds.
    """
    by_parent: dict[str | None, list[dict]] = {}
    ids = {span["span_id"] for span in spans}
    for span in sorted(spans, key=lambda s: s.get("seq", 0)):
        parent = span.get("parent_id")
        if parent not in ids:
            parent = None   # orphan (e.g. parent span still open)
        by_parent.setdefault(parent, []).append(span)

    lines: list[str] = []

    def _walk(parent_id: str | None, depth: int) -> None:
        for span in by_parent.get(parent_id, []):
            duration_ms = span.get("duration_s", 0.0) * 1e3
            attrs = span.get("attrs") or {}
            suffix = ""
            if attrs:
                inner = " ".join(f"{k}={attrs[k]}"
                                 for k in sorted(attrs))
                suffix = f"  [{inner}]"
            lines.append(f"{'  ' * depth}{span['name']} "
                         f"({span['span_id']}) {duration_ms:.2f}ms"
                         f"{suffix}")
            _walk(span["span_id"], depth + 1)

    _walk(None, 0)
    return "\n".join(lines) + ("\n" if lines else "")
