"""Nested tracing spans with deterministic, seed-stable identifiers.

Span identity never touches the wall clock or ``os.urandom``: a trace id
hashes ``(seed, root counter)`` and a span id hashes ``(trace id, parent
span id, name, child key)``, where the child key is the parent's running
child index unless the caller pins one explicitly (parallel task fan-out
pins the task index so ids are stable regardless of completion order).
Two seeded runs of the same pipeline therefore produce byte-identical
span trees — only the ``start_s``/``duration_s`` timing fields differ,
and those are excluded from determinism checks.

The *current span* is thread-local.  To parent work running on another
thread (or shipped to a :func:`repro.perf.parallel.parallel_map` worker
task), capture :meth:`Tracer.current_context` — a picklable
:class:`SpanContext` — and re-enter it with :meth:`Tracer.attach` on the
executing side.  Process-pool workers have no live tracer, so a shipped
context degrades to a no-op there; the serial and thread lanes retain
full nesting.  This mirrors how the repo's other ambient policies
(``use_fused``, ``inference_dtype``) scope per thread.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanContext", "Span", "Tracer"]


def _digest(payload: str, nbytes: int) -> str:
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=nbytes).hexdigest()


@dataclass(frozen=True)
class SpanContext:
    """A picklable pointer to a span, used to parent remote work."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One live span; closed spans are recorded as plain dicts."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    attrs: dict = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    _children: int = 0

    def next_child_key(self) -> int:
        key = self._children
        self._children += 1
        return key

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def to_dict(self, seq: int) -> dict:
        return {"seq": seq, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "start_s": self.start_s,
                "duration_s": self.duration_s,
                "attrs": dict(self.attrs)}


class _SpanHandle:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_prev")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._prev = None

    @property
    def span(self) -> Span:
        return self._span

    def __enter__(self) -> Span:
        local = self._tracer._local
        self._prev = getattr(local, "current", None)
        local.current = self._span
        self._span.start_s = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.duration_s = time.perf_counter() - self._span.start_s
        self._tracer._local.current = self._prev
        self._tracer._record(self._span)


class _AttachHandle:
    """Context manager that makes a remote context the local parent."""

    __slots__ = ("_tracer", "_span", "_prev")

    def __init__(self, tracer: "Tracer", context: SpanContext,
                 child_key: int | None) -> None:
        # A synthetic parent Span (never recorded) carrying the remote
        # identity; child spans opened under the attach derive their ids
        # from it exactly as from a live parent.
        self._tracer = tracer
        self._span = Span(name="<attached>", trace_id=context.trace_id,
                          span_id=context.span_id, parent_id=None,
                          _children=child_key if child_key is not None
                          else 0)
        self._prev = None

    def __enter__(self) -> None:
        local = self._tracer._local
        self._prev = getattr(local, "current", None)
        local.current = self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._local.current = self._prev


class Tracer:
    """Deterministic span factory with a bounded record buffer.

    ``max_spans`` caps memory on long soaks; overflow increments
    ``dropped`` instead of growing without bound, and the drop count is
    exported alongside the spans so truncation is visible.
    """

    def __init__(self, seed: int = 0, max_spans: int = 100_000) -> None:
        self.seed = int(seed)
        self.max_spans = int(max_spans)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[dict] = []
        self._roots = 0
        self._seq = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def current_span(self) -> Span | None:
        return getattr(self._local, "current", None)

    def current_context(self) -> SpanContext | None:
        """The active span's picklable context, or None at top level."""
        span = self.current_span()
        return span.context if span is not None else None

    def span(self, name: str, /, child_key: int | None = None,
             **attrs) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("stage"):``.

        ``child_key`` pins the id-derivation key; by default it is the
        parent's running child index (or, for roots, a tracer-wide root
        counter).
        """
        parent = self.current_span()
        if parent is None:
            with self._lock:
                root_index = self._roots
                self._roots += 1
            trace_id = _digest(f"{self.seed}:{root_index}", 12)
            parent_id = None
            key = root_index if child_key is None else child_key
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            key = (parent.next_child_key() if child_key is None
                   else child_key)
        span_id = _digest(f"{trace_id}|{parent_id}|{name}|{key}", 8)
        return _SpanHandle(self, Span(name=name, trace_id=trace_id,
                                      span_id=span_id,
                                      parent_id=parent_id,
                                      attrs=dict(attrs)))

    def attach(self, context: SpanContext,
               child_key: int | None = None) -> _AttachHandle:
        """Parent subsequent spans on this thread under ``context``.

        ``child_key`` seeds the child index, letting concurrent workers
        attached to the same parent derive non-colliding ids from their
        task index instead of a shared (racy) counter.
        """
        return _AttachHandle(self, context, child_key)

    # ------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(span.to_dict(self._seq))
            self._seq += 1

    @property
    def finished(self) -> list[dict]:
        """Closed spans as dicts, in completion order."""
        with self._lock:
            return list(self._finished)
