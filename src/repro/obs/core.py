"""The Observability bundle and the ambient activation context.

Telemetry is **off by default** and costs (near) nothing when off: call
sites consult a ``threading.local`` slot via :func:`active_obs` — the
same pattern as ``use_fused`` / ``inference_dtype`` — and when it is
empty they either skip instrumentation entirely or receive a shared
no-op context manager.  Nothing global is mutated by merely importing
this module.

Enable telemetry by activating a bundle::

    from repro.obs import Observability, observe

    ob = Observability(seed=7)
    with observe(ob):
        lead.detect(trajectory)
    ob.flush("out.jsonl")

The bundle owns one :class:`MetricsRegistry`, one :class:`Tracer` and
one :class:`EventLog`.  :meth:`Observability.flush` serialises all
three to a JSON-lines file through :func:`repro.io.atomic.atomic_write_text`,
so a crash mid-flush leaves either the previous complete file or (under
an injected torn write) a byte-prefix that
:func:`repro.obs.events.read_jsonl` recovers line-by-line.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path

from .events import EventLog
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["Observability", "observe", "active_obs", "obs_span",
           "obs_event"]

#: Telemetry file schema version (bumped on incompatible layout change).
SCHEMA_VERSION = 1

_ACTIVE = threading.local()

#: Reusable do-nothing context manager handed out when telemetry is off
#: (``contextlib.nullcontext`` instances are re-enterable).
_NULL_SPAN = contextlib.nullcontext()


class Observability:
    """One run's metrics registry, tracer and event log."""

    def __init__(self, seed: int = 0, max_spans: int = 100_000,
                 max_events: int = 65_536) -> None:
        self.seed = int(seed)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(seed=seed, max_spans=max_spans)
        self.events = EventLog(maxlen=max_events)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """In-memory summary: metric values plus span/event volumes."""
        return {"seed": self.seed,
                "metrics": self.registry.snapshot(),
                "spans": len(self.tracer.finished),
                "spans_dropped": self.tracer.dropped,
                "events": len(self.events),
                "events_dropped": self.events.dropped}

    def to_records(self) -> list[dict]:
        """The full telemetry stream as JSON-safe record dicts."""
        records: list[dict] = [
            {"kind": "meta", "schema": SCHEMA_VERSION,
             "seed": self.seed,
             "spans_dropped": self.tracer.dropped,
             "events_dropped": self.events.dropped}]
        for event in self.events.events:
            records.append({"kind": "event", **event})
        for span in self.tracer.finished:
            records.append({"kind": "span", **span})
        records.append({"kind": "metrics",
                        "metrics": self.registry.snapshot()})
        return records

    def flush(self, path) -> Path:
        """Atomically (re)write the whole telemetry stream as JSONL."""
        import json

        from ..io.atomic import atomic_write_text

        lines = [json.dumps(record, sort_keys=True)
                 for record in self.to_records()]
        target = Path(path)
        atomic_write_text(target, "\n".join(lines) + "\n")
        return target

    # Allow ``with Observability(...) as ob:`` as shorthand.
    def __enter__(self) -> "Observability":
        self._token = observe(self)
        self._token.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._token.__exit__(*exc_info)
        del self._token


@contextlib.contextmanager
def observe(ob: Observability):
    """Make ``ob`` this thread's active telemetry bundle."""
    previous = getattr(_ACTIVE, "current", None)
    _ACTIVE.current = ob
    try:
        yield ob
    finally:
        _ACTIVE.current = previous


def active_obs() -> Observability | None:
    """This thread's active bundle, or None when telemetry is off."""
    return getattr(_ACTIVE, "current", None)


def obs_span(name: str, /, child_key: int | None = None, **attrs):
    """A tracer span when telemetry is active, else a shared no-op CM.

    The hot-path contract: when telemetry is off this is one function
    call and one thread-local read, allocating nothing.
    """
    ob = getattr(_ACTIVE, "current", None)
    if ob is None:
        return _NULL_SPAN
    return ob.tracer.span(name, child_key=child_key, **attrs)


def obs_event(name: str, /, **fields) -> dict | None:
    """Emit a structured event when telemetry is active.

    Returns the event dict (with its ``id``) so callers can correlate —
    e.g. cite the event id inside a provenance note — or None when
    telemetry is off.
    """
    ob = getattr(_ACTIVE, "current", None)
    if ob is None:
        return None
    return ob.events.emit(name, **fields)
