"""Structured event log for discrete, auditable occurrences.

Metrics answer "how many / how fast"; events answer "what exactly
happened to truck T-0042 at seq 317".  Each event is a small JSON-safe
record with a stable sequence number and a deterministic id
(``e<seq>``), so a provenance note written into a detection verdict can
cite the event that explains it and an operator can join the two after
the fact.

The in-memory log is bounded: past ``maxlen`` the oldest events are
discarded and ``dropped`` counts the loss, mirroring the tracer's
truncation policy — silent unbounded growth and silent truncation are
both bugs.

Event taxonomy (kept in sync with DESIGN.md §14):

========================  =============================================
name                      emitted when
========================  =============================================
``detection.tier_failed``  a degradation tier raised and the walker
                           moved down the chain
``detection.degraded``     a verdict shipped from any tier below
                           ``both`` (includes sp-r / heuristic
                           fallbacks); carries the provenance notes
``precision.fallback``     the float32 parity gate demoted inference
                           back to float64
``breaker.transition``     a circuit breaker changed state
``retry.attempt`` /        a supervised call was retried / gave up
``retry.exhausted``
``quarantine.recorded``    a payload was quarantined
``fleet.spill_failed``     an eviction spill failed and the session was
                           kept resident (with truck_id and reason)
``fleet.spill_skipped``    the spill breaker was open, spill not tried
``fleet.session_dropped``  an over-capacity session was evicted with no
                           checkpoint dir — state loss
``fleet.restore_failed``   a spilled session could not be restored
``fleet.quarantined``      a session was quarantined by the manager
``stream.ping_dropped``    a session dropped pings (reason ``late`` —
                           reorder-buffer overflow — or ``invalid``)
``cache.evicted``          an LRU cache evicted an entry (emitted only
                           while telemetry is active)
========================  =============================================
"""

from __future__ import annotations

import json
import threading

__all__ = ["EventLog", "read_jsonl"]


class EventLog:
    """Bounded, thread-safe, append-only list of event dicts."""

    def __init__(self, maxlen: int = 65_536) -> None:
        self.maxlen = int(maxlen)
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._seq = 0
        self.dropped = 0

    def emit(self, name: str, /, **fields) -> dict:
        """Record an event and return it (with ``seq`` and ``id`` set)."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            event = {"seq": seq, "id": f"e{seq:06d}", "name": name,
                     "fields": fields}
            self._events.append(event)
            if len(self._events) > self.maxlen:
                del self._events[0]
                self.dropped += 1
        return event

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def read_jsonl(path) -> list[dict]:
    """Parse a JSONL telemetry file, tolerating a torn tail.

    Flushes go through :mod:`repro.io.atomic`, so a *completed* flush is
    all-or-nothing; a crash (or an injected ``io.write`` torn fault)
    can still leave a byte-prefix of the intended file.  Every complete
    leading line parses — this reader returns that prefix and stops at
    the first line that does not decode, rather than raising.
    """
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return records
    for line in raw.split("\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if isinstance(record, dict):
            records.append(record)
    return records
