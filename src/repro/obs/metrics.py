"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named, labelled collection of
instruments.  Instruments are cheap mutable objects guarded by their own
lock (the thread-safety hammer in ``tests/test_obs.py`` hits them from
many threads); the registry's own lock only covers get-or-create, so
steady-state increments never contend on a global.

Two registries matter in practice:

* the **default registry** (:func:`default_registry`) — a process-wide,
  always-on home for infrastructure stats that predate this subsystem
  (feature-cache hit/miss/eviction counters, the weight-view LRU).
  Their legacy ``stats()`` accessors are now thin views over these
  instruments;
* a **session registry** owned by an
  :class:`~repro.obs.core.Observability` bundle, activated around one
  run (a detect call, a fleet replay, a training job) and exported via
  snapshots / JSONL / Prometheus-style text.

Instruments are picklable (the lock is dropped and rebuilt), because
objects holding them — featurizers, caches — travel into
:func:`repro.perf.parallel.parallel_map` worker processes.  A worker's
copy is detached from the parent registry; its increments stay in the
worker, exactly like the caches it instruments.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_registry", "DEFAULT_LATENCY_BUCKETS_S"]

#: Default histogram buckets for wall-clock latencies (seconds): tuned
#: for the repository's observed range — sub-millisecond cache lookups
#: up to multi-second offline fits.
DEFAULT_LATENCY_BUCKETS_S = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1,
                             0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Monotone instance ids for per-object instrument label sets (each
#: cache instance owns its own counters; see :mod:`repro.perf.cache`).
_INSTANCE_IDS = itertools.count()


def next_instance_id() -> int:
    """A process-unique small integer for per-instance metric labels."""
    return next(_INSTANCE_IDS)


def _render_labels(labels: dict[str, str] | None) -> str:
    """Prometheus-style ``{k="v",...}`` suffix (empty for no labels)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class _Instrument:
    """Shared base: identity, lock, pickling discipline."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._lock = threading.Lock()

    @property
    def key(self) -> str:
        """Stable identity string: ``name{label="value",...}``."""
        return self.name + _render_labels(self.labels)

    # Locks are unpicklable; instruments travel into worker processes
    # inside featurizers/caches, so drop and rebuild.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count (resettable for legacy views)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """Zero the counter (legacy ``clear()``-style accessors only)."""
        with self._lock:
            self._value = 0


class Gauge(_Instrument):
    """A value that goes up and down (losses, resident sessions)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are upper bounds in increasing order; an implicit
    ``+Inf`` bucket catches the rest.  ``observe`` is O(len(buckets))
    with one lock acquisition — fine for per-call latencies, not for
    per-element inner loops.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: dict[str, str] | None = None,
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S
                 ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and increasing")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)   # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """JSON-safe cumulative view: ``{"le": cumulative_count, ...}``."""
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = total
        return {"buckets": cumulative, "sum": acc, "count": total}


class MetricsRegistry:
    """Named, labelled instrument collection with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict[str, str] | None, **kwargs):
        key = name + _render_labels(labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {key!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            instrument = cls(name, help=help, labels=labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: dict[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: dict[str, str] | None = None,
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, sorted by identity key."""
        with self._lock:
            return [self._instruments[k]
                    for k in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """One JSON-safe dict of every instrument's current value."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Counter):
                counters[instrument.key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.key] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[instrument.key] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


#: The process-wide always-on registry (see module docstring).
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry infrastructure stats live in."""
    return _DEFAULT
