"""Evaluation harness: run any detector over a labelled test set.

All methods (LEAD, its variants, and the stay-point baselines) expose a
``detect(processed) -> (i', j')`` call; the harness processes the raw
trajectories, scores exact-pair hits (Eq. 14), and records per-trajectory
inference wall time (Fig. 8).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from ..data.dataset import LabeledSample
from ..processing import ProcessedTrajectory, RawTrajectoryProcessor
from .metrics import DetectionRecord

__all__ = ["prepare_test_set", "evaluate_detector"]


def prepare_test_set(samples: Iterable[LabeledSample],
                     processor: RawTrajectoryProcessor | None = None
                     ) -> list[tuple[ProcessedTrajectory, tuple[int, int]]]:
    """Process labelled samples; keep those with a mappable label."""
    processor = processor or RawTrajectoryProcessor()
    prepared = []
    for sample in samples:
        processed = processor.process(sample.trajectory, sample.label)
        if processed is None or processed.label_pair is None:
            continue
        prepared.append((processed, processed.label_pair))
    return prepared


def evaluate_detector(
    detect: Callable[[ProcessedTrajectory], tuple[int, int]],
    test_set: list[tuple[ProcessedTrajectory, tuple[int, int]]],
) -> list[DetectionRecord]:
    """Run ``detect`` over a prepared test set, timing each call."""
    if not test_set:
        raise ValueError("empty test set")
    records = []
    for processed, true_pair in test_set:
        started = time.perf_counter()
        detected = detect(processed)
        elapsed = time.perf_counter() - started
        records.append(DetectionRecord(
            num_stay_points=processed.num_stay_points,
            true_pair=true_pair,
            detected_pair=detected,
            inference_time_s=elapsed))
    return records
