"""Evaluation: Eq. 14 accuracy, bucketing, timing, report tables."""

from .metrics import (BUCKETS, DetectionRecord, accuracy, accuracy_by_bucket,
                      bucket_of, endpoint_accuracy,
                      mean_inference_time_by_bucket, overlap_score)
from .harness import evaluate_detector, prepare_test_set
from .report import (format_accuracy_table, format_loss_curves,
                     format_timing_table)

__all__ = [
    "BUCKETS", "DetectionRecord", "accuracy", "accuracy_by_bucket",
    "bucket_of", "mean_inference_time_by_bucket", "endpoint_accuracy",
    "overlap_score",
    "evaluate_detector", "prepare_test_set",
    "format_accuracy_table", "format_timing_table", "format_loss_curves",
]
