"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

import numpy as np

from .metrics import BUCKETS, DetectionRecord, accuracy_by_bucket, \
    mean_inference_time_by_bucket

__all__ = ["format_accuracy_table", "format_timing_table",
           "format_loss_curves"]

_BUCKET_LABELS = [f"{lo}~{hi}" for lo, hi in BUCKETS] + ["3~14"]


def format_accuracy_table(results: dict[str, list[DetectionRecord]],
                          title: str) -> str:
    """Render an accuracy-by-bucket table (paper Tables III/IV layout)."""
    lines = [title, ""]
    header = f"{'Method':<14}" + "".join(f"{label:>10}"
                                         for label in _BUCKET_LABELS)
    lines.append(header)
    lines.append("-" * len(header))
    share_row = None
    for method, records in results.items():
        table = accuracy_by_bucket(records)
        cells = "".join(f"{table[label][0]:>10.1f}"
                        for label in _BUCKET_LABELS)
        lines.append(f"{method:<14}{cells}")
        if share_row is None:
            total = sum(table[label][1] for label in _BUCKET_LABELS[:-1])
            share_row = "".join(
                f"{100.0 * table[label][1] / max(total, 1):>9.0f}%"
                for label in _BUCKET_LABELS[:-1]) + f"{'100%':>10}"
    if share_row is not None:
        lines.append(f"{'(share)':<14}{share_row}")
    return "\n".join(lines)


def format_timing_table(results: dict[str, list[DetectionRecord]],
                        title: str) -> str:
    """Render mean inference time (ms) by bucket (paper Fig. 8 series)."""
    labels = _BUCKET_LABELS[:-1]
    lines = [title, ""]
    header = f"{'Method':<14}" + "".join(f"{label:>12}" for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for method, records in results.items():
        timing = mean_inference_time_by_bucket(records)
        cells = "".join(f"{1000.0 * timing[label]:>10.1f}ms"
                        for label in labels)
        lines.append(f"{method:<14}{cells}")
    return "\n".join(lines)


def format_loss_curves(curves: dict[str, list[float]], title: str,
                       loss_name: str = "loss") -> str:
    """Render per-epoch loss curves (paper Figs. 9/10 series)."""
    lines = [title, ""]
    for name, losses in curves.items():
        best_epoch = int(np.argmin(losses))
        rendered = " ".join(f"{value:.4f}" for value in losses)
        lines.append(f"{name}: [{rendered}]")
        lines.append(f"  -> minimized at epoch {best_epoch} with "
                     f"{loss_name}={losses[best_epoch]:.4f}")
    return "\n".join(lines)
