"""Detection accuracy metrics (paper Eq. 14 and Table III bucketing)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DetectionRecord", "BUCKETS", "bucket_of", "accuracy",
           "accuracy_by_bucket", "endpoint_accuracy", "overlap_score",
           "mean_inference_time_by_bucket"]

#: The stay-point-count buckets of the paper's Tables III/IV.
BUCKETS: tuple[tuple[int, int], ...] = ((3, 5), (6, 8), (9, 11), (12, 14))


@dataclass(frozen=True)
class DetectionRecord:
    """One test detection: ground truth vs prediction plus timing."""

    num_stay_points: int
    true_pair: tuple[int, int]
    detected_pair: tuple[int, int]
    inference_time_s: float = 0.0

    @property
    def hit(self) -> bool:
        """Eq. 14's hit indicator: exact (i', j') match."""
        return self.detected_pair == self.true_pair


def bucket_of(num_stay_points: int) -> str | None:
    """The bucket label of a stay-point count, or None if out of range."""
    for lo, hi in BUCKETS:
        if lo <= num_stay_points <= hi:
            return f"{lo}~{hi}"
    return None


def accuracy(records: list[DetectionRecord]) -> float:
    """Overall Acc (%) per Eq. 14."""
    if not records:
        raise ValueError("no detection records")
    return 100.0 * sum(r.hit for r in records) / len(records)


def accuracy_by_bucket(records: list[DetectionRecord]
                       ) -> dict[str, tuple[float, int]]:
    """Acc (%) and sample count per bucket, plus the ``3~14`` overall row.

    Records outside 3-14 stay points are excluded from the buckets and
    from the overall row, matching the paper's test-set composition.
    """
    if not records:
        raise ValueError("no detection records")
    table: dict[str, tuple[float, int]] = {}
    in_range: list[DetectionRecord] = []
    for lo, hi in BUCKETS:
        subset = [r for r in records if lo <= r.num_stay_points <= hi]
        in_range.extend(subset)
        if subset:
            table[f"{lo}~{hi}"] = (accuracy(subset), len(subset))
        else:
            table[f"{lo}~{hi}"] = (float("nan"), 0)
    if in_range:
        table["3~14"] = (accuracy(in_range), len(in_range))
    else:
        table["3~14"] = (float("nan"), 0)
    return table


def endpoint_accuracy(records: list[DetectionRecord]
                      ) -> dict[str, float]:
    """Partial-credit diagnostics beyond the paper's exact-pair Acc.

    Returns the percentage of records where the loading stay point was
    correct, where the unloading stay point was correct, and where at
    least one endpoint was correct.  Useful for error analysis: a method
    may locate the loading reliably but mistake a mid-route break for the
    unloading.
    """
    if not records:
        raise ValueError("no detection records")
    loading = sum(r.detected_pair[0] == r.true_pair[0] for r in records)
    unloading = sum(r.detected_pair[1] == r.true_pair[1] for r in records)
    either = sum(r.detected_pair[0] == r.true_pair[0]
                 or r.detected_pair[1] == r.true_pair[1] for r in records)
    n = len(records)
    return {
        "loading": 100.0 * loading / n,
        "unloading": 100.0 * unloading / n,
        "either": 100.0 * either / n,
    }


def overlap_score(records: list[DetectionRecord]) -> float:
    """Mean stay-point-interval IoU between detected and true pairs.

    The paper scores only exact matches (Eq. 14); this softer score
    measures *how wrong* misses are: the intersection-over-union of the
    detected and true ``[i', j']`` ordinal intervals.
    """
    if not records:
        raise ValueError("no detection records")
    total = 0.0
    for r in records:
        ai, aj = r.detected_pair
        bi, bj = r.true_pair
        intersection = max(0, min(aj, bj) - max(ai, bi))
        union = max(aj, bj) - min(ai, bi)
        total += intersection / union if union > 0 else 0.0
    return total / len(records)


def mean_inference_time_by_bucket(records: list[DetectionRecord]
                                  ) -> dict[str, float]:
    """Mean per-trajectory inference time per bucket (paper Fig. 8)."""
    if not records:
        raise ValueError("no detection records")
    out: dict[str, float] = {}
    for lo, hi in BUCKETS:
        subset = [r.inference_time_s for r in records
                  if lo <= r.num_stay_points <= hi]
        out[f"{lo}~{hi}"] = float(np.mean(subset)) if subset else float("nan")
    return out
