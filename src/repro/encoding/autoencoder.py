"""The hierarchical autoencoder (paper §IV-B, Fig. 5).

The compressor has two phases: phase 1 compresses each sp-f-seq and each
mp-f-seq into sp-c-vec / mp-c-vec using two *separate* operators (stay and
move behaviour differ); phase 2 compresses the sequence of sp-c-vecs and
the sequence of mp-c-vecs into SP-c-vec / MP-c-vec using two more
operators (segment-level and point-level hierarchies differ).  The c-vec
is their concatenation.  The decompressor mirrors this with four
decompression operators.

Two ablations from the paper are supported via :class:`EncoderConfig`:

* ``use_attention=False`` — LEAD-NoSel: last hidden state instead of the
  self-attention aggregation;
* ``hierarchical=False`` — LEAD-NoHie: a single compression operator and a
  single decompression operator over the flat, unsegmented f-seq (hidden
  width doubled so the c-vec dimension stays comparable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configbase import ConfigMixin
from ..features import CandidateFeatures
from ..nn import Module, Tensor, concat, mse_loss, no_grad
from ..nn.padding import pad_sequences
from ..nn.rnn import sequence_mask
from .operators import CompressionOperator, DecompressionOperator

__all__ = ["EncoderConfig", "HierarchicalAutoencoder", "build_pair_indices"]


def build_pair_indices(pairs: list[tuple[int, int]]
                       ) -> tuple[np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray]:
    """Vectorized phase-2 gather indices for candidate pairs.

    Candidate ``(i, j)`` covers stay ordinals ``i..j`` (``j - i + 1``
    c-vecs) and move ordinals ``i..j-1`` (``j - i`` c-vecs, possibly
    zero for adjacent stays).  Returns ``(sp_lengths, mp_lengths,
    sp_index, mp_index)`` where the index matrices gather rows of the
    phase-1 c-vec arrays into right-padded ``(N, maxK)`` layouts; padded
    cells point at row 0, which is masked out by the length vectors.

    The move-side index matrix is always at least one column wide so a
    batch whose candidates are all adjacent-stay pairs (every
    ``mp_length == 0``) still produces a well-formed ``(N, 1)`` gather
    instead of crashing on an empty ``max()``.
    """
    pairs_arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    i = pairs_arr[:, 0]
    j = pairs_arr[:, 1]
    sp_lengths = j - i + 1
    mp_lengths = j - i
    cols = np.arange(int(sp_lengths.max()))[None, :]
    sp_index = np.where(cols < sp_lengths[:, None], i[:, None] - 1 + cols, 0)
    mp_cols = np.arange(max(int(mp_lengths.max()), 1))[None, :]
    mp_index = np.where(mp_cols < mp_lengths[:, None],
                        i[:, None] - 1 + mp_cols, 0)
    return sp_lengths, mp_lengths, sp_index, mp_index


def _shape_buckets(lengths: np.ndarray, bucket: bool) -> list[np.ndarray]:
    """Group candidate rows by the power-of-2 ceiling of their length.

    Bucketing trades one big ragged pad for a few tighter ones: rows in
    a bucket are padded to the bucket's true maximum, so a batch mixing
    2-stay and 40-stay candidates does not pay 40-step recurrences for
    everyone.  Correctness never depends on the grouping — padding is
    freeze-masked — so ``bucket=False`` (a single group) is equivalent.
    """
    if not bucket or lengths.shape[0] <= 1:
        return [np.arange(lengths.shape[0])]
    clipped = np.maximum(lengths, 1)
    keys = 2 ** np.ceil(np.log2(clipped)).astype(np.int64)
    return [np.nonzero(keys == key)[0] for key in np.unique(keys)]


@dataclass(frozen=True)
class EncoderConfig(ConfigMixin):
    """Architecture knobs (paper defaults: 32 hidden units, c-vec dim 64)."""

    feature_dim: int = 32
    hidden_size: int = 32
    use_attention: bool = True
    hierarchical: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.feature_dim < 1 or self.hidden_size < 1:
            raise ValueError("dimensions must be positive")

    @property
    def cvec_dim(self) -> int:
        """Dimension of the compressed vector (64 with paper defaults)."""
        return 2 * self.hidden_size


class HierarchicalAutoencoder(Module):
    """Compressor + decompressor over segmented candidate feature sequences."""

    def __init__(self, config: EncoderConfig | None = None) -> None:
        super().__init__()
        self.config = config or EncoderConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        h = cfg.hidden_size
        f = cfg.feature_dim
        attn = cfg.use_attention
        if cfg.hierarchical:
            # Phase 1: per-segment operators (stay vs move separated).
            self.comp_sp = CompressionOperator(f, h, rng, attn)
            self.comp_mp = CompressionOperator(f, h, rng, attn)
            # Phase 2: segment-sequence operators.
            self.comp_sp2 = CompressionOperator(h, h, rng, attn)
            self.comp_mp2 = CompressionOperator(h, h, rng, attn)
            self.decomp_sp2 = DecompressionOperator(h, h, h, rng)
            self.decomp_mp2 = DecompressionOperator(h, h, h, rng)
            self.decomp_sp = DecompressionOperator(h, h, f, rng)
            self.decomp_mp = DecompressionOperator(h, h, f, rng)
        else:
            # LEAD-NoHie: one flat operator pair, double width.
            self.comp_flat = CompressionOperator(f, 2 * h, rng, attn)
            self.decomp_flat = DecompressionOperator(2 * h, 2 * h, f, rng)

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, features: CandidateFeatures) -> Tensor:
        """The c-vec of one candidate, shape ``(1, cvec_dim)``."""
        if not self.config.hierarchical:
            flat = features.flat()
            batch = Tensor(flat[None, :, :])
            return self.comp_flat(batch)
        sp_cvecs = self._phase1(features.stay_segments, self.comp_sp)
        mp_cvecs = self._phase1(features.move_segments, self.comp_mp)
        return self._phase2(sp_cvecs, mp_cvecs)

    def _phase1(self, segments: list[np.ndarray],
                operator: CompressionOperator) -> Tensor:
        """Compress each segment: list of (L_i, F) -> (k, H)."""
        batch, lengths = pad_sequences(segments)
        return operator(Tensor(batch), lengths)

    def _phase2(self, sp_cvecs: Tensor, mp_cvecs: Tensor) -> Tensor:
        """Compress c-vec sequences into the final (1, 2H) c-vec."""
        sp_vec = self.comp_sp2(sp_cvecs.reshape(1, *sp_cvecs.shape))
        mp_vec = self.comp_mp2(mp_cvecs.reshape(1, *mp_cvecs.shape))
        return concat([sp_vec, mp_vec], axis=1)

    # ------------------------------------------------------------------
    # Decompression and reconstruction loss
    # ------------------------------------------------------------------
    def reconstruction_loss(self, features: CandidateFeatures) -> Tensor:
        """MSE between the f-seq and its decompression (paper Eq. 8)."""
        if not self.config.hierarchical:
            return self._flat_loss(features)
        c_vec = self.compress(features)
        h = self.config.hidden_size
        v_sp = c_vec[:, :h]
        v_mp = c_vec[:, h:]
        loss_sp, n_sp = self._branch_loss(v_sp, features.stay_segments,
                                          self.decomp_sp2, self.decomp_sp)
        loss_mp, n_mp = self._branch_loss(v_mp, features.move_segments,
                                          self.decomp_mp2, self.decomp_mp)
        total = n_sp + n_mp
        return loss_sp * (n_sp / total) + loss_mp * (n_mp / total)

    def _branch_loss(self, branch_vec: Tensor, segments: list[np.ndarray],
                     decomp_outer: DecompressionOperator,
                     decomp_inner: DecompressionOperator
                     ) -> tuple[Tensor, int]:
        """Decompress one branch and return (masked MSE, #points)."""
        # Phase 1 of the decompressor: vector -> c-vec sequence.
        k = len(segments)
        cvec_seq = decomp_outer(branch_vec, steps=k)      # (1, k, H)
        cvec_seq = cvec_seq.reshape(k, self.config.hidden_size)
        # Phase 2: each c-vec -> feature subsequence (batched over segments).
        target, lengths = pad_sequences(segments)
        recon = decomp_inner(cvec_seq, steps=int(lengths.max()),
                             lengths=lengths)             # (k, T, F)
        mask = sequence_mask(lengths, int(lengths.max()))
        loss = mse_loss(recon, target, mask=mask)
        return loss, int(lengths.sum())

    def _flat_loss(self, features: CandidateFeatures) -> Tensor:
        flat = features.flat()
        c_vec = self.comp_flat(Tensor(flat[None, :, :]))
        recon = self.decomp_flat(c_vec, steps=len(flat))
        return mse_loss(recon, flat[None, :, :])

    def reconstruction_loss_batch(self, batch: list[CandidateFeatures]
                                  ) -> Tensor:
        """Mean reconstruction MSE over a mini-batch of candidates.

        Mathematically the mean of per-candidate losses, but computed with
        shared padded batches so a training step costs a handful of large
        matmuls instead of hundreds of small ones — essential on CPU.
        """
        if not batch:
            raise ValueError("empty batch")
        if not self.config.hierarchical:
            flats = [f.flat() for f in batch]
            padded, lengths = pad_sequences(flats)
            c_vec = self.comp_flat(Tensor(padded), lengths)
            recon = self.decomp_flat(c_vec, steps=int(lengths.max()),
                                     lengths=lengths)
            mask = sequence_mask(lengths, int(lengths.max()))
            return mse_loss(recon, padded, mask=mask)
        h = self.config.hidden_size
        # Flat lists of all segments, with per-candidate index ranges.
        sp_all: list[np.ndarray] = []
        mp_all: list[np.ndarray] = []
        sp_index = np.zeros((len(batch), max(len(f.stay_segments)
                                             for f in batch)), dtype=np.int64)
        mp_index = np.zeros((len(batch), max(len(f.move_segments)
                                             for f in batch)), dtype=np.int64)
        sp_counts = np.zeros(len(batch), dtype=np.int64)
        mp_counts = np.zeros(len(batch), dtype=np.int64)
        for b, features in enumerate(batch):
            for segment in features.stay_segments:
                sp_index[b, sp_counts[b]] = len(sp_all)
                sp_all.append(segment)
                sp_counts[b] += 1
            for segment in features.move_segments:
                mp_index[b, mp_counts[b]] = len(mp_all)
                mp_all.append(segment)
                mp_counts[b] += 1
        # Phase 1 over every segment of every candidate at once.
        sp_cvecs = self._phase1(sp_all, self.comp_sp)     # (K_sp, H)
        mp_cvecs = self._phase1(mp_all, self.comp_mp)     # (K_mp, H)
        # Phase 2 per candidate via one fancy-indexed gather.
        sp_seq = sp_cvecs[sp_index]                       # (B, maxK, H)
        mp_seq = mp_cvecs[mp_index]
        v_sp = self.comp_sp2(sp_seq, sp_counts)           # (B, H)
        v_mp = self.comp_mp2(mp_seq, mp_counts)
        loss_sp, n_sp = self._branch_loss_batch(
            v_sp, sp_all, sp_index, sp_counts, self.decomp_sp2,
            self.decomp_sp)
        loss_mp, n_mp = self._branch_loss_batch(
            v_mp, mp_all, mp_index, mp_counts, self.decomp_mp2,
            self.decomp_mp)
        total = n_sp + n_mp
        return loss_sp * (n_sp / total) + loss_mp * (n_mp / total)

    def _branch_loss_batch(self, branch_vec: Tensor,
                           segments: list[np.ndarray],
                           index: np.ndarray, counts: np.ndarray,
                           decomp_outer: DecompressionOperator,
                           decomp_inner: DecompressionOperator
                           ) -> tuple[Tensor, int]:
        """Batched version of :meth:`_branch_loss` over many candidates."""
        max_k = int(counts.max())
        cvec_seq = decomp_outer(branch_vec, steps=max_k,
                                lengths=counts)            # (B, maxK, H)
        # Flatten back to one row per real segment (same order as
        # ``segments``), via the (b, k) coordinates of each segment.
        coords_b: list[int] = []
        coords_k: list[int] = []
        for b, count in enumerate(counts):
            for k in range(int(count)):
                coords_b.append(b)
                coords_k.append(k)
        flat_cvecs = cvec_seq[np.asarray(coords_b), np.asarray(coords_k)]
        target, lengths = pad_sequences(segments)
        recon = decomp_inner(flat_cvecs, steps=int(lengths.max()),
                             lengths=lengths)
        mask = sequence_mask(lengths, int(lengths.max()))
        return mse_loss(recon, target, mask=mask), int(lengths.sum())

    # ------------------------------------------------------------------
    # Inference over all candidates of one trajectory
    # ------------------------------------------------------------------
    def encode_trajectory(self, stay_segments: list[np.ndarray],
                          move_segments: list[np.ndarray],
                          pairs: list[tuple[int, int]]) -> np.ndarray:
        """Encode every candidate of a raw trajectory, shape ``(N, 2H)``.

        Inference-only wrapper of :meth:`encode_trajectory_tensor`.
        """
        with no_grad():
            return self.encode_trajectory_tensor(
                stay_segments, move_segments, pairs).numpy()

    def encode_trajectory_tensor(self, stay_segments: list[np.ndarray],
                                 move_segments: list[np.ndarray],
                                 pairs: list[tuple[int, int]]) -> Tensor:
        """Differentiable batched encoding of all candidates, ``(N, 2H)``.

        ``stay_segments[i]`` / ``move_segments[i]`` are the featurized
        segments of stay point ``i+1`` / move point ``i+1``; candidate
        ``(i', j')`` uses stay ordinals ``i'..j'`` and move ordinals
        ``i'..j'-1``.  Phase-1 compression runs once per *unique* segment
        rather than once per candidate — the big saving that lets LEAD
        answer with a single forward computation (paper §VI-B) and that
        makes joint fine-tuning affordable on CPU.
        """
        if not pairs:
            raise ValueError("no candidate pairs to encode")
        if not self.config.hierarchical:
            return self._encode_flat(stay_segments, move_segments, pairs)
        sp_cvecs = self._phase1(stay_segments, self.comp_sp)  # (n, H)
        mp_cvecs = self._phase1(move_segments, self.comp_mp)
        sp_lengths, mp_lengths, sp_index, mp_index = build_pair_indices(
            pairs)
        sp_vec = self.comp_sp2(sp_cvecs[sp_index], sp_lengths)
        mp_vec = self.comp_mp2(mp_cvecs[mp_index], mp_lengths)
        return concat([sp_vec, mp_vec], axis=1)

    def _encode_flat(self, stay_segments, move_segments, pairs) -> Tensor:
        flats = []
        for i, j in pairs:
            parts = []
            for ordinal in range(i, j):
                parts.append(stay_segments[ordinal - 1])
                parts.append(move_segments[ordinal - 1])
            parts.append(stay_segments[j - 1])
            flats.append(np.concatenate(parts, axis=0))
        batch, lengths = pad_sequences(flats)
        return self.comp_flat(Tensor(batch), lengths)

    # ------------------------------------------------------------------
    # Inference over all candidates of many trajectories at once
    # ------------------------------------------------------------------
    def encode_trajectories(self, stay_lists: list[list[np.ndarray]],
                            move_lists: list[list[np.ndarray]],
                            pairs_lists: list[list[tuple[int, int]]],
                            bucket: bool = True) -> list[np.ndarray]:
        """Encode the candidates of many trajectories in fused batches.

        Phase 1 runs *once* over every segment of every trajectory (two
        GEMM-dominated passes instead of two per trajectory), and phase 2
        runs once per shape bucket over the merged candidate set.  The
        per-trajectory results equal :meth:`encode_trajectory` output up
        to floating-point associativity of the underlying GEMMs (padding
        itself is exact: freeze-masked recurrences and ``-1e9`` masked
        attention zero padded contributions bit-for-bit).

        Returns one ``(N_t, cvec_dim)`` array per input trajectory.
        """
        if not (len(stay_lists) == len(move_lists) == len(pairs_lists)):
            raise ValueError("per-trajectory lists must align")
        if not stay_lists:
            return []
        if any(not pairs for pairs in pairs_lists):
            raise ValueError("no candidate pairs to encode")
        with no_grad():
            if not self.config.hierarchical:
                return self._encode_flat_many(
                    stay_lists, move_lists, pairs_lists)
            # Phase 1 once over every segment of every trajectory.
            sp_offsets = np.cumsum([0] + [len(s) for s in stay_lists])
            mp_offsets = np.cumsum([0] + [len(m) for m in move_lists])
            sp_all = [seg for segs in stay_lists for seg in segs]
            mp_all = [seg for segs in move_lists for seg in segs]
            sp_cvecs = self._phase1(sp_all, self.comp_sp).numpy()
            mp_cvecs = self._phase1(mp_all, self.comp_mp).numpy()
            # Flatten candidates, rebasing ordinals to global row offsets.
            counts = [len(pairs) for pairs in pairs_lists]
            pairs_arr = np.concatenate(
                [np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
                 for pairs in pairs_lists], axis=0)
            sp_start = np.repeat(sp_offsets[:-1], counts) \
                + pairs_arr[:, 0] - 1
            mp_start = np.repeat(mp_offsets[:-1], counts) \
                + pairs_arr[:, 0] - 1
            sp_lengths = pairs_arr[:, 1] - pairs_arr[:, 0] + 1
            mp_lengths = pairs_arr[:, 1] - pairs_arr[:, 0]
            h = self.config.hidden_size
            out = np.empty((pairs_arr.shape[0], self.config.cvec_dim),
                           dtype=sp_cvecs.dtype)
            for rows in _shape_buckets(sp_lengths, bucket):
                width = int(sp_lengths[rows].max())
                cols = np.arange(width)[None, :]
                sp_idx = np.where(cols < sp_lengths[rows, None],
                                  sp_start[rows, None] + cols, 0)
                mp_cols = np.arange(max(width - 1, 1))[None, :]
                mp_idx = np.where(mp_cols < mp_lengths[rows, None],
                                  mp_start[rows, None] + mp_cols, 0)
                sp_vec = self.comp_sp2(Tensor(sp_cvecs[sp_idx]),
                                       sp_lengths[rows])
                mp_vec = self.comp_mp2(Tensor(mp_cvecs[mp_idx]),
                                       mp_lengths[rows])
                out[rows, :h] = sp_vec.numpy()
                out[rows, h:] = mp_vec.numpy()
            return list(np.split(out, np.cumsum(counts)[:-1]))

    def _encode_flat_many(self, stay_lists, move_lists,
                          pairs_lists) -> list[np.ndarray]:
        """LEAD-NoHie batched inference: one flat pass over all candidates."""
        flats: list[np.ndarray] = []
        counts: list[int] = []
        for stays, moves, pairs in zip(stay_lists, move_lists, pairs_lists):
            counts.append(len(pairs))
            for i, j in pairs:
                parts = []
                for ordinal in range(i, j):
                    parts.append(stays[ordinal - 1])
                    parts.append(moves[ordinal - 1])
                parts.append(stays[j - 1])
                flats.append(np.concatenate(parts, axis=0))
        batch, lengths = pad_sequences(flats)
        out = self.comp_flat(Tensor(batch), lengths).numpy()
        return list(np.split(out, np.cumsum(counts)[:-1]))

    def encode(self, features: CandidateFeatures) -> np.ndarray:
        """The c-vec of one candidate as a ``(cvec_dim,)`` array."""
        with no_grad():
            return self.compress(features).numpy()[0]
