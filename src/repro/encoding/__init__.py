"""Candidate trajectory encoding — LEAD component 2 (paper §IV).

Feature sequences are compressed into 64-dim c-vecs by a hierarchical
autoencoder (DESIGN.md S15).
"""

from .operators import CompressionOperator, DecompressionOperator
from .autoencoder import EncoderConfig, HierarchicalAutoencoder
from .trainer import AutoencoderTrainer, AutoencoderTrainingConfig

__all__ = [
    "CompressionOperator", "DecompressionOperator",
    "EncoderConfig", "HierarchicalAutoencoder",
    "AutoencoderTrainer", "AutoencoderTrainingConfig",
]
