"""Compression and decompression operators (paper §IV-B, Eqs. 2-7).

A *compression operator* is an LSTM followed by a self-attention aggregator
(Eqs. 2-3) and two fully connected layers with a tanh (Eq. 4): it maps a
variable-length sequence to one fixed-size vector.

A *decompression operator* is an LSTM that consumes the same input vector
at every step (Eq. 5) followed by two fully connected layers with a tanh
(Eq. 6): it expands a vector back into a sequence.
"""

from __future__ import annotations

import numpy as np

from ..nn import (Linear, LSTM, LSTMDecoder, Module, SelfAttentionAggregator,
                  Tensor)
from ..nn.fused import fused_enabled, mlp_head

__all__ = ["CompressionOperator", "DecompressionOperator"]


def _head(fc1: Linear, fc2: Linear, x: Tensor) -> Tensor:
    """``tanh(fc2(fc1(x)))`` — one fused tape node when fusion is on."""
    if fused_enabled():
        return mlp_head(x, fc1.weight, fc1.bias, fc2.weight, fc2.bias)
    return fc2(fc1(x)).tanh()


class CompressionOperator(Module):
    """Sequence -> vector (LSTM + self-attention + 2 FC + tanh).

    With ``use_attention=False`` (the LEAD-NoSel ablation) the attention
    aggregation is replaced by the LSTM's last hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None,
                 use_attention: bool = True) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.use_attention = use_attention
        self.lstm = LSTM(input_size, hidden_size, rng)
        if use_attention:
            self.attention = SelfAttentionAggregator(hidden_size, rng)
        self.fc1 = Linear(hidden_size, hidden_size, rng)
        self.fc2 = Linear(hidden_size, hidden_size, rng)

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Compress ``(B, T, F)`` into ``(B, H)``."""
        outputs, (last_hidden, _) = self.lstm(x, lengths)
        if self.use_attention:
            aggregated = self.attention(outputs, last_hidden, lengths)
        else:
            aggregated = last_hidden
        return _head(self.fc1, self.fc2, aggregated)


class DecompressionOperator(Module):
    """Vector -> sequence (LSTM decoder + 2 FC + tanh)."""

    def __init__(self, input_size: int, hidden_size: int, output_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.decoder = LSTMDecoder(input_size, hidden_size, rng)
        self.fc1 = Linear(hidden_size, hidden_size, rng)
        self.fc2 = Linear(hidden_size, output_size, rng)

    def forward(self, v: Tensor, steps: int,
                lengths: np.ndarray | None = None) -> Tensor:
        """Expand ``(B, D)`` into ``(B, steps, output_size)``."""
        hidden = self.decoder(v, steps, lengths)
        return _head(self.fc1, self.fc2, hidden)
