"""Self-supervised training of the hierarchical autoencoder (paper §IV-B).

All f-seqs derived from the historical raw trajectories are shuffled each
epoch and the MSE reconstruction loss is minimized with Adam and early
stopping.  The paper trains with batch size 1 and averages gradients over
B = 64 consecutive samples; on one CPU core we compute the mathematically
equivalent mean loss over a padded mini-batch instead, which replaces
hundreds of small matmuls per update with a few large ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..configbase import ConfigMixin
from ..features import CandidateFeatures
from ..nn import (Adam, CheckpointManager, EarlyStopping, TrainingHistory,
                  clip_grad_norm, use_fused)
from ..obs.core import active_obs
from .autoencoder import HierarchicalAutoencoder

__all__ = ["AutoencoderTrainer", "AutoencoderTrainingConfig"]


@dataclass
class AutoencoderTrainingConfig(ConfigMixin):
    """Training-loop knobs."""

    epochs: int = 12
    learning_rate: float = 3e-3
    batch_size: int = 16           # candidates per optimizer step
    patience: int = 3
    max_samples_per_epoch: int | None = None
    max_grad_norm: float = 5.0
    seed: int = 0
    #: Group similarly-sized candidates into the same mini-batch (stable
    #: sort of each epoch's shuffled order by stay count, then by longest
    #: segment).  Cuts wasted padded timesteps substantially on real
    #: data; ``False`` preserves the exact historical batch stream.
    bucket_batches: bool = True
    #: Route recurrent/attention/linear forwards through the fused
    #: single-node autograd ops (:mod:`repro.nn.fused`).  ``False``
    #: forces the legacy per-step tape.
    fused: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


class AutoencoderTrainer:
    """Fits a :class:`HierarchicalAutoencoder` on candidate f-seqs."""

    def __init__(self, model: HierarchicalAutoencoder,
                 config: AutoencoderTrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or AutoencoderTrainingConfig()

    def fit(self, samples: list[CandidateFeatures],
            verbose: bool = False,
            checkpoint: CheckpointManager | None = None) -> TrainingHistory:
        """Train on (shuffled) candidate feature sequences.

        Returns the per-epoch loss history (used for the paper's Fig. 9).

        When ``checkpoint`` is given, the full training state (weights,
        Adam moments, RNG, early-stopping counters, history) is saved
        after every epoch, and a previously saved state is restored
        first — a killed ``fit()`` resumes at the next epoch and ends
        bit-for-bit identical to an uninterrupted run.
        """
        if not samples:
            raise ValueError("no training samples")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        stopper = EarlyStopping(patience=cfg.patience)
        history = TrainingHistory(name="hierarchical-autoencoder")
        start_epoch = 0
        if checkpoint is not None:
            state = checkpoint.load()
            if state is not None:
                start_epoch = checkpoint.restore(
                    state, modules={"model": self.model},
                    optimizer=optimizer, rng=rng, stopper=stopper)
                if state.histories:
                    history = state.histories[0]
        size_keys = None
        if cfg.bucket_batches:
            # (segment count, longest segment): the segment count is
            # monotone in the stay count driving the phase-2 sequence
            # length; the longest segment drives the phase-1 padded
            # width.
            size_keys = np.array(
                [(len(s.segments), max(len(seg) for seg in s.segments))
                 for s in samples])
        self.model.train()
        with use_fused(cfg.fused):
            self._run_epochs(samples, cfg, rng, optimizer, stopper, history,
                             start_epoch, size_keys, verbose, checkpoint)
        self.model.eval()
        if checkpoint is not None:
            checkpoint.clear()
        return history

    def _run_epochs(self, samples, cfg, rng, optimizer, stopper, history,
                    start_epoch, size_keys, verbose, checkpoint) -> None:
        for epoch in range(start_epoch, cfg.epochs):
            if stopper.should_stop:
                break
            epoch_start = time.perf_counter()
            order = rng.permutation(len(samples))
            if cfg.max_samples_per_epoch is not None:
                order = order[:cfg.max_samples_per_epoch]
            if size_keys is not None and len(order) > cfg.batch_size:
                # Stable sort of the *shuffled* order: batches group
                # similarly-sized samples while ties keep this epoch's
                # random order, so epochs still differ.
                keys = size_keys[order]
                order = order[np.lexsort((keys[:, 1], keys[:, 0]))]
            total = 0.0
            batches = 0
            for start in range(0, len(order), cfg.batch_size):
                chosen = order[start:start + cfg.batch_size]
                batch = [samples[int(c)] for c in chosen]
                loss = self.model.reconstruction_loss_batch(batch)
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.max_grad_norm)
                optimizer.step()
                total += loss.item()
                batches += 1
            epoch_loss = total / batches
            history.record(epoch_loss)
            self._publish_epoch(epoch, epoch_loss, batches,
                                time.perf_counter() - epoch_start)
            if verbose:
                print(f"[autoencoder] epoch {epoch}: mse={epoch_loss:.5f}")
            should_stop = stopper.update(epoch_loss)
            if checkpoint is not None:
                checkpoint.save(epoch=epoch,
                                modules={"model": self.model},
                                optimizer=optimizer, rng=rng,
                                stopper=stopper, histories=[history])
            if should_stop:
                break

    @staticmethod
    def _publish_epoch(epoch: int, loss: float, steps: int,
                       elapsed_s: float) -> None:
        """Per-epoch training gauges when telemetry is active."""
        ob = active_obs()
        if ob is None:
            return
        labels = {"model": "autoencoder"}
        ob.registry.gauge("train_epoch", help="Last completed epoch index.",
                          labels=labels).set(epoch)
        ob.registry.gauge("train_epoch_loss",
                          help="Mean loss of the last completed epoch.",
                          labels=labels).set(loss)
        if elapsed_s > 0.0:
            ob.registry.gauge(
                "train_steps_per_second",
                help="Optimizer steps per second over the last epoch.",
                labels=labels).set(steps / elapsed_s)
