"""Stay point-based baselines: SP-R, SP-GRU, SP-LSTM (DESIGN.md S20)."""

from .base import greedy_selection
from .sp_r import SPRDetector, WhiteList
from .sp_nn import SPNNDetector, SPNNTrainingConfig, StayPointClassifier

__all__ = [
    "greedy_selection", "SPRDetector", "WhiteList",
    "SPNNDetector", "SPNNTrainingConfig", "StayPointClassifier",
]
