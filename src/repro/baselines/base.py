"""Shared machinery of the stay-point baselines (paper §VI-A).

All three baselines (SP-R, SP-GRU, SP-LSTM) classify each stay point as an
l/u (loading/unloading) stay point or an ordinary one, then apply the same
greedy strategy: the earliest l/u stay point is the loading stay point and
the latest is the unloading stay point.  With fewer than two l/u stay
points the detection falls back to the *default loaded trajectory* — first
extracted stay point to last.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["greedy_selection"]


def greedy_selection(num_stay_points: int,
                     lu_flags: Sequence[bool]) -> tuple[int, int]:
    """Map per-stay-point l/u flags to an (i', j') ordinal pair.

    Returns 1-based ordinals.  Applies the paper's default fallback when
    fewer than two l/u stay points were found.
    """
    if num_stay_points < 2:
        raise ValueError("need at least two stay points")
    if len(lu_flags) != num_stay_points:
        raise ValueError("one flag per stay point required")
    lu_ordinals = [i + 1 for i, flag in enumerate(lu_flags) if flag]
    if len(lu_ordinals) >= 2:
        return (lu_ordinals[0], lu_ordinals[-1])
    return (1, num_stay_points)
