"""SP-R: rule-based white-list baseline (paper §VI-A, baseline 1).

The white list stores both endpoints of every training-set loaded
trajectory as loading/unloading locations.  A stay point is classified as
l/u when a white-list location lies within the searching radius (500 m) of
its centroid.  The lookup is a deliberate linear scan — the paper notes
SP-R's inference cost comes from traversing the whole white list per stay
point, and the efficiency figure (Fig. 8) depends on that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo import haversine_m
from ..model import LoadedLabel
from ..processing import ProcessedTrajectory
from .base import greedy_selection

__all__ = ["WhiteList", "SPRDetector"]


@dataclass
class WhiteList:
    """Known loading/unloading locations harvested from training labels."""

    locations: list[tuple[float, float]] = field(default_factory=list)

    def add_label(self, label: LoadedLabel) -> None:
        self.locations.append((label.loading_lat, label.loading_lng))
        self.locations.append((label.unloading_lat, label.unloading_lng))

    def __len__(self) -> int:
        return len(self.locations)

    def matches(self, lat: float, lng: float, radius_m: float) -> bool:
        """Linear scan: is any stored location within ``radius_m``?"""
        for loc_lat, loc_lng in self.locations:
            if haversine_m(lat, lng, loc_lat, loc_lng) <= radius_m:
                return True
        return False


class SPRDetector:
    """The complete SP-R baseline."""

    def __init__(self, search_radius_m: float = 500.0) -> None:
        if search_radius_m <= 0:
            raise ValueError("search radius must be positive")
        self.search_radius_m = search_radius_m
        self.white_list = WhiteList()

    def fit(self, training: list[tuple[ProcessedTrajectory, LoadedLabel]]
            ) -> "SPRDetector":
        """Harvest the white list from training labels."""
        for _, label in training:
            self.white_list.add_label(label)
        return self

    def detect(self, processed: ProcessedTrajectory) -> tuple[int, int]:
        """Detected (i', j') ordinal pair for one processed trajectory."""
        flags = []
        for sp in processed.stay_points:
            lat, lng = sp.centroid
            flags.append(self.white_list.matches(lat, lng,
                                                 self.search_radius_m))
        return greedy_selection(processed.num_stay_points, flags)
