"""SP-GRU and SP-LSTM: recurrent stay-point classifiers (paper §VI-A).

A GRU or LSTM with 128 hidden units reads the feature sequence of one stay
point; the last hidden state feeds a 1-unit sigmoid layer that scores the
stay point as l/u vs ordinary.  The greedy strategy then picks the loading
and unloading stay points.

Classification at inference runs one stay point at a time, as the paper
describes ("they need to classify all stay points before they return the
loaded trajectory") — this sequential behaviour is what Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features import CandidateFeaturizer, FEATURE_DIM
from ..model import StayPoint
from ..nn import (Adam, EarlyStopping, GRU, Linear, LSTM, Module, Tensor,
                  TrainingHistory, bce_loss, no_grad)
from ..nn.padding import pad_sequences
from ..processing import ProcessedTrajectory
from .base import greedy_selection

__all__ = ["StayPointClassifier", "SPNNDetector", "SPNNTrainingConfig"]


class StayPointClassifier(Module):
    """Recurrent binary classifier over stay-point feature sequences."""

    def __init__(self, cell: str = "lstm", input_dim: int = FEATURE_DIM,
                 hidden_size: int = 128, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        if cell == "lstm":
            self.rnn = LSTM(input_dim, hidden_size, rng)
        elif cell == "gru":
            self.rnn = GRU(input_dim, hidden_size, rng)
        else:
            raise ValueError(f"unknown cell type: {cell!r}")
        self.cell = cell
        self.head = Linear(hidden_size, 1, rng)

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        """Probabilities of shape ``(B,)`` that each stay point is l/u."""
        if self.cell == "lstm":
            _, (last_hidden, _) = self.rnn(x, lengths)
        else:
            _, last_hidden = self.rnn(x, lengths)
        return self.head(last_hidden).sigmoid().reshape(-1)


@dataclass
class SPNNTrainingConfig:
    epochs: int = 10
    learning_rate: float = 1e-3
    batch_size: int = 64
    patience: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.learning_rate <= 0 or self.batch_size < 1:
            raise ValueError("invalid training configuration")


class SPNNDetector:
    """The complete SP-GRU / SP-LSTM baseline."""

    def __init__(self, cell: str, featurizer: CandidateFeaturizer,
                 config: SPNNTrainingConfig | None = None,
                 threshold: float = 0.5, seed: int = 0) -> None:
        self.classifier = StayPointClassifier(cell=cell, seed=seed)
        self.featurizer = featurizer
        self.config = config or SPNNTrainingConfig()
        self.threshold = threshold

    # ------------------------------------------------------------------
    def fit(self, training: list[tuple[ProcessedTrajectory,
                                       tuple[int, int]]],
            verbose: bool = False) -> TrainingHistory:
        """Train on processed trajectories with (i', j') ordinal labels."""
        sequences: list[np.ndarray] = []
        targets: list[float] = []
        for processed, pair in training:
            for sp in processed.stay_points:
                sequences.append(self.featurizer.stay_point_features(sp))
                targets.append(1.0 if sp.ordinal in pair else 0.0)
        if not sequences:
            raise ValueError("no training stay points")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.classifier.parameters(), lr=cfg.learning_rate)
        stopper = EarlyStopping(patience=cfg.patience)
        history = TrainingHistory(name=f"sp-{self.classifier.cell}")
        targets_arr = np.asarray(targets)
        self.classifier.train()
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(sequences))
            total = 0.0
            batches = 0
            for start in range(0, len(order), cfg.batch_size):
                chosen = order[start:start + cfg.batch_size]
                batch, lengths = pad_sequences(
                    [sequences[int(c)] for c in chosen])
                probs = self.classifier(Tensor(batch), lengths)
                loss = bce_loss(probs, targets_arr[chosen])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                total += loss.item()
                batches += 1
            epoch_loss = total / batches
            history.record(epoch_loss)
            if verbose:
                print(f"[{history.name}] epoch {epoch}: bce={epoch_loss:.4f}")
            if stopper.update(epoch_loss):
                break
        self.classifier.eval()
        return history

    # ------------------------------------------------------------------
    def classify_stay_point(self, stay_point: StayPoint) -> float:
        """Probability that one stay point is an l/u stay point."""
        features = self.featurizer.stay_point_features(stay_point)
        with no_grad():
            prob = self.classifier(Tensor(features[None, :, :]))
        return float(prob.numpy()[0])

    def detect(self, processed: ProcessedTrajectory) -> tuple[int, int]:
        """Detected (i', j') pair; classifies stay points one at a time."""
        flags = [self.classify_stay_point(sp) >= self.threshold
                 for sp in processed.stay_points]
        return greedy_selection(processed.num_stay_points, flags)
