"""Epoch-level checkpoint/resume for the training loops.

A checkpoint captures everything a trainer needs to continue *exactly*
where a killed process stopped:

* the parameters of every module being trained,
* the optimizer's moment buffers and step count,
* the numpy ``Generator`` bit-state (so future shuffles replay),
* the :class:`EarlyStopping` counters,
* the per-epoch loss histories recorded so far.

Two files per checkpoint, both written atomically (arrays last so the
metadata never points at missing arrays):

* ``<name>.npz``  — all arrays (``module/<mod>/<param>``,
  ``optim/<slot>/<i>`` keys);
* ``<name>.json`` — epoch counter, RNG state, stopper state, histories,
  optimizer scalars, and the SHA-256 of the ``.npz``.

A resumed ``fit()`` replays the remaining epochs bit-for-bit identically
to an uninterrupted run (verified in ``tests/test_resilience.py``).

Supervision (PR 6) is opt-in: pass a
:class:`~repro.supervise.RetryPolicy` to retry transient IO failures on
every save/load syscall, and a :class:`~repro.supervise.CircuitBreaker`
to stop re-reading a slot that keeps parsing as corrupt — a disk that
serves different garbage on every read should not get unlimited
attempts.  Both default to ``None`` so crash-consistency tests observe
raw failures.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import (ArtifactCorruptedError, CheckpointCorruptedError,
                      CircuitOpenError)
from ..io import (atomic_savez, atomic_write_json, load_checked_json,
                  load_checked_npz, sha256_file)
from .module import Module
from .optim import Optimizer
from .training import EarlyStopping, TrainingHistory

__all__ = ["CheckpointManager", "CheckpointState"]

_SCHEMA = 1


@dataclass
class CheckpointState:
    """A parsed checkpoint, ready to be pushed back into a trainer."""

    epoch: int                                # last *completed* epoch
    module_states: dict[str, dict[str, np.ndarray]]
    optimizer_state: dict[str, object] | None
    rng_state: dict[str, object] | None
    stopper_state: dict[str, object] | None
    histories: list[TrainingHistory]
    extra: dict[str, object]

    @property
    def next_epoch(self) -> int:
        return self.epoch + 1


class CheckpointManager:
    """Owns one named checkpoint slot inside a directory.

    ``save`` overwrites the slot after each epoch; only the latest
    completed epoch is kept (resume never needs more).  A damaged slot
    raises :class:`CheckpointCorruptedError` when ``strict`` (default),
    otherwise it is discarded with a warning and training restarts.
    """

    def __init__(self, directory: str | Path, name: str = "checkpoint",
                 strict: bool = True, retry=None,
                 corruption_breaker=None) -> None:
        self.directory = Path(directory)
        self.name = name
        self.strict = strict
        #: Optional RetryPolicy applied around each save/load IO call.
        self.retry = retry
        #: Optional CircuitBreaker tripped by corrupt loads; while open,
        #: ``load`` refuses to touch the slot (lenient → None + warning,
        #: strict → CircuitOpenError).
        self.corruption_breaker = corruption_breaker

    def _io(self, fn, *args, **kwargs):
        """One save/load syscall, retried when a policy is configured."""
        if self.retry is None:
            return fn(*args, **kwargs)
        return self.retry.call(fn, *args, **kwargs)

    # ------------------------------------------------------------------
    @property
    def arrays_path(self) -> Path:
        return self.directory / f"{self.name}.npz"

    @property
    def meta_path(self) -> Path:
        return self.directory / f"{self.name}.json"

    def exists(self) -> bool:
        return self.meta_path.exists()

    def clear(self) -> None:
        """Delete the slot (called after a fit completes)."""
        self.arrays_path.unlink(missing_ok=True)
        self.meta_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, *, epoch: int, modules: dict[str, Module],
             optimizer: Optimizer | None = None,
             rng: np.random.Generator | None = None,
             stopper: EarlyStopping | None = None,
             histories: list[TrainingHistory] | None = None,
             extra: dict[str, object] | None = None) -> None:
        """Persist the state reached after completing ``epoch``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        for mod_name, module in modules.items():
            for key, value in module.state_dict().items():
                arrays[f"module/{mod_name}/{key}"] = value
        optimizer_scalars: dict[str, object] | None = None
        if optimizer is not None:
            state = optimizer.state_dict()
            optimizer_scalars = dict(state.get("scalars", {}))
            for slot, values in state.get("arrays", {}).items():
                for i, value in enumerate(values):
                    arrays[f"optim/{slot}/{i:04d}"] = value
        self._io(atomic_savez, self.arrays_path, **arrays)
        meta = {
            "schema": _SCHEMA,
            "name": self.name,
            "epoch": int(epoch),
            "modules": sorted(modules),
            "optimizer_scalars": optimizer_scalars,
            "rng_state": _jsonable_rng_state(rng),
            "stopper": stopper.state_dict() if stopper is not None else None,
            "histories": [h.to_dict() for h in (histories or [])],
            "extra": extra or {},
            "arrays_sha256": sha256_file(self.arrays_path),
        }
        self._io(atomic_write_json, self.meta_path, meta)

    # ------------------------------------------------------------------
    # Load / restore
    # ------------------------------------------------------------------
    def load(self) -> CheckpointState | None:
        """Parse the slot; ``None`` when empty (or corrupt + lenient)."""
        if not self.exists():
            return None
        breaker = self.corruption_breaker
        if breaker is not None and not breaker.allow():
            if self.strict:
                raise CircuitOpenError(breaker.name,
                                       breaker.consecutive_failures)
            warnings.warn(
                f"checkpoint slot {self.meta_path} kept loading as "
                "corrupt; breaker is open, restarting from scratch",
                stacklevel=2)
            return None
        try:
            state = self._load_checked()
        except CheckpointCorruptedError:
            if breaker is not None:
                breaker.record_failure()
            if self.strict:
                raise
            warnings.warn(
                f"discarding corrupted checkpoint {self.meta_path}; "
                "training restarts from scratch", stacklevel=2)
            self.clear()
            return None
        if breaker is not None:
            breaker.record_success()
        return state

    def _load_checked(self) -> CheckpointState:
        try:
            meta = self._io(load_checked_json, self.meta_path)
        except CheckpointCorruptedError:
            raise
        except ArtifactCorruptedError as exc:
            raise CheckpointCorruptedError(self.meta_path,
                                           exc.reason) from exc
        if not isinstance(meta, dict) or "epoch" not in meta:
            raise CheckpointCorruptedError(
                self.meta_path, "metadata is not a checkpoint object")
        if int(meta.get("schema", -1)) > _SCHEMA:
            raise CheckpointCorruptedError(
                self.meta_path,
                f"schema {meta.get('schema')} is newer than {_SCHEMA}")
        if not self.arrays_path.exists():
            raise CheckpointCorruptedError(self.arrays_path,
                                           "array file missing")
        digest = sha256_file(self.arrays_path)
        if meta.get("arrays_sha256") != digest:
            raise CheckpointCorruptedError(
                self.arrays_path,
                f"checksum mismatch: metadata says "
                f"{meta.get('arrays_sha256')}, file hashes to {digest}")
        try:
            arrays = self._io(load_checked_npz, self.arrays_path)
        except Exception as exc:  # damaged despite matching digest
            raise CheckpointCorruptedError(self.arrays_path,
                                           str(exc)) from exc
        module_states: dict[str, dict[str, np.ndarray]] = {}
        optim_arrays: dict[str, list[tuple[int, np.ndarray]]] = {}
        for key, value in arrays.items():
            kind, _, rest = key.partition("/")
            if kind == "module":
                mod_name, _, param = rest.partition("/")
                module_states.setdefault(mod_name, {})[param] = value
            elif kind == "optim":
                slot, _, index = rest.partition("/")
                optim_arrays.setdefault(slot, []).append((int(index), value))
        optimizer_state: dict[str, object] | None = None
        if meta.get("optimizer_scalars") is not None:
            optimizer_state = {
                "scalars": meta["optimizer_scalars"],
                "arrays": {slot: [v for _, v in sorted(vals)]
                           for slot, vals in optim_arrays.items()},
            }
        return CheckpointState(
            epoch=int(meta["epoch"]),
            module_states=module_states,
            optimizer_state=optimizer_state,
            rng_state=meta.get("rng_state"),
            stopper_state=meta.get("stopper"),
            histories=[TrainingHistory.from_dict(h)
                       for h in meta.get("histories", [])],
            extra=dict(meta.get("extra", {})))

    def restore(self, state: CheckpointState, *,
                modules: dict[str, Module],
                optimizer: Optimizer | None = None,
                rng: np.random.Generator | None = None,
                stopper: EarlyStopping | None = None) -> int:
        """Push a parsed checkpoint back into live objects.

        Returns the epoch index training should continue from.
        """
        for mod_name, module in modules.items():
            saved = state.module_states.get(mod_name)
            if saved is None:
                raise CheckpointCorruptedError(
                    self.arrays_path,
                    f"module {mod_name!r} missing from checkpoint")
            try:
                module.load_state_dict(saved)
            except (KeyError, ValueError) as exc:
                raise CheckpointCorruptedError(
                    self.arrays_path,
                    f"module {mod_name!r} does not match: {exc}") from exc
        if optimizer is not None and state.optimizer_state is not None:
            try:
                optimizer.load_state_dict(state.optimizer_state)
            except ValueError as exc:
                raise CheckpointCorruptedError(
                    self.arrays_path,
                    f"optimizer state does not match: {exc}") from exc
        if rng is not None and state.rng_state is not None:
            _restore_rng_state(rng, state.rng_state, self.meta_path)
        if stopper is not None and state.stopper_state is not None:
            stopper.load_state_dict(state.stopper_state)
        return state.next_epoch


# ----------------------------------------------------------------------
# RNG state (numpy Generator <-> JSON)
# ----------------------------------------------------------------------
def _jsonable_rng_state(rng: np.random.Generator | None
                        ) -> dict[str, object] | None:
    if rng is None:
        return None
    return _to_jsonable(rng.bit_generator.state)


def _to_jsonable(value: object) -> object:
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _from_jsonable(value: object) -> object:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"],
                              dtype=value.get("dtype", "uint64"))
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def _restore_rng_state(rng: np.random.Generator,
                       state: dict[str, object], source: Path) -> None:
    try:
        rng.bit_generator.state = _from_jsonable(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorruptedError(
            source, f"invalid RNG state: {exc}") from exc
