"""Training utilities: early stopping, gradient accumulation, histories.

The paper trains with batch size 1 (inputs have irregular shapes) but
back-propagates the *average* loss of ``B = 64`` consecutive samples to
emulate mini-batch training (§VI-A).  :class:`GradientAccumulator`
implements exactly that protocol on top of any optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import NumericalInstabilityError
from .optim import Optimizer, clip_grad_norm
from .tensor import Tensor

__all__ = ["EarlyStopping", "GradientAccumulator", "TrainingHistory"]


class EarlyStopping:
    """Stop training when a monitored loss stops improving (§VI-A, [18])."""

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.best: float | None = None
        self.best_epoch: int | None = None
        self._bad_epochs = 0
        self._epoch = -1

    def update(self, loss: float) -> bool:
        """Record an epoch loss; return True when training should stop."""
        self._epoch += 1
        if self.best is None or loss < self.best - self.min_delta:
            self.best = loss
            self.best_epoch = self._epoch
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
        return self.should_stop

    @property
    def should_stop(self) -> bool:
        """Whether the stop condition has already been reached."""
        return self._bad_epochs >= self.patience

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-safe snapshot for checkpoint/resume."""
        return {"patience": self.patience, "min_delta": self.min_delta,
                "best": self.best, "best_epoch": self.best_epoch,
                "bad_epochs": self._bad_epochs, "epoch": self._epoch}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        self.patience = int(state["patience"])
        self.min_delta = float(state["min_delta"])
        best = state["best"]
        self.best = None if best is None else float(best)
        best_epoch = state["best_epoch"]
        self.best_epoch = None if best_epoch is None else int(best_epoch)
        self._bad_epochs = int(state["bad_epochs"])
        self._epoch = int(state["epoch"])


class GradientAccumulator:
    """Accumulate per-sample gradients and step every ``accumulate`` samples.

    Each sample's loss is scaled by ``1/accumulate`` before ``backward`` so
    the applied update equals the gradient of the average loss over the
    window, matching the paper's simulated batch training.
    """

    def __init__(self, optimizer: Optimizer, accumulate: int = 64,
                 max_grad_norm: float | None = 5.0,
                 max_nonfinite: int = 8) -> None:
        if accumulate < 1:
            raise ValueError("accumulate must be >= 1")
        if max_nonfinite < 0:
            raise ValueError("max_nonfinite must be >= 0")
        self.optimizer = optimizer
        self.accumulate = accumulate
        self.max_grad_norm = max_grad_norm
        #: How many NaN/Inf sample losses to tolerate (skipping each)
        #: before declaring the run numerically unstable.
        self.max_nonfinite = max_nonfinite
        self.nonfinite_count = 0
        self._pending = 0

    def backward(self, loss: Tensor) -> None:
        """Backpropagate one sample's loss and step when the window fills.

        A NaN/Inf loss is *skipped* (its gradient would poison the whole
        accumulated update) and counted; once more than
        ``max_nonfinite`` samples have been dropped this raises
        :class:`~repro.errors.NumericalInstabilityError` — silent
        divergence is worse than a loud stop.
        """
        if not math.isfinite(float(loss.item())):
            self.nonfinite_count += 1
            if self.nonfinite_count > self.max_nonfinite:
                raise NumericalInstabilityError(
                    f"{self.nonfinite_count} non-finite sample losses "
                    f"exceed the limit of {self.max_nonfinite}; training "
                    "has diverged (lower the learning rate or clip "
                    "harder)")
            return
        (loss * (1.0 / self.accumulate)).backward()
        self._pending += 1
        if self._pending >= self.accumulate:
            self._apply()

    def flush(self) -> None:
        """Apply any leftover gradients (end of an epoch)."""
        if self._pending:
            self._apply()

    def _apply(self) -> None:
        if self.max_grad_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        self.optimizer.zero_grad()
        self._pending = 0


@dataclass
class TrainingHistory:
    """Per-epoch loss record, used to regenerate the paper's Figs. 9-10."""

    name: str
    epoch_losses: list[float] = field(default_factory=list)

    def record(self, loss: float) -> None:
        self.epoch_losses.append(float(loss))

    @property
    def num_epochs(self) -> int:
        return len(self.epoch_losses)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def best_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return min(self.epoch_losses)

    @property
    def best_epoch(self) -> int:
        return int(min(range(len(self.epoch_losses)),
                       key=self.epoch_losses.__getitem__))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "epoch_losses": list(self.epoch_losses)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TrainingHistory":
        return cls(name=str(payload["name"]),
                   epoch_losses=[float(x) for x in payload["epoch_losses"]])
