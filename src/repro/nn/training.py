"""Training utilities: early stopping, gradient accumulation, histories.

The paper trains with batch size 1 (inputs have irregular shapes) but
back-propagates the *average* loss of ``B = 64`` consecutive samples to
emulate mini-batch training (§VI-A).  :class:`GradientAccumulator`
implements exactly that protocol on top of any optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .optim import Optimizer, clip_grad_norm
from .tensor import Tensor

__all__ = ["EarlyStopping", "GradientAccumulator", "TrainingHistory"]


class EarlyStopping:
    """Stop training when a monitored loss stops improving (§VI-A, [18])."""

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.best: float | None = None
        self.best_epoch: int | None = None
        self._bad_epochs = 0
        self._epoch = -1

    def update(self, loss: float) -> bool:
        """Record an epoch loss; return True when training should stop."""
        self._epoch += 1
        if self.best is None or loss < self.best - self.min_delta:
            self.best = loss
            self.best_epoch = self._epoch
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
        return self._bad_epochs >= self.patience


class GradientAccumulator:
    """Accumulate per-sample gradients and step every ``accumulate`` samples.

    Each sample's loss is scaled by ``1/accumulate`` before ``backward`` so
    the applied update equals the gradient of the average loss over the
    window, matching the paper's simulated batch training.
    """

    def __init__(self, optimizer: Optimizer, accumulate: int = 64,
                 max_grad_norm: float | None = 5.0) -> None:
        if accumulate < 1:
            raise ValueError("accumulate must be >= 1")
        self.optimizer = optimizer
        self.accumulate = accumulate
        self.max_grad_norm = max_grad_norm
        self._pending = 0

    def backward(self, loss: Tensor) -> None:
        """Backpropagate one sample's loss and step when the window fills."""
        (loss * (1.0 / self.accumulate)).backward()
        self._pending += 1
        if self._pending >= self.accumulate:
            self._apply()

    def flush(self) -> None:
        """Apply any leftover gradients (end of an epoch)."""
        if self._pending:
            self._apply()

    def _apply(self) -> None:
        if self.max_grad_norm is not None:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        self.optimizer.zero_grad()
        self._pending = 0


@dataclass
class TrainingHistory:
    """Per-epoch loss record, used to regenerate the paper's Figs. 9-10."""

    name: str
    epoch_losses: list[float] = field(default_factory=list)

    def record(self, loss: float) -> None:
        self.epoch_losses.append(float(loss))

    @property
    def num_epochs(self) -> int:
        return len(self.epoch_losses)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def best_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return min(self.epoch_losses)

    @property
    def best_epoch(self) -> int:
        return int(min(range(len(self.epoch_losses)),
                       key=self.epoch_losses.__getitem__))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "epoch_losses": list(self.epoch_losses)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TrainingHistory":
        return cls(name=str(payload["name"]),
                   epoch_losses=[float(x) for x in payload["epoch_losses"]])
