"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the neural substrate used by the LEAD
reproduction.  The paper trains LSTM/attention models with PyTorch on a GPU;
this environment has no deep-learning framework installed, so we implement a
small, well-tested autograd engine ourselves.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar tensor propagates
gradients to every tensor in the graph with ``requires_grad=True``.

Only the operations needed by the models in this repository are implemented,
but each supports full numpy broadcasting where it makes sense, and each has
a gradient that is verified against finite differences in the test suite.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concat", "stack", "no_grad", "is_grad_enabled"]

#: Per-thread autograd mode.  Detection workers may run in parallel
#: threads; a module-level boolean would let one worker's ``no_grad``
#: block silently disable graph construction in a concurrently training
#: thread, so the flag lives in ``threading.local`` storage instead.
#: Each thread starts with gradients enabled.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager that disables graph construction.

    Inference-only code paths (e.g. online detection) run noticeably faster
    when the engine does not record backward closures.  The switch is
    thread-local: entering ``no_grad`` on one thread never changes the
    grad mode observed by other threads.
    """

    def __enter__(self) -> "no_grad":
        self._previous = getattr(_GRAD_STATE, "enabled", True)
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GRAD_STATE.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop.

    The answer is per-thread (see :data:`_GRAD_STATE`).
    """
    return getattr(_GRAD_STATE, "enabled", True)


#: Per-thread inference-precision policy, set by
#: :func:`repro.nn.precision.inference_dtype`.  It lives here, next to
#: the autograd flag, because :class:`Tensor` construction must consult
#: both to decide whether a float32 array may pass through uncoerced.
_PRECISION_STATE = threading.local()


def active_dtype_name() -> str:
    """Name of this thread's inference dtype (``"float64"`` default)."""
    return getattr(_PRECISION_STATE, "dtype_name", "float64")


def _coerce_master_dtype(arr: np.ndarray) -> np.ndarray:
    """Coerce to the float64 master dtype unless on the float32
    inference path.

    float32 arrays pass through only while gradients are disabled *and*
    a float32 inference context is active — the one situation in which
    the reduced-precision kernels produce them.  Everything else (lists,
    ints, float16, and notably float32 features handed to ``fit()``) is
    coerced to float64, preserving the "training always runs float64"
    invariant that the gradient checks depend on.
    """
    if arr.dtype == np.float64:
        return arr
    if (arr.dtype == np.float32
            and not getattr(_GRAD_STATE, "enabled", True)
            and getattr(_PRECISION_STATE, "dtype_name",
                        "float64") == "float32"):
        return arr
    return np.asarray(arr, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the corresponding gradient must be summed back.
    """
    if grad.shape == shape:
        return grad
    # Sum away the extra leading axes introduced by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: "Tensor | np.ndarray | float | int") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return _coerce_master_dtype(np.asarray(value))


def _is_basic_index(key: object) -> bool:
    """True when ``key`` is pure basic (non-fancy) numpy indexing.

    Basic indexing — ints, slices, ``None``/``Ellipsis`` and tuples
    thereof — selects each source element at most once, so the gradient
    scatter can be a direct assignment into a zero buffer instead of the
    far slower duplicate-safe ``np.add.at``.
    """
    if isinstance(key, tuple):
        return all(k is None or k is Ellipsis
                   or isinstance(k, (int, np.integer, slice)) for k in key)
    return (key is None or key is Ellipsis
            or isinstance(key, (int, np.integer, slice)))


class Tensor:
    """A numpy array with reverse-mode autograd support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: np.ndarray | Sequence[float] | float,
        requires_grad: bool = False,
    ) -> None:
        # float64 is the master dtype; float32 arrays pass through
        # untouched only on the no-grad float32 inference path (see
        # _coerce_master_dtype), so reduced-precision flows stay float32
        # end-to-end while training stays float64 even for callers that
        # feed float32 inputs.
        self.data = _coerce_master_dtype(np.asarray(data))
        self.requires_grad = (bool(requires_grad)
                              and getattr(_GRAD_STATE, "enabled", True))
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        out = cls(data)
        if (getattr(_GRAD_STATE, "enabled", True)
                and any(p.requires_grad for p in parents)):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` into ``self.grad``.

        ``own=True`` asserts that the caller created ``grad`` exclusively
        for this tensor and holds no other reference to it, letting the
        first accumulation adopt the buffer instead of copying it —
        backward closures that compute a fresh temporary (``grad * x``,
        a GEMM result, a scatter buffer) pass ``own=True``; closures
        that forward the upstream gradient or a view of it must not.
        """
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            # _unbroadcast sums at least one axis here, so its result is
            # always a freshly allocated array we may adopt.
            grad = _unbroadcast(grad, self.data.shape)
            own = True
        if self.grad is None:
            if own and grad.flags.writeable:
                self.grad = grad
            else:
                self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar output")
            grad = np.ones_like(self.data)
        # Topological order via iterative post-order DFS.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: "Tensor | float") -> "Tensor":
        """Wrap a non-Tensor operand, matching our dtype for scalars.

        NEP 50 treats 0-d float64 *arrays* as strong: wrapping a python
        scalar into ``Tensor(other)`` (a float64 0-d array) would
        silently promote a float32 operand back to float64.  Scalars are
        therefore wrapped in the operand's own dtype — byte-identical
        for float64, dtype-preserving for float32 inference flows.
        """
        if isinstance(other, Tensor):
            return other
        if isinstance(other, (int, float, np.integer, np.floating)):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    def __add__(self, other: "Tensor | float") -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad, own=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad, own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: float) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data, own=True)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data, own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data, own=True)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data**2),
                                    own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: float) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1),
                                 own=True)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = self._coerce(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data)
                                     if self.data.ndim == 2
                                     else grad * other_t.data, own=True)
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other_t.data, -1, -2),
                                     self.data.shape), own=True)
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(np.outer(self.data, grad), own=True)
                else:
                    other_t._accumulate(
                        _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad,
                                     other_t.data.shape), own=True)

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2), own=True)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data),
                                 own=True)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0), own=True)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data, own=True)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data, own=True)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.swapaxes(-1, -2)

    def __getitem__(self, key: object) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    # Basic indexing hits each element at most once, so a
                    # plain assignment scatters the gradient correctly —
                    # orders of magnitude faster than np.add.at.
                    full[key] = grad
                else:
                    np.add.at(full, key, grad)
                self._accumulate(full, own=True)

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - inner), own=True)

        return Tensor._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis, differentiable."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    return Tensor._make(out_data, tensors, backward)
