"""Module and parameter abstractions for the numpy neural substrate."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even when constructed inside a
        # ``no_grad`` block (e.g. when loading a model for fine-tuning).
        self.requires_grad = True
        # Mutation counter for the precision weight-view cache:
        # optimizers update ``data`` *in place*, so cached reduced-
        # precision casts cannot be invalidated by array identity alone.
        # Every in-place update must bump this.
        self.version = 0


class Module:
    """Base class for neural network components.

    Submodules and parameters assigned as attributes are discovered
    automatically, mirroring the ergonomics of mainstream frameworks:

    >>> class Tiny(Module):
    ...     def __init__(self):
    ...         super().__init__()
    ...         self.linear = Linear(4, 2)
    """

    def __init__(self) -> None:
        self._training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all learnable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar learnable values."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self._apply_mode(True)
        return self

    def eval(self) -> "Module":
        self._apply_mode(False)
        return self

    @property
    def training(self) -> bool:
        return self._training

    def _apply_mode(self, training: bool) -> None:
        self._training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._apply_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._apply_mode(training)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values; names and shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {parameter.data.shape}")
            parameter.data = value.copy()
            parameter.version = getattr(parameter, "version", 0) + 1

    # ------------------------------------------------------------------
    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError
