"""Self-attention aggregation used by the compression operators.

The paper (Eqs. 3-4) aggregates the hidden states of an LSTM into a single
vector: the query is the last hidden state, the keys are projections of all
hidden states, and the values are the raw hidden states themselves.
"""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["SelfAttentionAggregator", "masked_softmax"]

_NEG_INF = -1e9


def masked_softmax(scores: Tensor, mask: np.ndarray | None, axis: int = -1
                   ) -> Tensor:
    """Softmax that assigns zero probability to masked-out positions.

    ``mask`` contains 1.0 at valid positions; invalid positions receive a
    large negative additive bias before the softmax.
    """
    if mask is not None:
        bias = (1.0 - mask) * _NEG_INF
        if isinstance(bias, np.ndarray) and bias.dtype != scores.data.dtype:
            bias = bias.astype(scores.data.dtype)
        scores = scores + bias
    return scores.softmax(axis=axis)


class SelfAttentionAggregator(Module):
    """Aggregate an LSTM output sequence into one vector (paper Eqs. 3-4).

    Given hidden states ``H`` of shape ``(B, T, H)`` and the last hidden
    state ``h_last`` of shape ``(B, H)``:

    * ``q = h_last @ Wq + bq``
    * ``K = H @ Wk + bk``
    * ``s = softmax(q . K / sqrt(d_k))`` over valid timesteps
    * result ``= sum_t s_t * H_t``
    """

    def __init__(self, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.hidden_size = hidden_size
        self.query = Linear(hidden_size, hidden_size, rng)
        self.key = Linear(hidden_size, hidden_size, rng)
        self._scale = 1.0 / np.sqrt(hidden_size)

    def forward(self, outputs: Tensor, last_hidden: Tensor,
                lengths: np.ndarray | None = None) -> Tensor:
        batch, steps, hidden = outputs.shape
        if hidden != self.hidden_size:
            raise ValueError(
                f"expected hidden size {self.hidden_size}, got {hidden}")
        from .fused import attention_pool, fused_enabled
        if fused_enabled():
            # One tape node for the whole aggregation; bit-identical
            # values (see :func:`repro.nn.fused.attention_pool`) and
            # dtype-aware on the inference branch.
            return attention_pool(
                outputs, last_hidden,
                self.query.weight, self.query.bias,
                self.key.weight, self.key.bias,
                lengths, neg_inf=_NEG_INF)
        q = self.query(last_hidden)                      # (B, H)
        k = self.key(outputs)                            # (B, T, H)
        scores = (k * q.reshape(batch, 1, hidden)).sum(axis=2) * self._scale
        mask = None
        if lengths is not None:
            from .rnn import sequence_mask
            mask = sequence_mask(lengths, steps)
        weights = masked_softmax(scores, mask, axis=1)   # (B, T)
        return (outputs * weights.reshape(batch, steps, 1)).sum(axis=1)
