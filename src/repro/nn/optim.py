"""Gradient-based optimizers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the norm before clipping.  Recurrent nets trained on long
    sequences occasionally produce exploding gradients; clipping keeps
    training stable without changing the descent direction.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm > 0.0:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base class holding a parameter list and the learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Snapshot of the optimizer's mutable state (for checkpoints).

        ``arrays`` maps slot names to per-parameter moment arrays and
        ``scalars`` holds plain numbers; both round-trip through
        :meth:`load_state_dict` on an optimizer built over the *same*
        parameter list (same order, same shapes).
        """
        return {"scalars": {"lr": self.lr}, "arrays": {}}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        scalars = state.get("scalars", {})
        self.lr = float(scalars.get("lr", self.lr))
        self._load_arrays(state.get("arrays", {}))

    def _load_arrays(self, arrays: dict[str, list[np.ndarray]]) -> None:
        for name, values in arrays.items():
            slot = getattr(self, name, None)
            if slot is None or len(slot) != len(values):
                raise ValueError(
                    f"optimizer state slot {name!r} does not match: "
                    f"expected {len(slot) if slot is not None else 0} "
                    f"arrays, got {len(values)}")
            for current, value in zip(slot, values):
                if current.shape != np.asarray(value).shape:
                    raise ValueError(
                        f"optimizer state shape mismatch in {name!r}")
                current[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self) -> dict[str, object]:
        return {"scalars": {"lr": self.lr, "momentum": self.momentum},
                "arrays": {"_velocity": [v.copy() for v in self._velocity]}}

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        scalars = state.get("scalars", {})
        self.momentum = float(scalars.get("momentum", self.momentum))


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimizer used in the paper (§VI-A)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                # Decoupled weight decay (AdamW): regularizes without
                # polluting the adaptive moments.
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, object]:
        return {
            "scalars": {"lr": self.lr, "beta1": self.beta1,
                        "beta2": self.beta2, "eps": self.eps,
                        "weight_decay": self.weight_decay,
                        "step_count": self._step_count},
            "arrays": {"_m": [m.copy() for m in self._m],
                       "_v": [v.copy() for v in self._v]},
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        scalars = state.get("scalars", {})
        self.beta1 = float(scalars.get("beta1", self.beta1))
        self.beta2 = float(scalars.get("beta2", self.beta2))
        self.eps = float(scalars.get("eps", self.eps))
        self.weight_decay = float(scalars.get("weight_decay",
                                              self.weight_decay))
        self._step_count = int(scalars.get("step_count", self._step_count))
