"""Gradient-based optimizers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the norm before clipping.  Recurrent nets trained on long
    sequences occasionally produce exploding gradients; clipping keeps
    training stable without changing the descent direction.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    # np.dot on the raveled gradient is a single BLAS pass; (g**2).sum()
    # would allocate a temporary and scan twice.
    total = float(np.sqrt(sum(
        float(np.dot(g.ravel(), g.ravel())) for g in grads)))
    if total > max_norm > 0.0:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base class holding a parameter list and the learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """Snapshot of the optimizer's mutable state (for checkpoints).

        ``arrays`` maps slot names to per-parameter moment arrays and
        ``scalars`` holds plain numbers; both round-trip through
        :meth:`load_state_dict` on an optimizer built over the *same*
        parameter list (same order, same shapes).
        """
        return {"scalars": {"lr": self.lr}, "arrays": {}}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        scalars = state.get("scalars", {})
        self.lr = float(scalars.get("lr", self.lr))
        self._load_arrays(state.get("arrays", {}))

    def _load_arrays(self, arrays: dict[str, list[np.ndarray]]) -> None:
        for name, values in arrays.items():
            slot = getattr(self, name, None)
            if slot is None or len(slot) != len(values):
                raise ValueError(
                    f"optimizer state slot {name!r} does not match: "
                    f"expected {len(slot) if slot is not None else 0} "
                    f"arrays, got {len(values)}")
            for current, value in zip(slot, values):
                if current.shape != np.asarray(value).shape:
                    raise ValueError(
                        f"optimizer state shape mismatch in {name!r}")
                current[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad
            # In-place update: invalidate cached precision weight views.
            p.version = getattr(p, "version", 0) + 1

    def state_dict(self) -> dict[str, object]:
        return {"scalars": {"lr": self.lr, "momentum": self.momentum},
                "arrays": {"_velocity": [v.copy() for v in self._velocity]}}

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        scalars = state.get("scalars", {})
        self.momentum = float(scalars.get("momentum", self.momentum))


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimizer used in the paper (§VI-A)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Reusable per-parameter scratch (not part of the optimizer
        # state: it never survives a step).
        self._buf = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Allocation-free Adam update.

        The moment updates write through one reusable scratch buffer per
        parameter (``x**2`` for float64 is computed as ``x*x``, so the
        moments stay bit-identical to the textbook form), and the bias
        correction is folded into the step size::

            lr·(m/bias1)/(sqrt(v/bias2) + eps)
              == (lr·sqrt(bias2)/bias1) · m / (sqrt(v) + eps·sqrt(bias2))

        which removes the ``m_hat``/``v_hat`` temporaries entirely.
        """
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        sqrt_bias2 = np.sqrt(bias2)
        step_size = self.lr * sqrt_bias2 / bias1
        eps_hat = self.eps * sqrt_bias2
        one_minus_b1 = 1.0 - self.beta1
        one_minus_b2 = 1.0 - self.beta2
        for p, m, v, buf in zip(self.parameters, self._m, self._v,
                                self._buf):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            np.multiply(grad, one_minus_b1, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= one_minus_b2
            v += buf
            if self.weight_decay:
                # Decoupled weight decay (AdamW): regularizes without
                # polluting the adaptive moments.
                np.multiply(p.data, self.lr * self.weight_decay, out=buf)
                p.data -= buf
            np.sqrt(v, out=buf)
            buf += eps_hat
            np.divide(m, buf, out=buf)
            buf *= step_size
            p.data -= buf
            # In-place update: invalidate cached precision weight views.
            p.version = getattr(p, "version", 0) + 1

    def state_dict(self) -> dict[str, object]:
        return {
            "scalars": {"lr": self.lr, "beta1": self.beta1,
                        "beta2": self.beta2, "eps": self.eps,
                        "weight_decay": self.weight_decay,
                        "step_count": self._step_count},
            "arrays": {"_m": [m.copy() for m in self._m],
                       "_v": [v.copy() for v in self._v]},
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        super().load_state_dict(state)
        scalars = state.get("scalars", {})
        self.beta1 = float(scalars.get("beta1", self.beta1))
        self.beta2 = float(scalars.get("beta2", self.beta2))
        self.eps = float(scalars.get("eps", self.eps))
        self.weight_decay = float(scalars.get("weight_decay",
                                              self.weight_decay))
        self._step_count = int(scalars.get("step_count", self._step_count))
