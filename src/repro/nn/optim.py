"""Gradient-based optimizers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the norm before clipping.  Recurrent nets trained on long
    sequences occasionally produce exploding gradients; clipping keeps
    training stable without changing the descent direction.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm > 0.0:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base class holding a parameter list and the learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimizer used in the paper (§VI-A)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                # Decoupled weight decay (AdamW): regularizes without
                # polluting the adaptive moments.
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
