"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "orthogonal", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Keeps activation variance roughly constant across layers, which matters
    for the tanh-heavy LSTM stacks used throughout LEAD.
    """
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization, the standard choice for recurrent weights."""
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
