"""Neural substrate: numpy autograd, layers, RNNs, losses, optimizers.

The paper trains its models with a mainstream deep-learning framework; this
package is a from-scratch replacement providing exactly the pieces LEAD
needs (see DESIGN.md S1-S4).
"""

from .attention import SelfAttentionAggregator, masked_softmax
from .checkpoint import CheckpointManager, CheckpointState
from .fused import (fused_enabled, gru_sequence, lstm_decode, lstm_sequence,
                    use_fused)
from .init import orthogonal, xavier_uniform
from .layers import Linear, Sequential
from .losses import bce_loss, kld_loss, mse_loss
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .precision import (VALID_DTYPES, active_dtype, active_dtype_name,
                        clear_weight_views, inference_dtype, inference_param,
                        weight_view, weight_view_stats)
from .rnn import (BiLSTMLayer, GRU, GRUCell, LSTM, LSTMCell, LSTMDecoder,
                  StackedBiLSTM, sequence_mask)
from .serialization import load_module, module_path, save_module
from .tensor import Tensor, concat, is_grad_enabled, no_grad, stack
from .training import EarlyStopping, GradientAccumulator, TrainingHistory

__all__ = [
    "Tensor", "concat", "stack", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "Linear", "Sequential",
    "LSTMCell", "GRUCell", "LSTM", "GRU", "BiLSTMLayer", "StackedBiLSTM",
    "LSTMDecoder", "sequence_mask",
    "lstm_sequence", "gru_sequence", "lstm_decode",
    "use_fused", "fused_enabled",
    "inference_dtype", "active_dtype", "active_dtype_name", "VALID_DTYPES",
    "weight_view", "inference_param", "weight_view_stats",
    "clear_weight_views",
    "SelfAttentionAggregator", "masked_softmax",
    "mse_loss", "kld_loss", "bce_loss",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "EarlyStopping", "GradientAccumulator", "TrainingHistory",
    "CheckpointManager", "CheckpointState",
    "save_module", "load_module", "module_path",
    "xavier_uniform", "orthogonal",
]
