"""Padding utilities for variable-length sequence batches."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["pad_sequences"]


def pad_sequences(sequences: Sequence[np.ndarray]
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad 2-D arrays to a common length.

    Given ``k`` arrays of shape ``(L_i, F)``, returns a ``(k, max L, F)``
    batch (zero padded) and the ``(k,)`` integer length vector.

    The batch dtype is float32 only when *every* sequence is float32
    (dtype-cast inference features); any other mix keeps the historical
    float64 coercion.
    """
    sequences = [np.asarray(s) for s in sequences]
    if not sequences:
        raise ValueError("pad_sequences needs at least one sequence")
    if all(s.dtype == np.float32 for s in sequences):
        dtype = np.dtype(np.float32)
    else:
        dtype = np.dtype(np.float64)
        sequences = [np.asarray(s, dtype=dtype) for s in sequences]
    feature_dim = sequences[0].shape[1]
    if any(s.ndim != 2 or s.shape[1] != feature_dim for s in sequences):
        raise ValueError("all sequences must be (L_i, F) with equal F")
    lengths = np.array([len(s) for s in sequences], dtype=np.int64)
    if (lengths == 0).any():
        raise ValueError("empty sequences cannot be padded")
    batch = np.zeros((len(sequences), int(lengths.max()), feature_dim),
                     dtype=dtype)
    for i, s in enumerate(sequences):
        batch[i, :len(s)] = s
    return batch, lengths
