"""Fused recurrent kernels: whole-sequence custom autograd ops.

The per-step recurrent drivers in :mod:`repro.nn.rnn` are correct but
tape-heavy: every LSTM timestep records ~20 closure-graph ``Tensor``
nodes (gate slices, sigmoids, four elementwise products, the freeze-mask
blend), gate slicing backpropagates through gradient scatters, and
``stack()`` re-copies all ``T`` hidden states at the end.  On CPU that
bookkeeping — not the GEMMs — dominates training wall-clock.

This module collapses the tape: :func:`lstm_sequence`,
:func:`gru_sequence` and :func:`lstm_decode` run the entire ``(B, T, ·)``
time loop in raw numpy with preallocated gate/state buffers, caching the
activations (``i, f, g, o, c, tanh(c)`` for the LSTM; ``r, z, n`` and
the recurrent candidate projection for the GRU) that the hand-derived
full-BPTT backward needs.  Each call contributes **one** node to the
autograd tape instead of ``O(T · 20)``.  The per-step inner loops write
through ``out=`` into reused scratch buffers, the four gate sigmoids are
one fused ``(B, 4H)`` pass, and the backward hoists all activation
derivatives (``σ'``, ``tanh'``) out of the time loop into two
whole-tape vectorized products.

Numerical contract
------------------
The fused forward replays the floating-point operation order of the
per-step cells in :mod:`repro.nn.rnn` (same hoisted input GEMM, same
``(x·W + h·W) + b`` association — float addition is commutative, so
accumulating into the recurrent GEMM buffer is exact — same clipped
sigmoid, same freeze-mask blend), so fused outputs are bit-identical to
the unfused path and the batched==serial equivalence guarantees of the
inference layer survive untouched.  The backward is algebraically the
same BPTT the tape would perform; only the order in which per-step
contributions are *summed* into the weight gradients differs (one big
GEMM instead of ``T`` small ones), which perturbs gradients at the
level of float64 associativity (~1e-15 relative), far inside the
``rtol=1e-9`` budget enforced by ``tests/test_fused.py``.

Freeze-mask semantics for padding are preserved end to end: a padded
step carries both state and gradient through unchanged, so all-padded
rows produce zero states and zero gradients.

The fused path is on by default; :class:`use_fused` toggles it
per-thread (the flag lives in ``threading.local`` for the same reason
the grad mode does — parallel detect workers must not corrupt each
other's mode).
"""

from __future__ import annotations

import threading

import numpy as np

from .precision import active_dtype, weight_view
from .tensor import Tensor, is_grad_enabled

try:  # pragma: no cover - numpy-internal fast path
    from numpy._core.umath import clip as _clip_ufunc
except ImportError:  # pragma: no cover
    def _clip_ufunc(a, lo, hi, out):
        return a.clip(lo, hi, out=out)

__all__ = ["lstm_sequence", "gru_sequence", "lstm_decode",
           "affine", "attention_pool", "mlp_head",
           "use_fused", "fused_enabled"]

#: Per-thread toggle for the fused sequence kernels (default: enabled).
_FUSED_STATE = threading.local()


def fused_enabled() -> bool:
    """Whether recurrent drivers route through the fused kernels."""
    return getattr(_FUSED_STATE, "enabled", True)


class use_fused:
    """Context manager that enables/disables the fused kernels.

    ``with use_fused(False): ...`` forces the per-step cell path — used
    by the equivalence tests and the training benchmark's unfused
    reference measurement.  Thread-local, re-entrant.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)

    def __enter__(self) -> "use_fused":
        self._previous = fused_enabled()
        _FUSED_STATE.enabled = self._enabled
        return self

    def __exit__(self, *exc_info: object) -> None:
        _FUSED_STATE.enabled = self._previous


def _sigmoid_into(pre: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = 1 / (1 + exp(-clip(pre, ±60)))``, no temporaries.

    Bit-identical to :meth:`Tensor.sigmoid` (the clip ufunc is invoked
    directly to skip two layers of python dispatch — same ufunc, same
    bits — and the remaining steps are the same operations in the same
    order).
    """
    _clip_ufunc(pre, -60.0, 60.0, out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.divide(1.0, out, out=out)
    return out


def _masks(lengths: np.ndarray | None, steps: int,
           dtype: np.dtype = np.float64
           ) -> tuple[np.ndarray | None, np.ndarray | None,
                      np.ndarray | None]:
    """``(keep, drop, full)`` for a padded batch.

    ``keep``/``drop`` are ``(B, T, 1)`` blend masks; ``full`` is a
    ``(T,)`` bool vector marking timesteps where *every* row is valid —
    the kernels skip all mask work on those steps (the blend is the
    identity there, and multiplying by exactly 1.0 / adding exactly 0.0
    cannot change any value).  When every step is full the masks are
    dropped entirely.
    """
    if lengths is None:
        return None, None, None
    from .rnn import sequence_mask
    keep2d = sequence_mask(np.asarray(lengths), steps)
    full = keep2d.all(axis=0)
    if full.all():
        return None, None, None
    if keep2d.dtype != dtype:
        keep2d = keep2d.astype(dtype)
    keep = keep2d[:, :, None]
    return keep, 1.0 - keep, full


def _needs_grad(*tensors: Tensor) -> bool:
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


def _compute_dtype(record: bool) -> np.dtype:
    """The dtype a kernel invocation computes in.

    Recording (training) invocations are pinned to float64 — the hand-
    derived backwards and the gradient tests depend on it — while
    inference invocations follow the active precision policy.  With the
    default float64 policy this is byte-identical to the pre-precision
    kernels on both branches.
    """
    return np.dtype(np.float64) if record else active_dtype()


# ----------------------------------------------------------------------
# LSTM over a padded batch
# ----------------------------------------------------------------------
def lstm_sequence(x: Tensor, w_ih: Tensor, w_hh: Tensor, bias: Tensor,
                  lengths: np.ndarray | None = None,
                  reverse: bool = False
                  ) -> tuple[Tensor, Tensor, Tensor]:
    """Run a full LSTM over ``(B, T, F)`` as one fused autograd op.

    Gate layout matches :class:`~repro.nn.rnn.LSTMCell`:
    ``[input, forget, cell, output]`` along the last axis of ``w_ih``
    (``(F, 4H)``), ``w_hh`` (``(H, 4H)``) and ``bias`` (``(4H,)``).

    Returns ``(outputs, h_last, c_last)`` where ``outputs`` is
    ``(B, T, H)`` and ``h_last``/``c_last`` are the freeze-masked final
    states (the state at each row's last valid step; first valid step
    when ``reverse=True``).  All three are differentiable views of a
    single fused graph node.
    """
    record = _needs_grad(x, w_ih, w_hh, bias)
    cdt = _compute_dtype(record)
    xd = np.asarray(x.data, dtype=cdt)
    wi = weight_view(w_ih, cdt)
    wh = weight_view(w_hh, cdt)
    b = weight_view(bias, cdt)
    batch, steps, features = xd.shape
    n = wh.shape[0]
    keep_m, drop_m, full_t = _masks(lengths, steps, cdt)
    # Hoisted input GEMM — identical to LSTMCell.input_projection (a GEMM
    # computes each output row independently, so transposing to
    # time-major first permutes rows without changing a single bit).
    xT = np.ascontiguousarray(xd.transpose(1, 0, 2))   # (T, B, F)
    x_proj = (xT.reshape(steps * batch, features) @ wi).reshape(
        steps, batch, 4 * n)
    ts = list(range(steps - 1, -1, -1) if reverse else range(steps))

    # Time-major state buffers keep every per-step ufunc contiguous; the
    # batch-major node buffer is materialized once at the end.  Every
    # step writes its slab, so only c_0 needs zeroing.
    hs = np.empty((steps, batch, n), dtype=cdt)            # hs[t] = h_t
    c_states = np.empty((steps + 1, batch, n), dtype=cdt)  # c pre-step
    c_states[0] = 0.0
    gate_buf = np.empty((batch, 4 * n), dtype=cdt)
    scratch = np.empty((batch, n), dtype=cdt)
    if record:
        acts = np.empty((steps, batch, 4 * n))    # i, f, g, o
        tanh_c = np.empty((steps, batch, n))      # tanh of pre-mask c̃
    else:
        act_slab = np.empty((batch, 4 * n), dtype=cdt)
        tc_slab = np.empty((batch, n), dtype=cdt)
    zero_h = np.zeros((batch, n), dtype=cdt)
    h_prev = zero_h
    for k, t in enumerate(ts):
        c_prev = c_states[k]
        c_new = c_states[k + 1]
        h = hs[t]
        sig = acts[k] if record else act_slab
        tc = tanh_c[k] if record else tc_slab
        np.matmul(h_prev, wh, out=gate_buf)
        gate_buf += x_proj[t]                     # x·W + h·W (commutative)
        gate_buf += b
        _sigmoid_into(gate_buf, sig)              # one pass over all 4H
        g = np.tanh(gate_buf[:, 2 * n:3 * n], out=sig[:, 2 * n:3 * n])
        i = sig[:, 0 * n:1 * n]
        f = sig[:, 1 * n:2 * n]
        o = sig[:, 3 * n:4 * n]
        np.multiply(f, c_prev, out=c_new)
        np.multiply(i, g, out=scratch)
        c_new += scratch                          # c̃ = f·c + i·g
        np.tanh(c_new, out=tc)
        np.multiply(o, tc, out=h)                 # h̃ = o·tanh(c̃)
        if keep_m is not None and not full_t[t]:
            keep = keep_m[:, t]
            drop = drop_m[:, t]
            h *= keep
            np.multiply(h_prev, drop, out=scratch)
            h += scratch                          # h = h̃·m + h_prev·(1-m)
            c_new *= keep
            np.multiply(c_prev, drop, out=scratch)
            c_new += scratch
        h_prev = h

    # packed[:, t] = h_t for t < T, packed[:, T] = final cell state: one
    # buffer means one tape node feeding outputs, h_last and c_last.
    packed = np.empty((batch, steps + 1, n), dtype=cdt)
    packed[:, :steps, :] = hs.transpose(1, 0, 2)
    packed[:, steps, :] = c_states[steps]

    def backward(grad: np.ndarray) -> None:
        # Activation derivatives for the whole tape in two fused
        # passes (in-place: σ'=a·(1-a) and tanh'=1-a² share one buffer).
        deriv = 1.0 - acts                        # σ' on i, f, o
        deriv *= acts
        gb = acts[:, :, 2 * n:3 * n]
        gblk = deriv[:, :, 2 * n:3 * n]
        np.multiply(gb, gb, out=gblk)             # tanh' on the g block
        np.subtract(1.0, gblk, out=gblk)
        dtanh_c = tanh_c * tanh_c
        np.subtract(1.0, dtanh_c, out=dtanh_c)
        wh_t = wh.T.copy()
        gT = np.ascontiguousarray(
            grad[:, :steps, :].transpose(1, 0, 2))           # (T, B, H)
        dh = np.zeros((batch, n))
        dc = np.array(grad[:, steps, :], dtype=np.float64)   # c_last grad
        d_xproj = np.empty((steps, batch, 4 * n))            # time-major
        s1 = np.empty((batch, n))
        dh_skip = np.empty((batch, n))
        dc_skip = np.empty((batch, n))
        for k in range(steps - 1, -1, -1):
            t = ts[k]
            dh += gT[t]
            partial = keep_m is not None and not full_t[t]
            if partial:
                keep = keep_m[:, t]
                drop = drop_m[:, t]
                np.multiply(dh, drop, out=dh_skip)
                dh *= keep
                np.multiply(dc, drop, out=dc_skip)
                dc *= keep
            i = acts[k, :, 0 * n:1 * n]
            f = acts[k, :, 1 * n:2 * n]
            g = acts[k, :, 2 * n:3 * n]
            tc = tanh_c[k]
            da = d_xproj[t]
            # dc̃ = dc·m + dh̃·o·(1 - tanh²c̃)
            np.multiply(dh, acts[k, :, 3 * n:4 * n], out=s1)
            s1 *= dtanh_c[k]
            dc += s1
            np.multiply(dh, tc, out=da[:, 3 * n:4 * n])      # do
            np.multiply(dc, g, out=da[:, 0 * n:1 * n])       # di
            np.multiply(dc, c_states[k], out=da[:, 1 * n:2 * n])  # df
            np.multiply(dc, i, out=da[:, 2 * n:3 * n])       # dg
            da *= deriv[k]                                   # preact grads
            dc *= f
            if partial:
                dc += dc_skip
            np.matmul(da, wh_t, out=dh)
            if partial:
                dh += dh_skip
        flat = d_xproj.reshape(steps * batch, 4 * n)
        if x.requires_grad:
            dx = (flat @ wi.T).reshape(steps, batch, features)
            x._accumulate(np.ascontiguousarray(dx.transpose(1, 0, 2)),
                          own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(xT.reshape(steps * batch, features).T @ flat,
                             own=True)
        if w_hh.requires_grad:
            # dW_hh = Σ_k h_{k-1}ᵀ·da_k as ONE GEMM: line the previous
            # hidden states up with d_xproj's time axis (step k reads
            # hs[ts[k-1]]; the first step sees zeros).
            hp = np.empty((steps, batch, n))
            if reverse:
                hp[steps - 1] = 0.0
                if steps > 1:
                    hp[:steps - 1] = hs[1:]
            else:
                hp[0] = 0.0
                if steps > 1:
                    hp[1:] = hs[:steps - 1]
            w_hh._accumulate(hp.reshape(steps * batch, n).T @ flat,
                             own=True)
        if bias.requires_grad:
            bias._accumulate(d_xproj.sum(axis=(0, 1)), own=True)

    node = Tensor._make(packed, (x, w_ih, w_hh, bias), backward)
    outputs = node[:, :steps, :]
    h_last = node[:, ts[-1], :]
    c_last = node[:, steps, :]
    return outputs, h_last, c_last


# ----------------------------------------------------------------------
# GRU over a padded batch
# ----------------------------------------------------------------------
def gru_sequence(x: Tensor, w_ih: Tensor, w_hh: Tensor, b_ih: Tensor,
                 b_hh: Tensor, lengths: np.ndarray | None = None,
                 reverse: bool = False) -> tuple[Tensor, Tensor]:
    """Run a full GRU over ``(B, T, F)`` as one fused autograd op.

    Gate layout matches :class:`~repro.nn.rnn.GRUCell`:
    ``[reset, update, new]``.  Returns ``(outputs, h_last)``.
    """
    record = _needs_grad(x, w_ih, w_hh, b_ih, b_hh)
    cdt = _compute_dtype(record)
    xd = np.asarray(x.data, dtype=cdt)
    wi = weight_view(w_ih, cdt)
    wh = weight_view(w_hh, cdt)
    bi = weight_view(b_ih, cdt)
    bh = weight_view(b_hh, cdt)
    batch, steps, features = xd.shape
    n = wh.shape[0]
    keep_m, drop_m, full_t = _masks(lengths, steps, cdt)
    # Hoisted input GEMM + bias — identical to GRUCell.input_projection
    # (time-major row permutation; a GEMM computes rows independently).
    xT = np.ascontiguousarray(xd.transpose(1, 0, 2))   # (T, B, F)
    gi_all = (xT.reshape(steps * batch, features) @ wi + bi).reshape(
        steps, batch, 3 * n)
    ts = list(range(steps - 1, -1, -1) if reverse else range(steps))

    hs = np.empty((steps, batch, n), dtype=cdt)   # hs[t] = h_t, time-major
    gh_buf = np.empty((batch, 3 * n), dtype=cdt)
    rz_pre = np.empty((batch, 2 * n), dtype=cdt)
    scratch = np.empty((batch, n), dtype=cdt)
    if record:
        acts = np.empty((steps, batch, 3 * n))    # r, z, n̂
        gh_new = np.empty((steps, batch, n))      # recurrent candidate in
    else:
        act_slab = np.empty((batch, 3 * n), dtype=cdt)
    zero_h = np.zeros((batch, n), dtype=cdt)
    h_prev = zero_h
    for k, t in enumerate(ts):
        h = hs[t]
        a = acts[k] if record else act_slab
        np.matmul(h_prev, wh, out=gh_buf)
        gh_buf += bh                              # gh = h·W_hh + b_hh
        np.add(gi_all[t, :, :2 * n], gh_buf[:, :2 * n], out=rz_pre)
        _sigmoid_into(rz_pre, a[:, :2 * n])       # r, z in one pass
        r = a[:, 0 * n:1 * n]
        z = a[:, 1 * n:2 * n]
        cand = a[:, 2 * n:3 * n]
        if record:
            gh_new[k] = gh_buf[:, 2 * n:3 * n]
        np.multiply(r, gh_buf[:, 2 * n:3 * n], out=scratch)
        scratch += gi_all[t, :, 2 * n:3 * n]      # gi_n + r·gh_n
        np.tanh(scratch, out=cand)
        np.subtract(1.0, z, out=scratch)
        np.multiply(scratch, cand, out=h)         # (1-z)·n̂
        np.multiply(z, h_prev, out=scratch)
        h += scratch                              # + z·h_prev
        if keep_m is not None and not full_t[t]:
            keep = keep_m[:, t]
            h *= keep
            np.multiply(h_prev, drop_m[:, t], out=scratch)
            h += scratch
        h_prev = h
    outputs = np.ascontiguousarray(hs.transpose(1, 0, 2))  # (B, T, H)

    def backward(grad: np.ndarray) -> None:
        deriv = 1.0 - acts                        # σ' on r, z
        deriv *= acts
        cb = acts[:, :, 2 * n:3 * n]
        cblk = deriv[:, :, 2 * n:3 * n]
        np.multiply(cb, cb, out=cblk)             # tanh' on the n̂ block
        np.subtract(1.0, cblk, out=cblk)
        wh_t = wh.T.copy()
        gT = np.ascontiguousarray(grad.transpose(1, 0, 2))   # (T, B, H)
        dh = np.zeros((batch, n))
        d_gi = np.empty((steps, batch, 3 * n))               # time-major
        d_gh = np.empty((steps, batch, 3 * n))
        s1 = np.empty((batch, n))
        dh_skip = np.empty((batch, n))
        for k in range(steps - 1, -1, -1):
            t = ts[k]
            dh += gT[t]
            partial = keep_m is not None and not full_t[t]
            if partial:
                np.multiply(dh, drop_m[:, t], out=dh_skip)
                dh *= keep_m[:, t]
            r = acts[k, :, 0 * n:1 * n]
            z = acts[k, :, 1 * n:2 * n]
            cand = acts[k, :, 2 * n:3 * n]
            h_prev = hs[ts[k - 1]] if k > 0 else zero_h
            gi = d_gi[t]
            dgh = d_gh[t]
            np.subtract(1.0, z, out=s1)
            s1 *= dh
            np.multiply(s1, deriv[k, :, 2 * n:3 * n],
                        out=gi[:, 2 * n:3 * n])             # da_n
            np.subtract(h_prev, cand, out=s1)
            s1 *= dh
            np.multiply(s1, deriv[k, :, 1 * n:2 * n],
                        out=gi[:, 1 * n:2 * n])             # da_z
            np.multiply(gi[:, 2 * n:3 * n], gh_new[k], out=s1)
            np.multiply(s1, deriv[k, :, 0 * n:1 * n],
                        out=gi[:, 0 * n:1 * n])             # da_r
            dgh[:, :2 * n] = gi[:, :2 * n]
            np.multiply(gi[:, 2 * n:3 * n], r, out=dgh[:, 2 * n:3 * n])
            np.multiply(dh, z, out=s1)
            np.matmul(dgh, wh_t, out=dh)
            dh += s1
            if partial:
                dh += dh_skip
        flat = d_gi.reshape(steps * batch, 3 * n)
        if x.requires_grad:
            dx = (flat @ wi.T).reshape(steps, batch, features)
            x._accumulate(np.ascontiguousarray(dx.transpose(1, 0, 2)),
                          own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(xT.reshape(steps * batch, features).T @ flat,
                             own=True)
        if w_hh.requires_grad:
            # dW_hh = Σ_k h_{k-1}ᵀ·dgh_k as ONE GEMM over the recorded
            # per-step recurrent-projection grads.
            hp = np.empty((steps, batch, n))
            if reverse:
                hp[steps - 1] = 0.0
                if steps > 1:
                    hp[:steps - 1] = hs[1:]
            else:
                hp[0] = 0.0
                if steps > 1:
                    hp[1:] = hs[:steps - 1]
            w_hh._accumulate(
                hp.reshape(steps * batch, n).T
                @ d_gh.reshape(steps * batch, 3 * n), own=True)
        if b_ih.requires_grad:
            b_ih._accumulate(d_gi.sum(axis=(0, 1)), own=True)
        if b_hh.requires_grad:
            b_hh._accumulate(d_gh.sum(axis=(0, 1)), own=True)

    node = Tensor._make(outputs, (x, w_ih, w_hh, b_ih, b_hh), backward)
    h_last = node[:, ts[-1], :]
    return node, h_last


# ----------------------------------------------------------------------
# LSTM decoder: expand one vector into a sequence
# ----------------------------------------------------------------------
def lstm_decode(v: Tensor, w_ih: Tensor, w_hh: Tensor, bias: Tensor,
                steps: int, lengths: np.ndarray | None = None) -> Tensor:
    """Fused :class:`~repro.nn.rnn.LSTMDecoder` time loop.

    The input vector ``v`` (``(B, D)``) is fed at *every* step, so its
    projection is computed once and its gradient is the sum of the
    per-step gate gradients pushed through ``w_ih`` — one GEMM each way.
    Returns the hidden-state scaffold ``(B, steps, H)``.
    """
    record = _needs_grad(v, w_ih, w_hh, bias)
    cdt = _compute_dtype(record)
    vd = np.asarray(v.data, dtype=cdt)
    wi = weight_view(w_ih, cdt)
    wh = weight_view(w_hh, cdt)
    b = weight_view(bias, cdt)
    batch = vd.shape[0]
    n = wh.shape[0]
    keep_m, drop_m, full_t = _masks(lengths, steps, cdt)
    v_proj = vd @ wi                       # one projection for all steps

    hs = np.empty((steps, batch, n), dtype=cdt)  # hs[t] = h_t, time-major
    c_states = np.empty((steps + 1, batch, n), dtype=cdt)
    c_states[0] = 0.0
    gate_buf = np.empty((batch, 4 * n), dtype=cdt)
    scratch = np.empty((batch, n), dtype=cdt)
    if record:
        acts = np.empty((steps, batch, 4 * n))
        tanh_c = np.empty((steps, batch, n))
    else:
        act_slab = np.empty((batch, 4 * n), dtype=cdt)
        tc_slab = np.empty((batch, n), dtype=cdt)
    zero_h = np.zeros((batch, n), dtype=cdt)
    h_prev = zero_h
    for t in range(steps):
        c_prev = c_states[t]
        c_new = c_states[t + 1]
        h = hs[t]
        sig = acts[t] if record else act_slab
        tc = tanh_c[t] if record else tc_slab
        np.matmul(h_prev, wh, out=gate_buf)
        gate_buf += v_proj
        gate_buf += b
        _sigmoid_into(gate_buf, sig)
        g = np.tanh(gate_buf[:, 2 * n:3 * n], out=sig[:, 2 * n:3 * n])
        i = sig[:, 0 * n:1 * n]
        f = sig[:, 1 * n:2 * n]
        o = sig[:, 3 * n:4 * n]
        np.multiply(f, c_prev, out=c_new)
        np.multiply(i, g, out=scratch)
        c_new += scratch
        np.tanh(c_new, out=tc)
        np.multiply(o, tc, out=h)
        if keep_m is not None and not full_t[t]:
            keep = keep_m[:, t]
            drop = drop_m[:, t]
            h *= keep
            np.multiply(h_prev, drop, out=scratch)
            h += scratch
            c_new *= keep
            np.multiply(c_prev, drop, out=scratch)
            c_new += scratch
        h_prev = h
    outputs = np.ascontiguousarray(hs.transpose(1, 0, 2))  # (B, T, H)

    def backward(grad: np.ndarray) -> None:
        deriv = 1.0 - acts
        deriv *= acts
        gb = acts[:, :, 2 * n:3 * n]
        gblk = deriv[:, :, 2 * n:3 * n]
        np.multiply(gb, gb, out=gblk)
        np.subtract(1.0, gblk, out=gblk)
        dtanh_c = tanh_c * tanh_c
        np.subtract(1.0, dtanh_c, out=dtanh_c)
        wh_t = wh.T.copy()
        gT = np.ascontiguousarray(grad.transpose(1, 0, 2))   # (T, B, H)
        dh = np.zeros((batch, n))
        dc = np.zeros((batch, n))
        da_all = np.empty((steps, batch, 4 * n))  # per-step gate grads
        s1 = np.empty((batch, n))
        dh_skip = np.empty((batch, n))
        dc_skip = np.empty((batch, n))
        for t in range(steps - 1, -1, -1):
            da = da_all[t]
            dh += gT[t]
            partial = keep_m is not None and not full_t[t]
            if partial:
                keep = keep_m[:, t]
                drop = drop_m[:, t]
                np.multiply(dh, drop, out=dh_skip)
                dh *= keep
                np.multiply(dc, drop, out=dc_skip)
                dc *= keep
            i = acts[t, :, 0 * n:1 * n]
            f = acts[t, :, 1 * n:2 * n]
            g = acts[t, :, 2 * n:3 * n]
            tc = tanh_c[t]
            np.multiply(dh, acts[t, :, 3 * n:4 * n], out=s1)
            s1 *= dtanh_c[t]
            dc += s1
            np.multiply(dh, tc, out=da[:, 3 * n:4 * n])
            np.multiply(dc, g, out=da[:, 0 * n:1 * n])
            np.multiply(dc, c_states[t], out=da[:, 1 * n:2 * n])
            np.multiply(dc, i, out=da[:, 2 * n:3 * n])
            da *= deriv[t]
            dc *= f
            if partial:
                dc += dc_skip
            np.matmul(da, wh_t, out=dh)
            if partial:
                dh += dh_skip
        # v is fed at every step: its projection grad is the time-sum of
        # the per-step gate grads, pushed through w_ih with one GEMM each
        # way.  dW_hh likewise collapses to a single GEMM against the
        # time-aligned previous hidden states (zeros at t = 0).
        dvp = da_all.sum(axis=0)
        if v.requires_grad:
            v._accumulate(dvp @ wi.T, own=True)
        if w_ih.requires_grad:
            w_ih._accumulate(vd.T @ dvp, own=True)
        if w_hh.requires_grad:
            hp = np.empty((steps, batch, n))
            hp[0] = 0.0
            if steps > 1:
                hp[1:] = hs[:steps - 1]
            w_hh._accumulate(
                hp.reshape(steps * batch, n).T
                @ da_all.reshape(steps * batch, 4 * n), own=True)
        if bias.requires_grad:
            # The bias enters every step's gates directly, so its grad
            # is the batch-sum of the accumulated per-step gate grads.
            bias._accumulate(dvp.sum(axis=0), own=True)

    return Tensor._make(outputs, (v, w_ih, w_hh, bias), backward)


# ----------------------------------------------------------------------
# Affine (Linear layer) and attention aggregation
# ----------------------------------------------------------------------
def affine(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """``y = x @ W + b`` as ONE tape node (the Linear layer collapsed).

    The tape version records two nodes (matmul, broadcast add) and the
    weight gradient for ``(B, T, I)`` inputs goes through a *batched*
    transposed matmul followed by an ``_unbroadcast`` reduction over the
    batch axis; here both directions are single flat GEMMs over the
    collapsed leading axes.  Forward values are bit-identical (GEMM rows
    are computed independently, and ``out += b`` produces the same
    elementwise sums as the tape's broadcast add).
    """
    cdt = _compute_dtype(_needs_grad(x, weight, bias))
    xd = np.asarray(x.data, dtype=cdt)
    wd = weight_view(weight, cdt)
    bd = weight_view(bias, cdt)
    out_f = wd.shape[1]
    flat_x = xd.reshape(-1, xd.shape[-1])
    out = flat_x @ wd
    out += bd
    out = out.reshape(xd.shape[:-1] + (out_f,))

    def backward(grad: np.ndarray) -> None:
        g2 = np.ascontiguousarray(grad.reshape(-1, out_f))
        if x.requires_grad:
            x._accumulate((g2 @ wd.T).reshape(xd.shape), own=True)
        if weight.requires_grad:
            weight._accumulate(flat_x.T @ g2, own=True)
        if bias.requires_grad:
            bias._accumulate(g2.sum(axis=0), own=True)

    return Tensor._make(out, (x, weight, bias), backward)


def mlp_head(x: Tensor, w1: Tensor, b1: Tensor,
             w2: Tensor, b2: Tensor) -> Tensor:
    """``tanh((x @ W1 + b1) @ W2 + b2)`` as ONE tape node.

    The two-FC-plus-tanh head of the compression/decompression
    operators (paper Eqs. 4 and 6).  Works on any leading shape; both
    GEMMs run flat over the collapsed leading axes, forward values are
    bit-identical to the tape chain for the same reasons as
    :func:`affine`, and ``np.tanh`` is the tape's own nonlinearity.
    """
    cdt = _compute_dtype(_needs_grad(x, w1, b1, w2, b2))
    xd = np.asarray(x.data, dtype=cdt)
    flat_x = xd.reshape(-1, xd.shape[-1])
    hidden = flat_x @ weight_view(w1, cdt)
    hidden += weight_view(b1, cdt)             # cached for backward
    out = hidden @ weight_view(w2, cdt)
    out += weight_view(b2, cdt)
    np.tanh(out, out=out)
    out_f = w2.data.shape[1]
    out = out.reshape(xd.shape[:-1] + (out_f,))

    def backward(grad: np.ndarray) -> None:
        # d/dpre tanh = 1 - tanh^2, with tanh cached in the output.
        y = out.reshape(-1, out_f)
        dpre = y * y
        np.subtract(1.0, dpre, out=dpre)
        dpre *= grad.reshape(-1, out_f)
        if w2.requires_grad:
            w2._accumulate(hidden.T @ dpre, own=True)
        if b2.requires_grad:
            b2._accumulate(dpre.sum(axis=0), own=True)
        dh = dpre @ w2.data.T
        if w1.requires_grad:
            w1._accumulate(flat_x.T @ dh, own=True)
        if b1.requires_grad:
            b1._accumulate(dh.sum(axis=0), own=True)
        if x.requires_grad:
            x._accumulate((dh @ w1.data.T).reshape(xd.shape), own=True)

    return Tensor._make(out, (x, w1, b1, w2, b2), backward)


def attention_pool(outputs: Tensor, last_hidden: Tensor,
                   w_query: Tensor, b_query: Tensor,
                   w_key: Tensor, b_key: Tensor,
                   lengths: np.ndarray | None = None,
                   neg_inf: float = -1e9) -> Tensor:
    """Self-attention aggregation (paper Eqs. 3-4) as ONE tape node.

    Collapses the ~14-node tape of
    :class:`repro.nn.attention.SelfAttentionAggregator` (two Linears,
    the score reduction, the masked softmax and the weighted sum) into a
    single custom op.  Forward replays the tape's float op order
    exactly — same query/key projections, same ``(k · q) / sqrt(d)``
    scores, same additive ``-1e9`` mask bias, same shifted softmax —
    so fused outputs are bit-identical.  Backward is the hand-derived
    chain with both Linear gradients as flat GEMMs.
    """
    cdt = _compute_dtype(_needs_grad(outputs, last_hidden, w_query,
                                     b_query, w_key, b_key))
    hd = np.asarray(outputs.data, dtype=cdt)   # (B, T, n)
    hld = np.asarray(last_hidden.data, dtype=cdt)  # (B, n)
    batch, steps, n = hd.shape
    scale = 1.0 / np.sqrt(n)

    q = hld @ weight_view(w_query, cdt)    # (B, n)
    q += weight_view(b_query, cdt)
    flat_h = hd.reshape(batch * steps, n)
    k = (flat_h @ weight_view(w_key, cdt)).reshape(batch, steps, n)
    k += weight_view(b_key, cdt)
    scores = (k * q[:, None, :]).sum(axis=2)
    scores *= scale                        # (B, T)
    if lengths is not None:
        from .rnn import sequence_mask
        mask = sequence_mask(np.asarray(lengths), steps)
        if mask.dtype != cdt:
            mask = mask.astype(cdt)
        scores += (1.0 - mask) * neg_inf
    # Softmax over timesteps, replaying Tensor.softmax's op order.
    shifted = scores - scores.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    weights = e / e.sum(axis=1, keepdims=True)
    pooled = (hd * weights[:, :, None]).sum(axis=1)  # (B, n)

    def backward(grad: np.ndarray) -> None:
        # pooled = sum_t weights_t * H_t
        dw = (hd * grad[:, None, :]).sum(axis=2)          # (B, T)
        d_outputs = weights[:, :, None] * grad[:, None, :]
        # softmax backward (the additive mask bias is a constant).
        ds = weights * (dw - (dw * weights).sum(axis=1, keepdims=True))
        ds *= scale
        # scores = sum_h k * q  ->  product rule.
        dk = ds[:, :, None] * q[:, None, :]               # (B, T, n)
        dq = (ds[:, :, None] * k).sum(axis=1)             # (B, n)
        # Through the key projection (flat GEMMs).
        dk_flat = dk.reshape(batch * steps, n)
        d_outputs += (dk_flat @ w_key.data.T).reshape(hd.shape)
        if w_key.requires_grad:
            w_key._accumulate(flat_h.T @ dk_flat, own=True)
        if b_key.requires_grad:
            b_key._accumulate(dk_flat.sum(axis=0), own=True)
        # Through the query projection.
        if last_hidden.requires_grad:
            last_hidden._accumulate(dq @ w_query.data.T, own=True)
        if w_query.requires_grad:
            w_query._accumulate(hld.T @ dq, own=True)
        if b_query.requires_grad:
            b_query._accumulate(dq.sum(axis=0), own=True)
        if outputs.requires_grad:
            outputs._accumulate(d_outputs, own=True)

    return Tensor._make(
        pooled,
        (outputs, last_hidden, w_query, b_query, w_key, b_key),
        backward)
