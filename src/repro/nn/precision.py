"""Inference precision policy — dtype as a threaded-through parameter.

The numeric substrate trains in float64 (gradient checks and the
reproduction's equivalence gates depend on it), but inference is a
thresholded argmax over reconstruction-error softmaxes and tolerates
reduced precision.  This module makes the compute dtype an explicit,
per-thread policy instead of a hard-coded constant:

* :func:`inference_dtype` — a context manager mirroring the
  ``use_fused``/``fused_enabled`` threading.local pattern.  Inside
  ``inference_dtype("float32")`` the fused kernels and the legacy tape
  path run their *inference* branches in float32; training is untouched
  because float32 is only ever applied while gradients are disabled.
* :func:`weight_view` — one-time-cast float32 views of float64 master
  weights, cached per parameter and invalidated when the parameter
  mutates.  Optimizers update ``p.data`` **in place**, so invalidation
  cannot rely on array identity alone: every
  :class:`~repro.nn.module.Parameter` carries a ``version`` counter that
  optimizer steps bump, and a cached view is only served while both the
  backing array object and the version match.

Master weights always stay float64 — ``state_dict`` never sees a cast
view, so checkpoints written under an active float32 context are
byte-identical to ones written outside it.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict

import numpy as np

from ..obs.metrics import default_registry
from .tensor import (Tensor, _PRECISION_STATE, active_dtype_name,
                     is_grad_enabled)

__all__ = ["VALID_DTYPES", "inference_dtype", "active_dtype",
           "active_dtype_name", "weight_view", "inference_param",
           "compute_dtype_for", "weight_view_stats", "clear_weight_views"]

#: The dtype names a precision context accepts.  Policy strings on the
#: public config surface additionally allow ``"auto"``, which resolves
#: to one of these after the parity gate runs.
VALID_DTYPES = ("float64", "float32")

_DTYPES = {"float64": np.dtype(np.float64),
           "float32": np.dtype(np.float32)}

# The per-thread policy state itself lives in ``repro.nn.tensor``
# (``_PRECISION_STATE`` / ``active_dtype_name``), next to the autograd
# flag: ``Tensor`` construction consults both to decide whether a
# float32 array may pass through uncoerced, and importing it from here
# would be circular.  Like autograd mode and fusion, the policy is
# ``threading.local`` so a detection worker running float32 never
# changes the dtype observed by a concurrently training thread; each
# thread starts in float64.


def active_dtype() -> np.dtype:
    """This thread's inference dtype as a numpy dtype object."""
    return _DTYPES[active_dtype_name()]


@contextlib.contextmanager
def inference_dtype(name: str):
    """Run the enclosed block under the given inference dtype.

    Only affects code paths that already run without gradients; the
    training tape records float64 regardless of the active context, so
    entering ``inference_dtype("float32")`` around a training step is a
    no-op rather than a silent precision downgrade.
    """
    if name not in _DTYPES:
        raise ValueError(
            f"unknown inference dtype {name!r}; expected one of "
            f"{VALID_DTYPES}")
    previous = active_dtype_name()
    _PRECISION_STATE.dtype_name = name
    try:
        yield
    finally:
        _PRECISION_STATE.dtype_name = previous


def compute_dtype_for(*arrays: np.ndarray) -> np.dtype:
    """The dtype inference kernels should compute in for these inputs.

    float32 is used only when the active policy asks for it; otherwise
    the kernels keep their historical float64 buffers even when handed
    float32 inputs (nothing upstream produces them in that case).
    """
    if active_dtype_name() == "float32":
        return _DTYPES["float32"]
    return _DTYPES["float64"]


# ----------------------------------------------------------------------
# Weight-view cache
# ----------------------------------------------------------------------
#: ``id(tensor) -> (tensor, source_array, version, cast_view)``.  The
#: entry holds a strong reference to the tensor, so its ``id`` cannot be
#: recycled while the entry lives; bounded LRU keeps transient tensors
#: from pinning memory forever.
_VIEW_CACHE: OrderedDict[int, tuple[Tensor, np.ndarray, int, np.ndarray]] \
    = OrderedDict()
_VIEW_CACHE_MAX = 1024
# Hit/miss/invalidation counts live on the process-wide metrics
# registry (repro.obs), so Prometheus exposition and the legacy
# ``weight_view_stats()`` accessor read the same instruments.
_VIEW_LABELS = {"cache": "weight_view"}
_VIEW_HITS = default_registry().counter(
    "cache_hits_total", help="cache lookups served from cache",
    labels=_VIEW_LABELS)
_VIEW_MISSES = default_registry().counter(
    "cache_misses_total", help="cache lookups that missed",
    labels=_VIEW_LABELS)
_VIEW_INVALIDATIONS = default_registry().counter(
    "weight_view_invalidations_total",
    help="cached weight views dropped after parameter mutation",
    labels=_VIEW_LABELS)
#: The cache is shared by every thread (inference workers and a
#: concurrently training thread see the same master weights), so all
#: OrderedDict/stats mutation happens under one lock — get +
#: move_to_end + popitem interleavings would otherwise drop entries or
#: raise KeyError under eviction pressure.  The cast a miss performs
#: dwarfs the lock cost.
_VIEW_LOCK = threading.Lock()


def weight_view(tensor: Tensor, dtype: np.dtype | None = None) -> np.ndarray:
    """A cached cast of ``tensor.data`` in the requested dtype.

    Returns ``tensor.data`` itself when it already has the requested
    dtype.  A cached cast is served only while the backing array is the
    *same object* (``load_state_dict`` rebinds ``data``) **and** the
    tensor's ``version`` counter is unchanged (optimizers mutate the
    array in place and bump the counter) — either mutation path drops
    the stale view.  Thread-safe: see :data:`_VIEW_LOCK`.
    """
    if dtype is None:
        dtype = active_dtype()
    data = tensor.data
    if data.dtype == dtype:
        return data
    key = id(tensor)
    version = getattr(tensor, "version", 0)
    with _VIEW_LOCK:
        entry = _VIEW_CACHE.get(key)
        if entry is not None:
            if (entry[0] is tensor and entry[1] is data
                    and entry[2] == version and entry[3].dtype == dtype):
                _VIEW_CACHE.move_to_end(key)
                _VIEW_HITS.inc()
                return entry[3]
            _VIEW_INVALIDATIONS.inc()
        _VIEW_MISSES.inc()
        view = np.asarray(data, dtype=dtype)
        view.setflags(write=False)
        _VIEW_CACHE[key] = (tensor, data, version, view)
        while len(_VIEW_CACHE) > _VIEW_CACHE_MAX:
            _VIEW_CACHE.popitem(last=False)
    return view


def inference_param(tensor: Tensor) -> Tensor:
    """The tensor to use for a parameter on the legacy tape path.

    Under an active float32 policy *with gradients disabled*, returns a
    detached tensor wrapping the cached float32 weight view; in every
    other situation — training, or a float64 policy — returns the
    parameter itself, keeping those paths byte-identical to the
    pre-precision code.
    """
    if active_dtype_name() == "float64" or is_grad_enabled():
        return tensor
    return Tensor(weight_view(tensor))


def weight_view_stats() -> dict[str, int]:
    """Hit/miss/invalidation counters plus the current entry count.

    A thin view over the registry counters; the payload shape is
    unchanged from the pre-registry dict.
    """
    with _VIEW_LOCK:
        entries = len(_VIEW_CACHE)
    return {"hits": _VIEW_HITS.value, "misses": _VIEW_MISSES.value,
            "invalidations": _VIEW_INVALIDATIONS.value,
            "entries": entries}


def clear_weight_views() -> None:
    """Drop every cached view (tests and cold benches)."""
    with _VIEW_LOCK:
        _VIEW_CACHE.clear()
    _VIEW_HITS.reset()
    _VIEW_MISSES.reset()
    _VIEW_INVALIDATIONS.reset()
