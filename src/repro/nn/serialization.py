"""Save and load module parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | Path) -> Path:
    """Write the module's parameters to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
