"""Save and load module parameters as ``.npz`` archives.

Writes are atomic (tmp + fsync + rename via :mod:`repro.io`), so a
crash mid-save never truncates a previously good weight file, and loads
surface damage as :class:`~repro.errors.ArtifactCorruptedError` instead
of a raw ``zipfile`` traceback.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ArtifactCorruptedError
from ..io import atomic_savez, load_checked_npz
from .module import Module

__all__ = ["save_module", "load_module", "module_path"]


def module_path(path: str | Path) -> Path:
    """The path ``save_module`` actually writes for ``path``.

    ``.npz`` is appended when absent, mirroring numpy's behaviour but
    resolved *up front* so save and load agree on one canonical path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_module(module: Module, path: str | Path) -> Path:
    """Atomically write the module's parameters; returns the real path."""
    target = module_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return atomic_savez(target, **module.state_dict())


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module``.

    Raises ``FileNotFoundError`` naming both candidate paths when
    neither the given path nor its ``.npz``-suffixed form exists, and
    :class:`ArtifactCorruptedError` when the archive is damaged or its
    contents do not match the module's parameters.
    """
    given = Path(path)
    canonical = module_path(given)
    if given.exists() and given.is_file():
        target = given
    elif canonical.exists():
        target = canonical
    else:
        candidates = {str(given), str(canonical)}
        raise FileNotFoundError(
            "no saved module found at "
            + " or ".join(sorted(candidates)))
    state = load_checked_npz(target)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ArtifactCorruptedError(
            target, f"state does not match module: {exc}") from exc
    return module
