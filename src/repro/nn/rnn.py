"""Recurrent layers: LSTM, GRU, bidirectional and stacked variants.

All recurrent layers operate on right-padded batches ``(B, T, F)`` with an
optional ``lengths`` vector.  Padding is handled with *freeze masking*: at a
padded step the hidden state is carried through unchanged, so the hidden
state after the loop equals the state at each sequence's true last step.
The same trick makes the reversed direction of a BiLSTM correct without any
explicit sequence reversal: iterating from the right, the state stays at its
initial value until the first valid (rightmost) element is reached.

Performance: the input-to-hidden projection of a gated cell does not
depend on the recurrent state, so the drivers *hoist* it out of the time
loop — one ``(B*T, F) @ (F, 4H)`` GEMM up front replaces ``T`` small
``(B, F) @ (F, 4H)`` GEMMs inside the loop (``3H`` for GRUs).  The
decoder goes further: its input is the *same* vector at every step, so a
single ``(B, F) @ (F, 4H)`` product serves all ``T`` steps.  The per-step
work left in Python is only the irreducible recurrent part,
``h @ W_hh`` plus the gate nonlinearities.

By default the drivers (:class:`LSTM`, :class:`GRU`,
:class:`LSTMDecoder`, and through them :class:`BiLSTMLayer` /
:class:`StackedBiLSTM`) route whole sequences through the fused kernels
of :mod:`repro.nn.fused`, which run the time loop in raw numpy and
contribute a *single* node to the autograd tape (hand-derived BPTT)
instead of ~20 nodes per step.  The per-step cell classes remain the
reference implementation: ``with use_fused(False):`` forces the legacy
tape-per-step path, which the fused kernels are verified against
(bit-identical forward, ``rtol=1e-9`` gradients) in
``tests/test_fused.py``.
"""

from __future__ import annotations

import numpy as np

from .fused import fused_enabled, gru_sequence, lstm_decode, lstm_sequence
from .init import orthogonal, xavier_uniform
from .layers import Linear
from .module import Module, Parameter
from .precision import inference_param
from .tensor import Tensor, concat, stack

__all__ = [
    "LSTMCell", "GRUCell", "LSTM", "GRU", "BiLSTMLayer", "StackedBiLSTM",
    "LSTMDecoder", "sequence_mask",
]


def sequence_mask(lengths: np.ndarray, max_len: int) -> np.ndarray:
    """Return a ``(B, T)`` float mask with 1.0 at valid positions."""
    lengths = np.asarray(lengths)
    return (np.arange(max_len)[None, :] < lengths[:, None]).astype(np.float64)


class LSTMCell(Module):
    """A single LSTM step (Hochreiter & Schmidhuber, 1997).

    Gate layout along the last axis of the fused weight matrices is
    ``[input, forget, cell, output]``.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(xavier_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(np.concatenate(
            [orthogonal((hidden_size, hidden_size), rng) for _ in range(4)],
            axis=1))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def input_projection(self, x: Tensor) -> Tensor:
        """Hoisted input-to-hidden GEMM for a whole ``(B, T, F)`` batch.

        Returns ``(B, T, 4H)``; pass slices of it to :meth:`forward` via
        ``x_proj`` so the time loop skips the per-step ``x @ W_ih``.
        Computed as one fused ``(B·T, F) @ (F, 4H)`` matmul.
        """
        batch, steps, features = x.shape
        flat = x.reshape(batch * steps, features)
        return (flat @ inference_param(self.w_ih)).reshape(
            batch, steps, 4 * self.hidden_size)

    def forward(self, x: Tensor | None, h: Tensor, c: Tensor,
                mask: np.ndarray | None = None,
                x_proj: Tensor | None = None) -> tuple[Tensor, Tensor]:
        n = self.hidden_size
        if x_proj is None:
            x_proj = x @ inference_param(self.w_ih)
        gates = (x_proj + h @ inference_param(self.w_hh)
                 + inference_param(self.bias))
        i = gates[:, 0 * n:1 * n].sigmoid()
        f = gates[:, 1 * n:2 * n].sigmoid()
        g = gates[:, 2 * n:3 * n].tanh()
        o = gates[:, 3 * n:4 * n].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        if mask is not None:
            keep = mask.reshape(-1, 1)
            if keep.dtype != h_new.data.dtype:
                keep = keep.astype(h_new.data.dtype)
            h_new = h_new * keep + h * (1.0 - keep)
            c_new = c_new * keep + c * (1.0 - keep)
        return h_new, c_new


class GRUCell(Module):
    """A single GRU step (Cho et al., 2014).

    Gate layout is ``[reset, update, new]``.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(xavier_uniform((input_size, 3 * hidden_size), rng))
        self.w_hh = Parameter(np.concatenate(
            [orthogonal((hidden_size, hidden_size), rng) for _ in range(3)],
            axis=1))
        self.b_ih = Parameter(np.zeros(3 * hidden_size))
        self.b_hh = Parameter(np.zeros(3 * hidden_size))

    def input_projection(self, x: Tensor) -> Tensor:
        """Hoisted ``(B·T, F) @ (F, 3H)`` input projection (bias included)."""
        batch, steps, features = x.shape
        flat = x.reshape(batch * steps, features)
        return (flat @ inference_param(self.w_ih)
                + inference_param(self.b_ih)).reshape(
            batch, steps, 3 * self.hidden_size)

    def forward(self, x: Tensor | None, h: Tensor,
                mask: np.ndarray | None = None,
                x_proj: Tensor | None = None) -> Tensor:
        n = self.hidden_size
        gi = (x @ inference_param(self.w_ih) + inference_param(self.b_ih)
              if x_proj is None else x_proj)
        gh = h @ inference_param(self.w_hh) + inference_param(self.b_hh)
        r = (gi[:, 0 * n:1 * n] + gh[:, 0 * n:1 * n]).sigmoid()
        z = (gi[:, 1 * n:2 * n] + gh[:, 1 * n:2 * n]).sigmoid()
        candidate = (gi[:, 2 * n:3 * n] + r * gh[:, 2 * n:3 * n]).tanh()
        h_new = (1.0 - z) * candidate + z * h
        if mask is not None:
            keep = mask.reshape(-1, 1)
            if keep.dtype != h_new.data.dtype:
                keep = keep.astype(h_new.data.dtype)
            h_new = h_new * keep + h * (1.0 - keep)
        return h_new


class _Recurrent(Module):
    """Shared driver for unidirectional recurrent layers."""

    def __init__(self, hidden_size: int, reverse: bool) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.reverse = reverse

    def _zero_state(self, batch: int,
                    dtype: np.dtype = np.float64) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size), dtype=dtype))

    def _time_order(self, steps: int) -> range:
        return range(steps - 1, -1, -1) if self.reverse else range(steps)


class LSTM(_Recurrent):
    """LSTM over a padded batch.

    Returns ``(outputs, (h_last, c_last))`` where ``outputs`` is
    ``(B, T, H)`` and ``h_last`` is the hidden state at each sequence's last
    valid step (first valid step when ``reverse=True``).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None,
                 reverse: bool = False) -> None:
        super().__init__(hidden_size, reverse)
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(self, x: Tensor, lengths: np.ndarray | None = None
                ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        if fused_enabled():
            outputs, h, c = lstm_sequence(
                x, self.cell.w_ih, self.cell.w_hh, self.cell.bias,
                lengths=lengths, reverse=self.reverse)
            return outputs, (h, c)
        batch, steps, _ = x.shape
        mask = None if lengths is None else sequence_mask(lengths, steps)
        h = self._zero_state(batch, dtype=x.data.dtype)
        c = self._zero_state(batch, dtype=x.data.dtype)
        x_proj = self.cell.input_projection(x)  # one GEMM for all steps
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in self._time_order(steps):
            step_mask = None if mask is None else mask[:, t]
            h, c = self.cell(None, h, c, mask=step_mask,
                             x_proj=x_proj[:, t, :])
            outputs[t] = h
        return stack(outputs, axis=1), (h, c)


class GRU(_Recurrent):
    """GRU over a padded batch; same contract as :class:`LSTM`."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None,
                 reverse: bool = False) -> None:
        super().__init__(hidden_size, reverse)
        self.cell = GRUCell(input_size, hidden_size, rng)

    def forward(self, x: Tensor, lengths: np.ndarray | None = None
                ) -> tuple[Tensor, Tensor]:
        if fused_enabled():
            return gru_sequence(
                x, self.cell.w_ih, self.cell.w_hh, self.cell.b_ih,
                self.cell.b_hh, lengths=lengths, reverse=self.reverse)
        batch, steps, _ = x.shape
        mask = None if lengths is None else sequence_mask(lengths, steps)
        h = self._zero_state(batch, dtype=x.data.dtype)
        x_proj = self.cell.input_projection(x)  # one GEMM for all steps
        outputs: list[Tensor] = [None] * steps  # type: ignore[list-item]
        for t in self._time_order(steps):
            step_mask = None if mask is None else mask[:, t]
            h = self.cell(None, h, mask=step_mask, x_proj=x_proj[:, t, :])
            outputs[t] = h
        return stack(outputs, axis=1), h


class BiLSTMLayer(Module):
    """One bidirectional LSTM layer with the paper's output projection.

    Following Eq. (9) of the paper, the forward and reversed hidden
    sequences are concatenated and projected back to ``hidden_size`` so
    that layers can be stacked.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.forward_lstm = LSTM(input_size, hidden_size, rng, reverse=False)
        self.backward_lstm = LSTM(input_size, hidden_size, rng, reverse=True)
        self.projection = Linear(2 * hidden_size, hidden_size, rng)

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        fwd, _ = self.forward_lstm(x, lengths)
        bwd, _ = self.backward_lstm(x, lengths)
        return self.projection(concat([fwd, bwd], axis=2))


class StackedBiLSTM(Module):
    """A stack of :class:`BiLSTMLayer` (the paper's detector backbone)."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng()
        sizes = [input_size] + [hidden_size] * (num_layers - 1)
        self.layers = [BiLSTMLayer(s, hidden_size, rng) for s in sizes]

    def forward(self, x: Tensor, lengths: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, lengths)
        return x


class LSTMDecoder(Module):
    """LSTM that expands a single vector into a sequence (paper Eq. 5).

    The compressed vector is fed as the input at *every* step, and the
    hidden state sequence is the reconstruction scaffold.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, v: Tensor, steps: int,
                lengths: np.ndarray | None = None) -> Tensor:
        if fused_enabled():
            return lstm_decode(v, self.cell.w_ih, self.cell.w_hh,
                               self.cell.bias, steps, lengths=lengths)
        batch = v.shape[0]
        mask = None if lengths is None else sequence_mask(lengths, steps)
        h = Tensor(np.zeros((batch, self.hidden_size),
                            dtype=v.data.dtype))
        c = Tensor(np.zeros((batch, self.hidden_size),
                            dtype=v.data.dtype))
        # The input is the same vector at every step: project it once and
        # reuse the result for all ``steps`` iterations.
        v_proj = v @ inference_param(self.cell.w_ih)
        outputs: list[Tensor] = []
        for t in range(steps):
            step_mask = None if mask is None else mask[:, t]
            h, c = self.cell(None, h, c, mask=step_mask, x_proj=v_proj)
            outputs.append(h)
        return stack(outputs, axis=1)
