"""Basic feed-forward layers."""

from __future__ import annotations

import numpy as np

from .init import xavier_uniform
from .module import Module, Parameter
from .precision import inference_param
from .tensor import Tensor

__all__ = ["Linear", "Sequential"]


class Linear(Module):
    """Fully connected layer: ``y = x @ W + b``.

    Accepts inputs of any leading shape; the last axis must equal
    ``in_features``.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected last axis {self.in_features}, got {x.shape}")
        from .fused import affine, fused_enabled
        if fused_enabled():
            # One tape node instead of two; bit-identical values (see
            # :func:`repro.nn.fused.affine`) and dtype-aware on the
            # inference branch.
            return affine(x, self.weight, self.bias)
        return (x @ inference_param(self.weight)
                + inference_param(self.bias))


class Sequential(Module):
    """Apply modules in order; each must map Tensor -> Tensor."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)
