"""Loss functions used in the LEAD pipeline."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "kld_loss", "bce_loss"]

_EPS = 1e-12


def mse_loss(prediction: Tensor, target: np.ndarray,
             mask: np.ndarray | None = None) -> Tensor:
    """Mean squared error (paper Eq. 8).

    ``mask`` (same leading shape as ``prediction``, broadcastable) selects
    valid positions in padded batches; the mean is taken over valid
    elements only.
    """
    target = np.asarray(target, dtype=np.float64)
    diff = prediction - target
    squared = diff * diff
    if mask is None:
        return squared.mean()
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim < squared.ndim:
        mask = mask.reshape(mask.shape + (1,) * (squared.ndim - mask.ndim))
    valid = float(np.broadcast_to(mask, squared.shape).sum())
    if valid == 0:
        raise ValueError("mask selects no elements")
    return (squared * mask).sum() * (1.0 / valid)


def kld_loss(label: np.ndarray, prediction: Tensor) -> Tensor:
    """Kullback-Leibler divergence KL(label || prediction) (Eqs. 11-12).

    ``label`` is a fixed (already epsilon-smoothed) discrete distribution;
    gradients flow only through ``prediction``.
    """
    label = np.asarray(label, dtype=np.float64)
    if label.shape != prediction.shape:
        raise ValueError(
            f"label shape {label.shape} != prediction shape {prediction.shape}")
    log_pred = (prediction + _EPS).log()
    constant = float(np.sum(label * np.log(label + _EPS)))
    return Tensor(constant) - (log_pred * label).sum()


def bce_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Binary cross entropy over probabilities in (0, 1)."""
    target = np.asarray(target, dtype=np.float64)
    pred = prediction * (1.0 - 2.0 * _EPS) + _EPS  # keep log() finite
    loss = (pred.log() * target + (1.0 - pred).log() * (1.0 - target)) * -1.0
    return loss.mean()
