"""Loss functions used in the LEAD pipeline."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, is_grad_enabled

__all__ = ["mse_loss", "kld_loss", "bce_loss"]

_EPS = 1e-12


def _fused_mse(prediction: Tensor, target: np.ndarray,
               mask: np.ndarray | None) -> Tensor:
    """Masked MSE as ONE tape node (see :mod:`repro.nn.fused`).

    The tape version records five nodes and four full-size temporaries
    per loss; the training path evaluates a loss per branch per batch,
    so collapsing it matters.  Forward replays the tape's float op
    order exactly; the hand backward is ``d/dpred = 2·mask·diff/valid``
    (the tape accumulates ``dsq·diff`` twice, and ``a + a == 2·a``
    bit-exactly for floats).
    """
    diff = prediction.data - target
    squared = diff * diff
    if mask is None:
        valid = float(squared.size)
        value = squared.mean()
    else:
        valid = float(np.broadcast_to(mask, squared.shape).sum())
        if valid == 0:
            raise ValueError("mask selects no elements")
        value = (squared * mask).sum() * (1.0 / valid)

    def backward(grad: np.ndarray) -> None:
        g = diff * (float(grad) * (2.0 / valid))
        if mask is not None:
            g *= mask
        prediction._accumulate(g, own=True)

    return Tensor._make(np.asarray(value), (prediction,), backward)


def mse_loss(prediction: Tensor, target: np.ndarray,
             mask: np.ndarray | None = None) -> Tensor:
    """Mean squared error (paper Eq. 8).

    ``mask`` (same leading shape as ``prediction``, broadcastable) selects
    valid positions in padded batches; the mean is taken over valid
    elements only.

    Under the fused training path (:func:`repro.nn.fused.fused_enabled`,
    the default) the whole loss is a single custom autograd op;
    ``use_fused(False)`` restores the legacy multi-node tape.
    """
    from .fused import fused_enabled
    target = np.asarray(target, dtype=np.float64)
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.ndim < prediction.data.ndim:
            mask = mask.reshape(
                mask.shape + (1,) * (prediction.data.ndim - mask.ndim))
    if fused_enabled() and is_grad_enabled():
        return _fused_mse(prediction, target, mask)
    diff = prediction - target
    squared = diff * diff
    if mask is None:
        return squared.mean()
    valid = float(np.broadcast_to(mask, squared.shape).sum())
    if valid == 0:
        raise ValueError("mask selects no elements")
    return (squared * mask).sum() * (1.0 / valid)


def kld_loss(label: np.ndarray, prediction: Tensor) -> Tensor:
    """Kullback-Leibler divergence KL(label || prediction) (Eqs. 11-12).

    ``label`` is a fixed (already epsilon-smoothed) discrete distribution;
    gradients flow only through ``prediction``.
    """
    label = np.asarray(label, dtype=np.float64)
    if label.shape != prediction.shape:
        raise ValueError(
            f"label shape {label.shape} != prediction shape {prediction.shape}")
    log_pred = (prediction + _EPS).log()
    constant = float(np.sum(label * np.log(label + _EPS)))
    return Tensor(constant) - (log_pred * label).sum()


def bce_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Binary cross entropy over probabilities in (0, 1)."""
    target = np.asarray(target, dtype=np.float64)
    pred = prediction * (1.0 - 2.0 * _EPS) + _EPS  # keep log() finite
    loss = (pred.log() * target + (1.0 - pred).log() * (1.0 - target)) * -1.0
    return loss.mean()
