"""The blessed public surface of the repro package.

Everything importable from this module — equivalently, from ``repro``
itself, which lazily forwards here — is **covenant**: names, call
signatures and semantics only change with a deprecation cycle.
Anything else under ``repro.*`` is internal wiring that may move
between releases without notice.  DESIGN.md §15 records the covenant
and the reasoning.

The facade groups into layers:

* **Data** — build a synthetic world and a labeled dataset.
* **Model** — configure, fit, save/load and run the LEAD detector.
* **Streaming** — per-truck sessions and the single-process fleet
  manager over a live ping stream.
* **Serving** — the sharded multi-process :class:`FleetService`.
* **Operations** — config round-trips, observability, resilience and
  chaos primitives, and the fused/precision execution toggles.
"""

from __future__ import annotations

# Data substrate
from .data import (DatasetConfig, HCTDataset, LabeledSample, POIDatabase,
                   SyntheticWorld, WorldConfig, generate_dataset)
# Model pipeline
from .pipeline import (LEAD, VARIANT_NAMES, DetectionProvenance,
                       DetectionResult, FitReport, LEADConfig,
                       variant_config)
# Streaming
from .stream import (FleetConfig, FleetSessionManager, Ping,
                     ProvisionalVerdict, TruckSession,
                     dataset_ping_stream)
# Serving
from .serve import (FleetService, ServeConfig, ServeError, SubmitResult,
                    shard_for)
# Operations
from .chaos import ChaosEngine, FaultSpec
from .configbase import ConfigMixin, config_from_dict, config_to_dict
from .errors import ReproError
from .nn import inference_dtype, use_fused
from .obs import Observability, observe
from .supervise import CircuitBreaker, RetryPolicy

__all__ = [
    # data
    "DatasetConfig", "HCTDataset", "LabeledSample", "POIDatabase",
    "SyntheticWorld", "WorldConfig", "generate_dataset",
    # model
    "LEAD", "LEADConfig", "DetectionResult", "DetectionProvenance",
    "FitReport", "VARIANT_NAMES", "variant_config",
    # streaming
    "FleetConfig", "FleetSessionManager", "Ping", "ProvisionalVerdict",
    "TruckSession", "dataset_ping_stream",
    # serving
    "FleetService", "ServeConfig", "ServeError", "SubmitResult",
    "shard_for",
    # operations
    "ChaosEngine", "FaultSpec", "CircuitBreaker", "RetryPolicy",
    "ConfigMixin", "config_from_dict", "config_to_dict",
    "Observability", "observe", "ReproError",
    "inference_dtype", "use_fused",
]
