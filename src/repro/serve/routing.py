"""Deterministic truck → shard routing.

Routing must be a *pure function of the truck id* so that the same
truck always lands on the same shard: per-truck ping order is then
preserved end-to-end (one FIFO queue, one single-threaded worker per
shard) and the sharded service converges to the exact verdicts of a
serial :class:`~repro.stream.FleetSessionManager` replay.

The hash is keyed ``blake2b`` rather than Python's ``hash()`` because
the latter is salted per process (``PYTHONHASHSEED``): two frontends —
or one frontend and the test asserting against it — must agree on the
placement of every truck.
"""

from __future__ import annotations

from hashlib import blake2b

__all__ = ["shard_for"]


def shard_for(truck_id: str, num_shards: int) -> int:
    """The owning shard of ``truck_id`` in a ``num_shards``-way fleet."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = blake2b(truck_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards
