"""Sharded-vs-serial convergence soak for the serve layer.

The acceptance bar of the serving tier, runnable from CI: an N-shard
:class:`~repro.serve.FleetService` replaying the chaos soak's 50-truck
synthetic day — with workers killed mid-run, both by the seeded
``serve.worker`` chaos site and by an explicit mid-replay SIGKILL —
must produce final verdicts identical to a serial
:class:`~repro.stream.FleetSessionManager` replay: same pair, same
confidence, same provenance tier, distributions allclose at rtol 1e-9
(the same convergence predicate the chaos soak uses).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..chaos.core import ChaosEngine, FaultSpec
# Internal reuse of the chaos soak's fixtures and its convergence
# predicate keeps the two soaks honest about meaning the same thing.
from ..chaos.soak import (_final_verdicts, _tiny_detector, _verdict_digest,
                          _verdicts_match, build_soak_fleet_data)
from ..stream.fleet import FleetConfig, FleetSessionManager
from ..stream.replay import dataset_ping_stream
from .config import ServeConfig
from .service import FleetService

__all__ = ["run_serve_soak", "format_serve_soak"]

#: Pings per submit batch; ticks land every other batch, matching the
#: chaos soak's cadence of one tick per 400 pings.
_BATCH_PINGS = 200


def run_serve_soak(*, seed: int = 7, data_seed: int = 13,
                   num_trajectories: int = 50, num_trucks: int = 20,
                   num_shards: int = 4, backend: str = "process",
                   fit_detector: bool = True, kill_shard: int | None = None,
                   workdir: str | Path | None = None) -> dict:
    """Run the sharded service under fire and diff it against serial.

    Returns a JSON-safe report; ``report["ok"]`` is the verdict-for-
    verdict convergence result.  ``kill_shard`` additionally SIGKILLs
    that shard's worker at the replay midpoint (the CI shard-kill
    drill); the seeded chaos site may kill others on top.
    """
    world, dataset = build_soak_fleet_data(
        data_seed=data_seed, num_trajectories=num_trajectories,
        num_trucks=num_trucks)
    pings = dataset_ping_stream(dataset.samples)
    detector = (_tiny_detector(world, dataset.samples)
                if fit_detector else None)

    serial = FleetSessionManager(detector, FleetConfig())
    baseline = _final_verdicts(serial, pings)

    if workdir is None:
        scratch = tempfile.TemporaryDirectory(prefix="serve-soak-")
        root = Path(scratch.name)
    else:
        scratch = None
        root = Path(workdir)
    specs = [FaultSpec(site="serve.worker", kind="kill", rate=0.1,
                       max_fires=2)]
    batches = [pings[i:i + _BATCH_PINGS]
               for i in range(0, len(pings), _BATCH_PINGS)]
    midpoint = len(batches) // 2
    config = ServeConfig(num_shards=num_shards, backend=backend,
                         checkpoint_dir=root / "shards",
                         checkpoint_every=8)
    rejected_total = 0
    killed = False
    try:
        with FleetService(detector, config=config) as service:
            with ChaosEngine(seed=seed, specs=specs):
                for index, batch in enumerate(batches):
                    if index == midpoint and kill_shard is not None:
                        killed = service.kill_worker(shard=kill_shard)
                    result = service.submit(batch)
                    while result.rejected:
                        rejected_total += result.rejected
                        service.wait()
                        result = service.submit(result.rejected_pings)
                    if index % 2 == 1:
                        service.tick()
                service.tick()
                sharded = {(v.truck_id, v.day): v
                           for v in service.drain()}
                stats = service.stats()
    finally:
        if scratch is not None:
            scratch.cleanup()

    mismatches = sorted(
        f"{key[0]}|{key[1]}"
        for key in set(baseline) | set(sharded)
        if key not in baseline or key not in sharded
        or not _verdicts_match(sharded[key], baseline[key]))
    return {
        "ok": not mismatches,
        "num_shards": num_shards,
        "backend": backend,
        "num_pings": len(pings),
        "num_verdicts": len(sharded),
        "mismatches": mismatches,
        "restarts": stats["frontend"]["restarts"],
        "barriers": stats["frontend"]["barriers"],
        "rejected_pings": rejected_total,
        "kill_shard": kill_shard,
        "killed_midpoint": killed,
        "serial_digest": _verdict_digest(baseline),
        "sharded_digest": _verdict_digest(sharded),
    }


def format_serve_soak(report: dict) -> str:
    """A terminal summary of one serve soak report."""
    lines = [
        f"serve soak: {report['num_shards']} shards "
        f"({report['backend']}), {report['num_pings']} pings, "
        f"{report['num_verdicts']} final verdicts",
        f"  restarts={report['restarts']}  barriers={report['barriers']}"
        f"  rejected_pings={report['rejected_pings']}"
        f"  kill_shard={report['kill_shard']}",
        f"  serial  digest {report['serial_digest'][:16]}…",
        f"  sharded digest {report['sharded_digest'][:16]}…",
    ]
    if report["mismatches"]:
        lines.append("  MISMATCHED sessions: "
                     + ", ".join(report["mismatches"]))
    lines.append("  converged: " + ("yes" if report["ok"] else "NO"))
    return "\n".join(lines)
