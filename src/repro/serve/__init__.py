"""Sharded multi-process fleet serving (the repo's ingest frontier).

``FleetService`` shards trucks across N worker processes — each owning
a :class:`~repro.stream.FleetSessionManager` and a detector replica —
behind one keyword-only frontend: ``submit`` / ``flush`` / ``drain`` /
``stats``.  Routing is a pure function of the truck id, so per-truck
ordering and bit-exact convergence with a serial replay are preserved;
dead or hung workers restart from barrier snapshots and a journal
replay.  See DESIGN.md §15.
"""

from .config import ServeConfig
from .routing import shard_for
from .service import (FleetService, ServeCounters, ServeError,
                      SubmitResult)
from .soak import format_serve_soak, run_serve_soak

__all__ = ["FleetService", "ServeConfig", "ServeCounters", "ServeError",
           "SubmitResult", "format_serve_soak", "run_serve_soak",
           "shard_for"]
