"""Shard worker: one FleetSessionManager driven by a command queue.

The wire protocol is deliberately tiny — plain tuples whose first two
elements are always ``(kind, seq)`` — and every command is applied by
:func:`apply_command`, which the in-process (``inline``) backend calls
directly.  Both backends therefore execute *identical* code against the
session manager; the process backend merely moves the tuples across a
pair of ``multiprocessing`` queues.

Commands (responses are ``(seq, "ok", payload)`` or
``(seq, "error", message)``):

========================  ====================================================
``("ingest", seq, batch, fault)``  ``batch`` maps ``(truck_id, day)`` to
                          columnar ``(lats, lngs, ts)`` lists, each
                          truck's pings in submission order; ``fault``
                          is a parent-drawn :class:`~repro.chaos.Fault`
                          (or None) enforced *before* the batch is
                          applied, so a crashed worker never
                          half-applies it.
``("tick", seq)``         provisional verdicts for resident sessions.
``("flush", seq, truck_id, day)``  final verdict for one truck-day.
``("drain", seq)``        final verdicts for every known session.
``("stats", seq)``        the manager's ``stats()`` dict.
``("barrier", seq, dir)`` ``checkpoint_all`` into ``dir`` (restart protocol).
``("stop", seq)``         acknowledge and exit the loop.
========================  ====================================================

Per-truck ordering is structural: one FIFO queue, one single-threaded
consumer, and deterministic routing in the frontend mean a truck's
pings are applied in submission order, always on the same manager.
"""

from __future__ import annotations

import os
import time

from ..stream.fleet import FleetConfig, FleetSessionManager

__all__ = ["apply_command", "worker_main"]


def apply_command(manager: FleetSessionManager, command: tuple):
    """Apply one protocol command to a shard's session manager."""
    kind = command[0]
    if kind == "ingest":
        # The frontend ships the batch pre-grouped by truck-day with
        # each truck's pings in submission order; sessions are
        # independent, so applying group by group through the array
        # lane ends in state bit-identical to per-ping ingest.
        count = 0
        for (truck_id, day), (lats, lngs, ts) in command[2].items():
            manager.ingest_batch(truck_id, lats, lngs, ts, day=day)
            count += len(ts)
        return count
    if kind == "tick":
        return manager.tick()
    if kind == "flush":
        return manager.flush(command[2], day=command[3])
    if kind == "drain":
        return manager.flush_all()
    if kind == "stats":
        return manager.stats()
    if kind == "barrier":
        return manager.checkpoint_all(directory=command[2])
    raise ValueError(f"unknown serve command {kind!r}")


def _enforce_fault(fault) -> None:
    """Honor a parent-drawn chaos decision inside the worker.

    ``crash`` exits hard (no cleanup, mimicking SIGKILL/OOM); ``hang``
    stalls past the frontend's response timeout so the parent's
    hung-worker detection — not this sleep — decides the outcome.
    """
    if fault is None:
        return
    if fault.kind == "crash":
        os._exit(3)
    if fault.kind == "hang":
        time.sleep(fault.param if fault.param is not None else 60.0)


def worker_main(shard_id: int, detector, fleet_config: FleetConfig,
                requests, responses) -> None:
    """Entry point of one forked shard worker process.

    Consumes commands until ``stop``; any per-command exception is
    reported as an ``error`` response (the worker survives — the
    session manager already isolates input-dependent failures, so an
    escaping exception is a programming error worth surfacing, not
    worth dying for).
    """
    manager = FleetSessionManager(detector, fleet_config)
    manager.adopt_spills()
    while True:
        command = requests.get()
        kind, seq = command[0], command[1]
        if kind == "stop":
            responses.put((seq, "ok", None))
            return
        if kind == "ingest":
            _enforce_fault(command[3])
        try:
            payload = apply_command(manager, command)
        except Exception as exc:   # noqa: BLE001 - report, don't die
            responses.put((seq, "error", f"{type(exc).__name__}: {exc}"))
            continue
        responses.put((seq, "ok", payload))
