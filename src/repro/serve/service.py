"""The sharded fleet service frontend.

``FleetService`` places every truck on one of N shards with
:func:`~repro.serve.routing.shard_for` and drives each shard — a
:class:`~repro.stream.FleetSessionManager` plus a detector replica —
through the tiny command protocol of :mod:`repro.serve.worker`.  The
``process`` backend forks one worker per shard and moves commands over
bounded ``multiprocessing`` queues; the ``inline`` backend applies the
same commands in-process (deterministic tests, and the degraded mode a
shard falls into when its restart breaker opens).

**Convergence contract.**  A truck's final verdict is a pure function
of its ordered ping sequence: routing pins each truck to one shard, the
shard's FIFO queue and single-threaded worker preserve submission
order, and ``flush`` recomputes from the session's final state — so an
N-shard drain equals a serial ``FleetSessionManager`` replay
verdict-for-verdict (same pair, same provenance tier, probabilities
allclose), shard count and interleaving notwithstanding.

**Restart protocol (journal + barrier).**  The frontend journals every
mutating command (``ingest``/``flush``/``drain``) per shard.  With a
``checkpoint_dir``, every ``checkpoint_every`` mutations it asks the
worker for a *barrier*: ``checkpoint_all`` snapshots every known
session into a fresh ``shard-<i>/barrier-<seq>`` directory (resident
sessions written from live state, evicted sessions' spill files copied
verbatim — exact, since evicted sessions receive no pings).  When the
barrier acks, the journal is truncated to entries after it.  A dead or
hung worker is then recovered by wiping the shard's live sessions
directory, copying the barrier in, starting a fresh manager
(``adopt_spills`` re-registers never-re-touched trucks) and replaying
the journal suffix — every command applied exactly once against
barrier state, so recovery converges bit-for-bit with an undisturbed
run.  Each restart is a failure on the shard's
:class:`~repro.supervise.CircuitBreaker` (logical restart-attempt
clock); an open breaker degrades the shard to the inline backend until
the cooldown passes.

**Admission control.**  A shard with ``queue_high_water`` un-acked
commands rejects new pings — they come back in the
:class:`SubmitResult` with a backpressure reason instead of queueing
without bound.

Chaos site ``serve.worker`` (keyed by shard index) injects ``kill``
(the frontend SIGKILLs the worker), ``crash`` (the worker hard-exits
before applying the batch) and ``hang`` (the worker stalls past the
response timeout); all three funnel into the same restart path.

All public methods take keyword-only options — the serve surface is
keyword-only from day one.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import shutil
import time
import warnings
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..chaos.core import chaos_point
from ..obs.core import active_obs, obs_event, obs_span
from ..stream.fleet import FleetSessionManager
from ..stream.verdict import ProvisionalVerdict
from ..supervise import CircuitBreaker
from .config import ServeConfig
from .routing import shard_for
from .worker import apply_command, worker_main

__all__ = ["FleetService", "ServeCounters", "ServeError", "SubmitResult"]

#: Command kinds the frontend journals (and therefore replays).
_JOURNALED = frozenset({"ingest", "flush", "drain"})


class ServeError(RuntimeError):
    """A shard reported a command failure, or the service is closed."""


@dataclass(frozen=True)
class SubmitResult:
    """What one ``submit`` call did with its pings."""

    accepted: int
    rejected: int
    #: The rejected pings in normalized ``(truck_id, day, lat, lng, t)``
    #: tuple form, in input order — feed them straight back to
    #: ``submit()`` once the overloaded shards drain.
    rejected_pings: tuple = ()
    #: One backpressure reason per rejecting shard.
    reasons: tuple[str, ...] = ()


@dataclass
class ServeCounters:
    """Frontend-level counters (per-shard stats live in the workers)."""

    submitted_pings: int = 0
    accepted_pings: int = 0
    rejected_pings: int = 0
    restarts: int = 0
    degraded_shards: int = 0
    barriers: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _Shard:
    """Frontend-side state of one shard (worker or inline manager)."""

    def __init__(self, index: int, fleet_config) -> None:
        self.index = index
        self.fleet_config = fleet_config
        self.mode: str = "unstarted"        # "process" | "inline"
        self.process = None
        self.requests = None
        self.responses = None
        self.manager: FleetSessionManager | None = None
        self.seq = 0                        # next command seq
        self.inflight = 0                   # sent, not yet acked
        self.interest: set[int] = set()     # seqs someone will await
        self.results: dict[int, tuple] = {}
        self.journal: list[tuple[int, tuple]] = []
        self.mutations = 0                  # since the last barrier
        self.barrier_seq = -1
        self.barrier_dir: Path | None = None
        self.pending_barrier: tuple[int, Path] | None = None
        self.breaker: CircuitBreaker | None = None

    def next_seq(self) -> int:
        seq = self.seq
        self.seq += 1
        return seq


class FleetService:
    """N-shard fleet frontend: ``submit`` / ``flush`` / ``drain`` / ``stats``."""

    def __init__(self, detector=None, *,
                 config: ServeConfig | None = None) -> None:
        self.detector = detector
        self.config = config or ServeConfig()
        self.counters = ServeCounters()
        self._ctx = mp.get_context("fork")
        self._clock = 0   # logical restart-attempt clock for breakers
        self._closed = False
        # Routing memo: shard_for() is a pure function of the truck id,
        # so one blake2b per *truck* (not per ping) is enough.
        self._routes: dict[str, int] = {}
        root = self.config.checkpoint_dir
        self._root = Path(root) if root is not None else None
        self._shards = [self._build_shard(i)
                        for i in range(self.config.num_shards)]
        for shard in self._shards:
            self._start_shard(shard)

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def _sessions_dir(self, index: int) -> Path | None:
        if self._root is None:
            return None
        return self._root / f"shard-{index}" / "sessions"

    def _build_shard(self, index: int) -> _Shard:
        fleet = self.config.fleet
        sessions = self._sessions_dir(index)
        if sessions is not None:
            fleet = replace(fleet, checkpoint_dir=str(sessions))
        shard = _Shard(index, fleet)
        shard.breaker = CircuitBreaker(
            f"serve-shard-{index}",
            self.config.shard_breaker_failures,
            self.config.shard_breaker_cooldown,
            clock=lambda: float(self._clock))
        return shard

    def _start_shard(self, shard: _Shard) -> None:
        """(Re)start one shard's backend; chooses process vs inline."""
        use_process = (self.config.backend == "process"
                       and shard.breaker.allow())
        if use_process:
            maxsize = 2 * self.config.queue_high_water + 16
            shard.requests = self._ctx.Queue(maxsize=maxsize)
            shard.responses = self._ctx.Queue()
            shard.process = self._ctx.Process(
                target=worker_main,
                args=(shard.index, self.detector, shard.fleet_config,
                      shard.requests, shard.responses),
                daemon=True)
            shard.process.start()
            shard.manager = None
            shard.mode = "process"
        else:
            if self.config.backend == "process" \
                    and shard.mode != "inline":
                self.counters.degraded_shards += 1
                obs_event("serve.shard_degraded", shard=shard.index,
                          reason="restart breaker open; running inline")
            shard.process = None
            shard.requests = None
            shard.responses = None
            shard.manager = FleetSessionManager(self.detector,
                                                shard.fleet_config)
            shard.manager.adopt_spills()
            shard.mode = "inline"
        shard.inflight = 0

    def _restart_shard(self, shard: _Shard, reason: str) -> None:
        """Recover a dead/hung/chaos-killed shard: rebuild and replay."""
        with obs_span("serve.restart", shard=shard.index, reason=reason):
            while True:
                self.counters.restarts += 1
                self._clock += 1
                shard.breaker.record_failure()
                obs_event("serve.shard_restart", shard=shard.index,
                          reason=reason, journal=len(shard.journal),
                          barrier_seq=shard.barrier_seq)
                self._teardown(shard)
                self._rebuild_dirs(shard)
                self._start_shard(shard)
                if self._replay(shard):
                    return
                reason = "worker died during journal replay"

    def _teardown(self, shard: _Shard) -> None:
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.kill()
            shard.process.join(timeout=5.0)
            shard.process = None
        shard.manager = None
        if shard.pending_barrier is not None:
            shutil.rmtree(shard.pending_barrier[1], ignore_errors=True)
            shard.pending_barrier = None

    def _rebuild_dirs(self, shard: _Shard) -> None:
        """Reset the live sessions dir to the last barrier snapshot."""
        sessions = self._sessions_dir(shard.index)
        if sessions is None:
            return
        shutil.rmtree(sessions, ignore_errors=True)
        sessions.mkdir(parents=True, exist_ok=True)
        if shard.barrier_dir is not None and shard.barrier_dir.exists():
            for spill in sorted(shard.barrier_dir.glob("*.json")):
                shutil.copy(spill, sessions / spill.name)

    def _replay(self, shard: _Shard) -> bool:
        """Re-apply the journal suffix to a freshly started shard."""
        if shard.mode == "inline":
            for _seq, command in shard.journal:
                self._apply_inline(shard, command)
            return True
        for _seq, command in shard.journal:
            while True:
                if not shard.process.is_alive():
                    return False
                try:
                    shard.requests.put(command, timeout=0.05)
                    break
                except queue_mod.Full:
                    self._pump(shard)
            shard.inflight += 1
        return True

    # ------------------------------------------------------------------
    # Command plumbing
    # ------------------------------------------------------------------
    def _apply_inline(self, shard: _Shard, command: tuple) -> None:
        try:
            payload = apply_command(shard.manager, command)
        except Exception as exc:   # noqa: BLE001 - mirror worker loop
            result = ("error", f"{type(exc).__name__}: {exc}")
        else:
            result = ("ok", payload)
        seq = command[1]
        if shard.pending_barrier is not None \
                and seq == shard.pending_barrier[0]:
            self._finish_barrier(shard, result[0] == "ok")
        if seq in shard.interest:
            shard.results[seq] = result

    def _handle_response(self, shard: _Shard, item: tuple) -> None:
        seq, status, payload = item
        shard.inflight = max(0, shard.inflight - 1)
        if shard.pending_barrier is not None \
                and seq == shard.pending_barrier[0]:
            self._finish_barrier(shard, status == "ok")
            return
        if seq in shard.interest:
            shard.results[seq] = (status, payload)

    def _pump(self, shard: _Shard) -> None:
        """Drain ready responses without blocking."""
        if shard.mode != "process":
            return
        while True:
            try:
                item = shard.responses.get_nowait()
            except queue_mod.Empty:
                return
            self._handle_response(shard, item)

    def _finish_barrier(self, shard: _Shard, ok: bool) -> None:
        seq, directory = shard.pending_barrier
        shard.pending_barrier = None
        if not ok:
            shutil.rmtree(directory, ignore_errors=True)
            warnings.warn(
                f"serve shard {shard.index} barrier {seq} failed; "
                "keeping the previous snapshot", RuntimeWarning,
                stacklevel=4)
            return
        previous = shard.barrier_dir
        shard.barrier_seq = seq
        shard.barrier_dir = directory
        shard.journal = [(s, c) for s, c in shard.journal if s > seq]
        self.counters.barriers += 1
        if previous is not None:
            shutil.rmtree(previous, ignore_errors=True)

    def _maybe_barrier(self, shard: _Shard) -> None:
        if (self._root is None or shard.pending_barrier is not None
                or shard.mutations < self.config.checkpoint_every):
            return
        shard.mutations = 0
        seq = shard.next_seq()
        directory = self._root / f"shard-{shard.index}" / f"barrier-{seq}"
        command = ("barrier", seq, str(directory))
        shard.pending_barrier = (seq, directory)
        if shard.mode == "inline":
            self._apply_inline(shard, command)
        else:
            self._put(shard, command)
            shard.inflight += 1

    def _put(self, shard: _Shard, message: tuple) -> None:
        while True:
            if not shard.process.is_alive():
                self._restart_shard(shard, "worker died before send")
                if shard.mode == "inline":
                    self._apply_inline(shard, message)
                    return
                continue
            try:
                shard.requests.put(message, timeout=0.05)
                return
            except queue_mod.Full:
                self._pump(shard)

    def _send(self, shard: _Shard, command: tuple, *, fault=None,
              interest: bool = False) -> None:
        """Dispatch one command (journaling and chaos already decided)."""
        if interest:
            shard.interest.add(command[1])
        if command[0] in _JOURNALED:
            shard.journal.append((command[1], command))
            shard.mutations += 1
        if shard.mode == "inline":
            if fault is not None:
                # The worker would have died before applying the batch;
                # the journaled command lands during replay instead.
                self._restart_shard(shard, f"chaos:{fault.kind}")
            else:
                self._apply_inline(shard, command)
        elif fault is not None and fault.kind == "kill":
            self._put(shard, command)
            shard.inflight += 1
            if shard.process.is_alive():
                shard.process.kill()
            self._restart_shard(shard, "chaos:kill")
        else:
            message = command
            if fault is not None and command[0] == "ingest":
                message = (command[0], command[1], command[2], fault)
            self._put(shard, message)
            if shard.mode == "process":   # _put may have degraded us
                shard.inflight += 1
        self._maybe_barrier(shard)

    def _await(self, shard: _Shard, command: tuple):
        """Block until ``command``'s response arrives; recover en route."""
        seq = command[1]
        deadline = time.monotonic() + self.config.response_timeout_s
        while True:
            self._pump(shard)
            if seq in shard.results:
                shard.interest.discard(seq)
                status, payload = shard.results.pop(seq)
                if status == "error":
                    raise ServeError(
                        f"shard {shard.index} failed "
                        f"{command[0]!r}: {payload}")
                if shard.mode == "process":
                    shard.breaker.record_success()
                return payload
            if shard.mode != "process":
                raise ServeError(
                    f"shard {shard.index}: no inline response for "
                    f"{command[0]!r} seq {seq}")
            restart = None
            if not shard.process.is_alive():
                restart = "worker died"
            else:
                try:
                    item = shard.responses.get(timeout=0.05)
                except queue_mod.Empty:
                    if time.monotonic() > deadline:
                        restart = "worker hung (response timeout)"
                else:
                    self._handle_response(shard, item)
                    continue
            if restart is not None:
                self._restart_shard(shard, restart)
                if command[0] not in _JOURNALED \
                        and shard.mode == "process":
                    self._put(shard, command)
                    shard.inflight += 1
                elif command[0] not in _JOURNALED:
                    self._apply_inline(shard, command)
                deadline = (time.monotonic()
                            + self.config.response_timeout_s)

    # ------------------------------------------------------------------
    # Public surface (keyword-only from day one)
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("service is closed")

    def submit(self, pings) -> SubmitResult:
        """Route a batch of pings to their shards (pipelined, non-blocking).

        ``pings`` is an iterable of :class:`~repro.stream.Ping` objects
        or ``(truck_id, day, lat, lng, t)`` tuples.  Pings bound for a
        shard over its high-water mark are *rejected*, not queued:
        they come back in the result for the caller to retry.
        """
        self._check_open()
        pings = list(pings)
        with obs_span("serve.submit", pings=len(pings)):
            routes = self._routes
            num_shards = self.config.num_shards
            # Per shard: (truck_id, day) -> columnar (lats, lngs, ts),
            # each truck's pings in submission order.  The workers
            # apply the groups through the array ingest lane, so the
            # frontend's single per-ping pass is the only one anywhere.
            by_shard: dict[int, dict] = {}
            # (truck_id, day) -> bound column appenders.  Routing and
            # group setup run once per truck-day; the per-ping body is
            # one dict probe and three appends.
            appenders: dict = {}
            for ping in pings:
                if not isinstance(ping, tuple):
                    ping = (ping.truck_id, ping.day, ping.lat,
                            ping.lng, ping.t)
                key = ping[:2]
                adders = appenders.get(key)
                if adders is None:
                    truck_id = ping[0]
                    index = routes.get(truck_id)
                    if index is None:
                        index = routes[truck_id] = shard_for(
                            truck_id, num_shards)
                    groups = by_shard.get(index)
                    if groups is None:
                        groups = by_shard[index] = {}
                    rows = groups[key] = ([], [], [])
                    adders = appenders[key] = (
                        rows[0].append, rows[1].append, rows[2].append)
                adders[0](ping[2])
                adders[1](ping[3])
                adders[2](ping[4])
            accepted = 0
            rejected: list = []
            reasons: list[str] = []
            for index in sorted(by_shard):
                shard = self._shards[index]
                self._pump(shard)
                if shard.mode == "process" \
                        and not shard.process.is_alive():
                    self._restart_shard(shard, "worker died")
                batch = by_shard[index]
                size = sum(len(rows[2]) for rows in batch.values())
                if shard.mode == "process" \
                        and shard.inflight >= self.config.queue_high_water:
                    for (truck_id, day), (lats, lngs, ts) in batch.items():
                        rejected.extend(
                            (truck_id, day, lats[i], lngs[i], ts[i])
                            for i in range(len(ts)))
                    reason = (f"backpressure: shard {index} has "
                              f"{shard.inflight} un-acked commands "
                              f"(high water "
                              f"{self.config.queue_high_water})")
                    reasons.append(reason)
                    obs_event("serve.backpressure", shard=index,
                              inflight=shard.inflight,
                              rejected=size)
                    continue
                seq = shard.next_seq()
                fault = chaos_point("serve.worker", key=str(index))
                # Columns cross the queue as float64 arrays: they
                # pickle as flat buffers, far cheaper than per-float
                # list items, and the worker's array lane takes them
                # as-is.
                wire = {key: (np.asarray(rows[0], dtype=np.float64),
                              np.asarray(rows[1], dtype=np.float64),
                              np.asarray(rows[2], dtype=np.float64))
                        for key, rows in batch.items()}
                self._send(shard, ("ingest", seq, wire, None),
                           fault=fault)
                accepted += size
            self.counters.submitted_pings += len(pings)
            self.counters.accepted_pings += accepted
            self.counters.rejected_pings += len(rejected)
            self._publish_metrics()
        return SubmitResult(accepted=accepted, rejected=len(rejected),
                            rejected_pings=tuple(rejected),
                            reasons=tuple(reasons))

    def flush(self, truck_id: str, *, day: str = "") -> ProvisionalVerdict:
        """Finalize one truck-day on its shard; returns the final verdict."""
        self._check_open()
        shard = self._shards[shard_for(truck_id, self.config.num_shards)]
        command = ("flush", shard.next_seq(), truck_id, day)
        self._send(shard, command, interest=True)
        return self._await(shard, command)

    def tick(self) -> list[ProvisionalVerdict]:
        """One provisional-detection tick on every shard, merged."""
        self._check_open()
        commands = []
        for shard in self._shards:
            command = ("tick", shard.next_seq())
            self._send(shard, command, interest=True)
            commands.append((shard, command))
        verdicts: list[ProvisionalVerdict] = []
        for shard, command in commands:
            verdicts.extend(self._await(shard, command))
        return sorted(verdicts, key=lambda v: (v.day, v.truck_id))

    def drain(self) -> list[ProvisionalVerdict]:
        """Flush every known session on every shard (end of day).

        Returns the merged final verdicts sorted by ``(day, truck_id)``
        — a deterministic order regardless of shard count.
        """
        self._check_open()
        with obs_span("serve.drain"):
            commands = []
            for shard in self._shards:
                command = ("drain", shard.next_seq())
                self._send(shard, command, interest=True)
                commands.append((shard, command))
            verdicts: list[ProvisionalVerdict] = []
            for shard, command in commands:
                verdicts.extend(self._await(shard, command))
            self._publish_metrics()
        return sorted(verdicts, key=lambda v: (v.day, v.truck_id))

    def wait(self) -> None:
        """Block until every submitted command has been acknowledged."""
        self._check_open()
        for shard in self._shards:
            if shard.mode != "process":
                continue
            deadline = time.monotonic() + self.config.response_timeout_s
            while shard.inflight > 0:
                if not shard.process.is_alive():
                    self._restart_shard(shard, "worker died")
                    deadline = (time.monotonic()
                                + self.config.response_timeout_s)
                    continue
                try:
                    item = shard.responses.get(timeout=0.05)
                except queue_mod.Empty:
                    if time.monotonic() > deadline:
                        self._restart_shard(
                            shard, "worker hung (wait timeout)")
                        deadline = (time.monotonic()
                                    + self.config.response_timeout_s)
                else:
                    self._handle_response(shard, item)
                    deadline = (time.monotonic()
                                + self.config.response_timeout_s)

    def stats(self) -> dict:
        """Frontend counters plus every shard's manager stats."""
        self._check_open()
        shards: dict[str, dict] = {}
        commands = []
        for shard in self._shards:
            command = ("stats", shard.next_seq())
            self._send(shard, command, interest=True)
            commands.append((shard, command))
        for shard, command in commands:
            fleet_stats = self._await(shard, command)
            shards[str(shard.index)] = {
                "mode": shard.mode,
                "inflight": shard.inflight,
                "journal_entries": len(shard.journal),
                "barrier_seq": shard.barrier_seq,
                "breaker": shard.breaker.stats(),
                "fleet": fleet_stats,
            }
        self._publish_metrics()
        return {
            "num_shards": self.config.num_shards,
            "backend": self.config.backend,
            "frontend": self.counters.as_dict(),
            "shards": shards,
        }

    def kill_worker(self, *, shard: int) -> bool:
        """SIGKILL one shard's worker process (ops drill / soak hook).

        The next interaction with the shard notices the corpse and runs
        the normal restart-and-replay recovery.  Returns False when the
        shard has no live process (inline mode, already dead).
        """
        target = self._shards[shard]
        if target.mode == "process" and target.process is not None \
                and target.process.is_alive():
            target.process.kill()
            return True
        return False

    # ------------------------------------------------------------------
    # Telemetry + shutdown
    # ------------------------------------------------------------------
    def _publish_metrics(self) -> None:
        ob = active_obs()
        if ob is None:
            return
        registry = ob.registry
        for shard in self._shards:
            registry.gauge("serve_queue_depth",
                           help="un-acked commands per shard",
                           labels={"shard": str(shard.index)}).set(
                               shard.inflight)
            registry.gauge("serve_journal_entries",
                           help="journaled commands per shard",
                           labels={"shard": str(shard.index)}).set(
                               len(shard.journal))
        for name, value in self.counters.as_dict().items():
            registry.gauge(f"serve_{name}",
                           help="ServeCounters mirror").set(value)

    def close(self) -> None:
        """Stop every worker; the service rejects calls afterwards."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.mode != "process" or shard.process is None:
                continue
            try:
                shard.requests.put(("stop", shard.next_seq()),
                                   timeout=0.5)
            except queue_mod.Full:
                pass
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=5.0)
            shard.process = None

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
