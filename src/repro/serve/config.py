"""Serving knobs of the sharded fleet service."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..configbase import ConfigMixin
from ..stream.fleet import FleetConfig

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig(ConfigMixin):
    """All knobs of :class:`~repro.serve.FleetService`.

    The nested ``fleet`` config parameterizes each shard's private
    :class:`~repro.stream.FleetSessionManager`; its ``checkpoint_dir``
    is overridden per shard (``<checkpoint_dir>/shard-<i>/sessions``)
    when the service-level ``checkpoint_dir`` is set.
    """

    #: Worker count; trucks are placed by ``shard_for(truck_id, N)``.
    num_shards: int = 4
    #: ``"process"`` forks one worker per shard; ``"inline"`` keeps the
    #: managers in-process (deterministic tests, breaker-open fallback).
    backend: str = "process"
    #: Admission control: a shard with this many un-acked commands
    #: rejects further pings (returned to the caller, counted) instead
    #: of queueing without bound.
    queue_high_water: int = 64
    #: Root directory for shard state (sessions + barrier snapshots);
    #: ``None`` disables barriers, so a restarted shard replays its
    #: whole journal from an empty manager.
    checkpoint_dir: str | Path | None = None
    #: Mutating commands per shard between barrier snapshots (only
    #: meaningful with a ``checkpoint_dir``).
    checkpoint_every: int = 64
    #: Seconds to wait for one shard response before the worker is
    #: declared hung and restarted.
    response_timeout_s: float = 30.0
    #: Consecutive restart failures that trip a shard's breaker, and
    #: how long (in restart attempts) it stays open; an open breaker
    #: degrades the shard to the inline backend.
    shard_breaker_failures: int = 3
    shard_breaker_cooldown: int = 8
    #: Per-shard session-manager knobs.
    fleet: FleetConfig = field(default_factory=FleetConfig)

    def __post_init__(self) -> None:
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = Path(self.checkpoint_dir)
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.backend not in ("process", "inline"):
            raise ValueError(
                f"backend must be 'process' or 'inline', "
                f"got {self.backend!r}")
        if self.queue_high_water < 1:
            raise ValueError("queue_high_water must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.response_timeout_s <= 0:
            raise ValueError("response_timeout_s must be positive")
