"""Z-score feature normalization (paper §IV-A, after Cheadle et al. [8])."""

from __future__ import annotations

import numpy as np

__all__ = ["ZScoreNormalizer"]


class ZScoreNormalizer:
    """Column-wise standardization fitted on the training features.

    Columns with (near-)zero variance are passed through centred but
    unscaled, so constant features (e.g. a POI category absent from the
    city) do not blow up.
    """

    _MIN_STD = 1e-8

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "ZScoreNormalizer":
        """Fit on an ``(n, d)`` matrix of raw feature vectors."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError("fit expects a non-empty (n, d) matrix")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std < self._MIN_STD, 1.0, std)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("normalizer is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("normalizer is not fitted")
        return np.asarray(features, dtype=np.float64) * self.std_ + self.mean_

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list[float]]:
        if not self.fitted:
            raise RuntimeError("normalizer is not fitted")
        return {"mean": self.mean_.tolist(), "std": self.std_.tolist()}

    @classmethod
    def from_dict(cls, payload: dict[str, list[float]]) -> "ZScoreNormalizer":
        normalizer = cls()
        normalizer.mean_ = np.asarray(payload["mean"], dtype=np.float64)
        normalizer.std_ = np.asarray(payload["std"], dtype=np.float64)
        return normalizer
