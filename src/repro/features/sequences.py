"""Candidate feature sequences — the f-seq of the paper (§IV-A/B).

A candidate trajectory's feature sequence is segmented into alternating
stay-point and move-point feature subsequences (sp-f-seq / mp-f-seq), which
the hierarchical autoencoder compresses separately and hierarchically.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..model import CandidateTrajectory, MovePoint, StayPoint
from ..nn.precision import active_dtype_name
from ..perf.cache import SegmentFeatureCache
from .extract import FeatureExtractor, subsample_indices
from .normalize import ZScoreNormalizer

__all__ = ["SegmentKind", "CandidateFeatures", "CandidateFeaturizer"]


class SegmentKind(str, Enum):
    STAY = "sp"
    MOVE = "mp"


@dataclass(frozen=True)
class CandidateFeatures:
    """The segmented, normalized f-seq of one candidate trajectory.

    ``segments[k]`` is an ``(L_k, 32)`` float matrix; ``kinds[k]`` tells
    whether it is a sp-f-seq or mp-f-seq.  Segments alternate
    sp, mp, sp, ..., mp, sp.
    """

    pair: tuple[int, int]
    segments: tuple[np.ndarray, ...]
    kinds: tuple[SegmentKind, ...]

    def __post_init__(self) -> None:
        if len(self.segments) != len(self.kinds):
            raise ValueError("segments/kinds length mismatch")
        if not self.segments:
            raise ValueError("empty candidate features")
        expected = [SegmentKind.STAY if i % 2 == 0 else SegmentKind.MOVE
                    for i in range(len(self.kinds))]
        if list(self.kinds) != expected:
            raise ValueError("segments must alternate sp/mp starting with sp")
        if self.kinds[-1] is not SegmentKind.STAY:
            raise ValueError("candidate must end with a stay segment")

    @property
    def stay_segments(self) -> list[np.ndarray]:
        """The SPs-f-seq: all stay-point feature subsequences in order."""
        return [s for s, k in zip(self.segments, self.kinds)
                if k is SegmentKind.STAY]

    @property
    def move_segments(self) -> list[np.ndarray]:
        """The MPs-f-seq: all move-point feature subsequences in order."""
        return [s for s, k in zip(self.segments, self.kinds)
                if k is SegmentKind.MOVE]

    @property
    def num_points(self) -> int:
        return int(sum(len(s) for s in self.segments))

    def flat(self) -> np.ndarray:
        """All feature vectors concatenated (the unsegmented f-seq)."""
        return np.concatenate(self.segments, axis=0)


class CandidateFeaturizer:
    """Build :class:`CandidateFeatures` for candidates of a trajectory.

    ``feature_scale`` rescales z-scored features so nearly all values fall
    inside [-1, 1]: the decompressor's tanh output is range-limited (the
    paper notes the tanh "matches the range of the f-seq"), and without
    the rescale the reconstruction MSE has a high floor.
    """

    def __init__(self, extractor: FeatureExtractor,
                 normalizer: ZScoreNormalizer,
                 feature_scale: float = 1.0 / 3.0,
                 cache: SegmentFeatureCache | None = None) -> None:
        if feature_scale <= 0:
            raise ValueError("feature_scale must be positive")
        self.extractor = extractor
        self.normalizer = normalizer
        self.feature_scale = feature_scale
        #: Optional content-keyed cache of per-segment feature matrices.
        #: ``None`` disables caching; behaviour is identical either way.
        self.cache = cache
        self._context_memo: tuple | None = None
        # Whole-trajectory normalized feature matrices, memoized by object
        # identity + featurization context.  Normalization is elementwise,
        # so slicing rows out of the full transformed matrix is
        # bit-identical to transforming each segment's rows separately —
        # but costs one array op per trajectory instead of one per segment.
        self._normalized_memo: \
            OrderedDict[int, tuple[object, bytes, np.ndarray]] = OrderedDict()

    # ------------------------------------------------------------------
    def fit_normalizer(self, trajectories) -> ZScoreNormalizer:
        """Fit the z-score normalizer on full training trajectories."""
        blocks = [self.extractor.trajectory_features(tr)
                  for tr in trajectories]
        if not blocks:
            raise ValueError("no trajectories to fit on")
        self.normalizer.fit(np.concatenate(blocks, axis=0))
        return self.normalizer

    # ------------------------------------------------------------------
    def context_fingerprint(self) -> bytes:
        """Digest of everything segment features depend on beyond the segment.

        Covers the normalizer statistics, the feature scale, and the
        extractor's configuration (POI radius, POI on/off, subsampling
        cap).  Refitting the normalizer replaces its ``mean_``/``std_``
        arrays wholesale, which changes this fingerprint and thereby
        silently invalidates every stale cache entry.  Memoized by array
        identity (references are held, so ids stay valid).
        """
        mean = self.normalizer.mean_
        std = self.normalizer.std_
        memo = self._context_memo
        if (memo is not None and memo[0] is mean and memo[1] is std
                and memo[2] == self.feature_scale):
            return memo[3]
        cfg = self.extractor.config
        hasher = hashlib.blake2b(digest_size=16)
        if mean is not None:
            hasher.update(np.ascontiguousarray(mean).tobytes())
            hasher.update(np.ascontiguousarray(std).tobytes())
        hasher.update(repr((self.feature_scale, cfg.poi_radius_m,
                            cfg.max_segment_len, cfg.use_poi)).encode())
        digest = hasher.digest()
        self._context_memo = (mean, std, self.feature_scale, digest)
        return digest

    def segment_features(self, segment: StayPoint | MovePoint) -> np.ndarray:
        """Z-scored, rescaled ``(L, F)`` feature matrix of one segment.

        This is the public hot-path entry point: the pipeline, the
        baselines and the cache all route through it.  With a cache
        attached, each (trajectory content, segment range, featurization
        context, compute dtype) tuple is computed once; cached matrices
        are returned read-only.  Under an active float32 inference
        policy the matrix is cast once here — downstream padding and
        kernels then stay in float32 without per-call casts — and lives
        under a dtype-disjoint cache key.
        """
        dtype_name = active_dtype_name()
        cache = self.cache
        if cache is None:
            value = self._compute_segment_features(segment)
            if dtype_name != "float64":
                value = value.astype(dtype_name)
            return value
        context = self.context_fingerprint()
        hit = cache.get(segment, context, dtype_name)
        if hit is not None:
            return hit  # type: ignore[return-value]
        value = self._compute_segment_features(segment)
        if dtype_name != "float64":
            value = value.astype(dtype_name)
        value.setflags(write=False)
        cache.put(segment, context, value, dtype_name)
        return value

    #: Backwards-compatible alias of :meth:`segment_features` (the method
    #: was private before the throughput layer made it a public contract).
    _segment_features = segment_features

    _NORMALIZED_MEMO_MAX = 256

    def _normalized_features(self, trajectory) -> np.ndarray:
        """Normalized, rescaled feature matrix of a whole trajectory."""
        context = self.context_fingerprint()
        key = id(trajectory)
        memo = self._normalized_memo
        hit = memo.get(key)
        if hit is not None and hit[0] is trajectory and hit[1] == context:
            memo.move_to_end(key)
            return hit[2]
        matrix = self.normalizer.transform(
            self.extractor.trajectory_features(trajectory)) \
            * self.feature_scale
        memo[key] = (trajectory, context, matrix)
        while len(memo) > self._NORMALIZED_MEMO_MAX:
            memo.popitem(last=False)
        return matrix

    def _compute_segment_features(self, segment: StayPoint | MovePoint
                                  ) -> np.ndarray:
        indices = subsample_indices(segment.start, segment.end,
                                    self.extractor.config.max_segment_len)
        return self._normalized_features(segment.trajectory)[indices]

    def clear_memos(self) -> None:
        """Drop the per-trajectory normalized-matrix memo (cold benches)."""
        self._normalized_memo.clear()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the normalized-matrix memo: ``id()`` keys mean
        nothing in another process and the matrices rebuild on demand."""
        state = self.__dict__.copy()
        state["_normalized_memo"] = OrderedDict()
        return state

    def featurize(self, candidate: CandidateTrajectory) -> CandidateFeatures:
        """The segmented f-seq of one candidate."""
        segments = []
        kinds = []
        for segment in candidate.segments():
            segments.append(self.segment_features(segment))
            kinds.append(SegmentKind.STAY if isinstance(segment, StayPoint)
                         else SegmentKind.MOVE)
        return CandidateFeatures(pair=candidate.pair,
                                 segments=tuple(segments),
                                 kinds=tuple(kinds))

    def featurize_all(self, candidates) -> list[CandidateFeatures]:
        return [self.featurize(c) for c in candidates]

    def stay_point_features(self, stay_point: StayPoint) -> np.ndarray:
        """Normalized feature sequence of a single stay point.

        Used by the SP-GRU / SP-LSTM baselines, which classify stay points
        in isolation.
        """
        return self.segment_features(stay_point)
