"""Feature extraction — inputs of LEAD component 2 (paper §IV-A).

Each GPS point becomes a 32-dim vector ``[lat, lng, t, poi_1..poi_29]``
(the per-category POI counts within 100 m), z-score normalized over the
training set (DESIGN.md S14).
"""

from .normalize import ZScoreNormalizer
from .extract import (FEATURE_DIM, FeatureConfig, FeatureExtractor,
                      subsample_indices)
from .sequences import CandidateFeatures, CandidateFeaturizer, SegmentKind

__all__ = [
    "ZScoreNormalizer", "FEATURE_DIM", "FeatureConfig", "FeatureExtractor",
    "subsample_indices", "CandidateFeatures", "CandidateFeaturizer",
    "SegmentKind",
]
