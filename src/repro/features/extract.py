"""Per-point feature extraction (paper §IV-A)."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..configbase import ConfigMixin
from ..data.poi import POI_CATEGORIES, POIDatabase
from ..model import Trajectory
from ..perf.cache import CacheStats

__all__ = ["FEATURE_DIM", "FeatureConfig", "FeatureExtractor",
           "subsample_indices"]

#: lat + lng + t + 29 POI category counts.
FEATURE_DIM = 3 + len(POI_CATEGORIES)


@dataclass(frozen=True)
class FeatureConfig(ConfigMixin):
    """Feature extraction knobs.

    ``max_segment_len`` caps the number of GPS points per stay/move
    segment fed to the LSTMs.  The paper runs full-resolution sequences on
    a GPU; on CPU the cap bounds the recurrent step count while keeping the
    sequence's endpoints and overall shape (see DESIGN.md §2).
    """

    poi_radius_m: float = 100.0
    max_segment_len: int = 16
    #: LEAD-NoPoi ablation: zero out the 29 POI columns (the feature
    #: dimension stays 32, matching the paper's zero-padding).
    use_poi: bool = True
    #: Upper bound on the extractor's per-trajectory feature memo
    #: (entries, LRU-evicted).  A day-long fleet run touches far more
    #: distinct trajectory objects than any one detection call reuses,
    #: so an unbounded memo is a slow leak; 0 disables caching.
    trajectory_cache_size: int = 1024

    def __post_init__(self) -> None:
        if self.poi_radius_m <= 0:
            raise ValueError("poi_radius_m must be positive")
        if self.max_segment_len < 2:
            raise ValueError("max_segment_len must be >= 2")
        if self.trajectory_cache_size < 0:
            raise ValueError("trajectory_cache_size must be >= 0")


#: Memo for :func:`subsample_indices`: segment ranges repeat across the
#: candidates of a day (every pair shares stay/move segments), so the
#: same (start, end, max_len) triple recurs constantly on the cold
#: featurization path.  Bounded; cleared wholesale when full.
_SUBSAMPLE_MEMO: dict[tuple[int, int, int], np.ndarray] = {}
_SUBSAMPLE_MEMO_MAX = 8192


def subsample_indices(start: int, end: int, max_len: int) -> np.ndarray:
    """Up to ``max_len`` evenly spaced indices over ``[start, end]``.

    Both endpoints are always included (they anchor a segment to its
    stay points); intermediate indices are unique and sorted.  Returned
    arrays are memoized and read-only — copy before mutating.
    """
    if end < start:
        raise ValueError("end must be >= start")
    key = (start, end, max_len)
    cached = _SUBSAMPLE_MEMO.get(key)
    if cached is not None:
        return cached
    count = end - start + 1
    if count <= max_len:
        indices = np.arange(start, end + 1)
    else:
        # Bit-identical to np.linspace(start, end, num=max_len) for
        # scalar endpoints, minus its dispatch overhead.
        grid = np.arange(max_len, dtype=np.float64)
        grid *= (end - start) / (max_len - 1)
        grid += start
        grid[-1] = end
        indices = grid.round().astype(np.int64)
        # Rounded output is already sorted, so a neighbour-diff mask
        # dedups without np.unique's sort; spacing above one index
        # (count >= 2 * max_len) cannot collide at all.
        if count < 2 * max_len:
            indices = indices[np.concatenate(
                ([True], indices[1:] != indices[:-1]))]
    indices.setflags(write=False)
    if len(_SUBSAMPLE_MEMO) >= _SUBSAMPLE_MEMO_MAX:
        _SUBSAMPLE_MEMO.clear()
    _SUBSAMPLE_MEMO[key] = indices
    return indices


class FeatureExtractor:
    """Turn trajectory points into raw 32-dim feature vectors.

    The extractor memoizes POI counts per trajectory, because the same GPS
    points appear in many candidate trajectories of the same day.  The
    memo is LRU-bounded (``FeatureConfig.trajectory_cache_size``): the
    hot set of one detection call stays resident, while long fleet runs
    cannot grow it without bound.
    """

    def __init__(self, pois: POIDatabase,
                 config: FeatureConfig | None = None) -> None:
        self.pois = pois
        self.config = config or FeatureConfig()
        # The cache stores (trajectory, features): holding a reference to
        # the trajectory keeps its id() from being reused by a new object.
        # Insertion order is recency order (moved on hit, evicted from
        # the front).
        self._cache: OrderedDict[int, tuple[Trajectory, np.ndarray]] \
            = OrderedDict()
        # Hit/miss/eviction counts live on the shared metrics registry
        # (repro.obs), same as SegmentFeatureCache and the weight-view
        # LRU; ``stats`` is the per-instance view.
        self.stats = CacheStats(name="trajectory_features")

    def trajectory_features(self, trajectory: Trajectory) -> np.ndarray:
        """Raw ``(len(trajectory), 32)`` feature matrix (memoized)."""
        key = id(trajectory)
        cached = self._cache.get(key)
        if cached is not None and cached[0] is trajectory:
            self._cache.move_to_end(key)
            self.stats.record_hit()
            return cached[1]
        self.stats.record_miss()
        if self.config.use_poi:
            poi_counts = self.pois.count_categories_batch(
                trajectory.lats, trajectory.lngs,
                radius_m=self.config.poi_radius_m)
        else:
            poi_counts = np.zeros((len(trajectory), FEATURE_DIM - 3))
        features = np.column_stack([trajectory.lats, trajectory.lngs,
                                    trajectory.ts, poi_counts])
        capacity = self.config.trajectory_cache_size
        if capacity > 0:
            self._cache[key] = (trajectory, features)
            while len(self._cache) > capacity:
                self._cache.popitem(last=False)
                self.stats.record_eviction()
        return features

    def point_features(self, trajectory: Trajectory,
                       indices: np.ndarray) -> np.ndarray:
        """Raw features of selected points, shape ``(len(indices), 32)``."""
        return self.trajectory_features(trajectory)[np.asarray(indices)]

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the memo: ``id()`` keys are meaningless in
        another process, and shipping every cached feature matrix to a
        worker would dwarf the task payloads it rides along with.
        Workers rebuild entries on demand — content-identical by
        construction."""
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        return state
