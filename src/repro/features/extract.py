"""Per-point feature extraction (paper §IV-A)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.poi import POI_CATEGORIES, POIDatabase
from ..model import Trajectory

__all__ = ["FEATURE_DIM", "FeatureConfig", "FeatureExtractor",
           "subsample_indices"]

#: lat + lng + t + 29 POI category counts.
FEATURE_DIM = 3 + len(POI_CATEGORIES)


@dataclass(frozen=True)
class FeatureConfig:
    """Feature extraction knobs.

    ``max_segment_len`` caps the number of GPS points per stay/move
    segment fed to the LSTMs.  The paper runs full-resolution sequences on
    a GPU; on CPU the cap bounds the recurrent step count while keeping the
    sequence's endpoints and overall shape (see DESIGN.md §2).
    """

    poi_radius_m: float = 100.0
    max_segment_len: int = 16
    #: LEAD-NoPoi ablation: zero out the 29 POI columns (the feature
    #: dimension stays 32, matching the paper's zero-padding).
    use_poi: bool = True

    def __post_init__(self) -> None:
        if self.poi_radius_m <= 0:
            raise ValueError("poi_radius_m must be positive")
        if self.max_segment_len < 2:
            raise ValueError("max_segment_len must be >= 2")


def subsample_indices(start: int, end: int, max_len: int) -> np.ndarray:
    """Up to ``max_len`` evenly spaced indices over ``[start, end]``.

    Both endpoints are always included (they anchor a segment to its
    stay points); intermediate indices are unique and sorted.
    """
    if end < start:
        raise ValueError("end must be >= start")
    count = end - start + 1
    if count <= max_len:
        return np.arange(start, end + 1)
    return np.unique(np.linspace(start, end, num=max_len).round()
                     .astype(np.int64))


class FeatureExtractor:
    """Turn trajectory points into raw 32-dim feature vectors.

    The extractor memoizes POI counts per trajectory, because the same GPS
    points appear in many candidate trajectories of the same day.
    """

    def __init__(self, pois: POIDatabase,
                 config: FeatureConfig | None = None) -> None:
        self.pois = pois
        self.config = config or FeatureConfig()
        # The cache stores (trajectory, features): holding a reference to
        # the trajectory keeps its id() from being reused by a new object.
        self._cache: dict[int, tuple[Trajectory, np.ndarray]] = {}

    def trajectory_features(self, trajectory: Trajectory) -> np.ndarray:
        """Raw ``(len(trajectory), 32)`` feature matrix (memoized)."""
        key = id(trajectory)
        cached = self._cache.get(key)
        if cached is not None and cached[0] is trajectory:
            return cached[1]
        if self.config.use_poi:
            poi_counts = self.pois.count_categories_batch(
                trajectory.lats, trajectory.lngs,
                radius_m=self.config.poi_radius_m)
        else:
            poi_counts = np.zeros((len(trajectory), FEATURE_DIM - 3))
        features = np.column_stack([trajectory.lats, trajectory.lngs,
                                    trajectory.ts, poi_counts])
        self._cache[key] = (trajectory, features)
        return features

    def point_features(self, trajectory: Trajectory,
                       indices: np.ndarray) -> np.ndarray:
        """Raw features of selected points, shape ``(len(indices), 32)``."""
        return self.trajectory_features(trajectory)[np.asarray(indices)]

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle without the memo: ``id()`` keys are meaningless in
        another process, and shipping every cached feature matrix to a
        worker would dwarf the task payloads it rides along with.
        Workers rebuild entries on demand — content-identical by
        construction."""
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state
