"""Circuit breaker: stop hammering a dependency that keeps failing.

The classic closed → open → half-open state machine, tuned for this
repository's determinism discipline: *time* is a logical clock — every
:meth:`CircuitBreaker.allow` call advances it by one — so soak tests
replay identically regardless of wall-clock scheduling.  Callers that
want real time can inject a ``clock`` callable.

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker open.
* **open** — calls are rejected without being attempted (the caller
  falls back: a degraded detector tier, keep-resident instead of spill)
  until ``cooldown`` clock ticks pass.
* **half-open** — one probe call is let through; success closes the
  breaker, failure re-opens it for another cooldown.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..errors import CircuitOpenError
from ..obs.core import obs_event

__all__ = ["CircuitBreaker"]

R = TypeVar("R")


class CircuitBreaker:
    """Guard one dependency with a closed/open/half-open state machine."""

    def __init__(self, name: str = "", failure_threshold: int = 3,
                 cooldown: float = 8.0,
                 clock: Callable[[], float] | None = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._ticks = 0                  # logical clock (default mode)
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = -float("inf")
        # Lifetime counters, surfaced through stats().
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.rejections = 0
        self.probes = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return float(self._ticks)

    def allow(self) -> bool:
        """May the next call proceed?  Advances the logical clock.

        In the open state this flips to half-open (and admits one
        probe) once the cooldown has elapsed; otherwise the call is
        rejected and counted.
        """
        self._ticks += 1
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._now() - self._opened_at >= self.cooldown:
                self._transition("half_open")
                self.probes += 1
                return True
            self.rejections += 1
            return False
        # half_open: one probe is already in flight; hold the line.
        self.rejections += 1
        return False

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if (self.state == "half_open"
                or self.consecutive_failures >= self.failure_threshold):
            if self.state != "open":
                self.trips += 1
                self._transition("open")
            self._opened_at = self._now()

    def _transition(self, new_state: str) -> None:
        """Change state, leaving a structured audit event when
        telemetry is active."""
        obs_event("breaker.transition", name=self.name,
                  from_state=self.state, to_state=new_state,
                  consecutive_failures=self.consecutive_failures)
        self.state = new_state

    # ------------------------------------------------------------------
    def call(self, fn: Callable[..., R], *args, **kwargs) -> R:
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without calling
        ``fn`` when the breaker rejects; records success/failure
        otherwise (every exception counts as a failure and re-raises).
        """
        if not self.allow():
            raise CircuitOpenError(self.name, self.consecutive_failures)
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """JSON-safe snapshot for ledgers and ``stats()`` payloads."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "trips": self.trips,
            "rejections": self.rejections,
            "probes": self.probes,
        }
