"""Supervised execution: retries, circuit breakers, dead letters.

PR 1 made individual components resilient (typed errors, atomic IO,
degradation tiers); PR 4 scaled detection to a fleet of concurrent
sessions.  This package supplies the *supervision* glue between them —
the policies that decide what happens when a component fails anyway:

* :class:`~repro.supervise.retry.RetryPolicy` — bounded retries with
  deterministic seeded exponential backoff and per-attempt timeouts,
  re-raising the original exception when the budget is spent;
* :class:`~repro.supervise.breaker.CircuitBreaker` — closed/open/half-
  open around detectors and checkpoint IO, so a persistently failing
  dependency degrades once instead of failing per call;
* :class:`~repro.supervise.quarantine.Quarantine` — a deterministic
  dead-letter store capturing poison inputs with the triggering
  exception and replay metadata (atomic JSON via :mod:`repro.io`).

The consumers are :class:`repro.stream.FleetSessionManager` (per-session
fault isolation), :func:`repro.perf.parallel.parallel_map` (crashed /
hung worker recovery), and :class:`repro.nn.checkpoint.CheckpointManager`
(transient-IO retry, corruption breaker).  :mod:`repro.chaos` proves all
of it under deterministic fault injection.
"""

from .breaker import CircuitBreaker
from .quarantine import Quarantine, QuarantineEntry
from .retry import RetryCounters, RetryPolicy

__all__ = [
    "RetryPolicy", "RetryCounters",
    "CircuitBreaker",
    "Quarantine", "QuarantineEntry",
]
