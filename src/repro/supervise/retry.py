"""Bounded retries with deterministic, seeded exponential backoff.

A :class:`RetryPolicy` is a frozen value object describing *how* to
retry — how many attempts, which exceptions are considered transient,
how long to back off between attempts, and (optionally) how long a
single attempt may run.  The backoff schedule is exponential with
multiplicative jitter drawn from a :class:`numpy.random.SeedSequence`,
so two processes running the same policy with the same ``seed`` and
``key`` sleep for bit-identical durations — chaos soaks replay exactly.

The policy deliberately re-raises the *original* exception once the
attempt budget is spent: call sites keep their existing ``except
OSError`` / ``except ArtifactCorruptedError`` handling, and the retry
layer stays invisible to the type system of failures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from ..configbase import ConfigMixin
from ..obs.core import obs_event

__all__ = ["RetryPolicy", "RetryCounters"]

R = TypeVar("R")

#: Stable spawn-key namespace so per-call-site streams never collide
#: with the task streams of :func:`repro.perf.parallel.spawn_rng`.
_JITTER_NAMESPACE = 0x52455452  # "RETR"


@dataclass
class RetryCounters:
    """Mutable tally of what a policy's calls actually did."""

    calls: int = 0          # top-level call() invocations
    retries: int = 0        # extra attempts beyond the first
    timeouts: int = 0       # attempts abandoned by the attempt timeout
    exhausted: int = 0      # calls that failed every attempt

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _AttemptTimeout(Exception):
    """Internal marker: an attempt exceeded ``timeout_s``."""


@dataclass(frozen=True)
class RetryPolicy(ConfigMixin):
    """How to retry one logical operation.

    ``max_attempts`` bounds total tries (1 = no retry).  Backoff before
    attempt ``k`` (k >= 2) is ``backoff_base_s * backoff_factor**(k-2)``
    capped at ``max_backoff_s``, scaled by a jitter factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]`` out of a seeded stream
    keyed by ``(seed, key)`` — deterministic, schedule-independent.
    ``timeout_s`` bounds a single attempt's wall clock; the attempt's
    result is abandoned (and counted as a timeout) when it runs over.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    timeout_s: float | None = None
    # Exception types and live tallies have no JSON form; both stay off
    # the config dict surface (see repro.configbase).
    retry_on: tuple[type[BaseException], ...] = field(
        default=(OSError,), metadata={"config_exclude": True})
    counters: RetryCounters = field(default_factory=RetryCounters,
                                    compare=False,
                                    metadata={"config_exclude": True})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    # ------------------------------------------------------------------
    def delays(self, key: int = 0) -> list[float]:
        """The full deterministic backoff schedule for one call site.

        ``delays(key)[k]`` is the sleep before attempt ``k + 2``; the
        list is empty when the policy never retries.
        """
        rng = np.random.default_rng(np.random.SeedSequence(
            self.seed, spawn_key=(_JITTER_NAMESPACE, int(key))))
        out: list[float] = []
        for attempt in range(self.max_attempts - 1):
            base = min(self.backoff_base_s * self.backoff_factor ** attempt,
                       self.max_backoff_s)
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(base * factor)
        return out

    # ------------------------------------------------------------------
    def call(self, fn: Callable[..., R], *args, key: int = 0,
             sleep: Callable[[float], None] = time.sleep,
             retry_on: tuple[type[BaseException], ...] | None = None,
             **kwargs) -> R:
        """Run ``fn(*args, **kwargs)`` under this policy.

        Retries only the exception types in ``retry_on`` (defaulting to
        the policy's); anything else propagates immediately.  When every
        attempt fails, the *last* exception is re-raised unchanged, so
        existing handlers keep working.  ``key`` selects the jitter
        stream (use a stable per-call-site integer); ``sleep`` is
        injectable for tests.
        """
        transient = self.retry_on if retry_on is None else retry_on
        delays = self.delays(key)
        self.counters.calls += 1
        for attempt in range(self.max_attempts):
            try:
                return self._attempt(fn, args, kwargs)
            except _AttemptTimeout as exc:
                self.counters.timeouts += 1
                failure: BaseException = TimeoutError(str(exc))
            except transient as exc:
                failure = exc
            if attempt + 1 >= self.max_attempts:
                self.counters.exhausted += 1
                obs_event("retry.exhausted", key=int(key),
                          attempts=self.max_attempts, error=str(failure))
                raise failure
            self.counters.retries += 1
            obs_event("retry.attempt", key=int(key), attempt=attempt + 2,
                      error=str(failure))
            sleep(delays[attempt])
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, fn: Callable[..., R], args, kwargs) -> R:
        """One attempt, bounded by ``timeout_s`` when set.

        The timeout runs ``fn`` on a daemon thread and abandons it when
        the clock runs out — suitable for the pure, side-effect-bounded
        operations this repository retries (IO syscalls, detector
        forwards).  A truly stuck attempt leaks its thread; process
        workers get real cancellation in :func:`repro.perf.parallel.
        parallel_map` instead.
        """
        if self.timeout_s is None:
            return fn(*args, **kwargs)
        box: list = []

        def runner() -> None:
            try:
                box.append(("ok", fn(*args, **kwargs)))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box.append(("err", exc))

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        thread.join(self.timeout_s)
        if not box:
            raise _AttemptTimeout(
                f"attempt exceeded {self.timeout_s:g}s")
        status, value = box[0]
        if status == "err":
            raise value
        return value

    # ------------------------------------------------------------------
    def wrap(self, fn: Callable[..., R], key: int = 0,
             **call_kwargs) -> Callable[..., R]:
        """Decorator form: ``policy.wrap(fn)`` retries every call."""
        def wrapped(*args, **kwargs):
            return self.call(fn, *args, key=key, **call_kwargs, **kwargs)
        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped
