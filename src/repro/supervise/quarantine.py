"""Dead-letter store for poison inputs: capture, don't crash.

When supervision gives up on an input — a session whose detection fails
every retry, a checkpoint that will not parse — the input's identity,
the triggering exception, and enough *replay metadata* to reconstruct
and re-run it offline are recorded in a :class:`Quarantine`.  The rest
of the fleet proceeds; an operator (or a test) can later replay exactly
what was captured.

Entries are deterministic: they carry a sequence number, not a wall
clock, so a seeded chaos soak produces the same quarantine ledger twice.
With a ``directory`` configured, each entry is also persisted as one
atomic JSON file (:mod:`repro.io`), surviving the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import quote

from ..io import atomic_write_json, load_checked_json
from ..obs.core import obs_event

__all__ = ["QuarantineEntry", "Quarantine"]


@dataclass(frozen=True)
class QuarantineEntry:
    """One captured poison input."""

    seq: int                        # position in this store's ledger
    key: str                        # stable identity, e.g. "truck-3|d0"
    stage: str                      # which supervised stage gave up
    error_type: str                 # exception class name
    error: str                      # str(exception)
    attempts: int = 1               # how many tries supervision spent
    metadata: dict = field(default_factory=dict)   # replay payload

    def to_dict(self) -> dict:
        return {"seq": self.seq, "key": self.key, "stage": self.stage,
                "error_type": self.error_type, "error": self.error,
                "attempts": self.attempts, "metadata": self.metadata}

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineEntry":
        return cls(seq=int(payload["seq"]), key=str(payload["key"]),
                   stage=str(payload["stage"]),
                   error_type=str(payload["error_type"]),
                   error=str(payload["error"]),
                   attempts=int(payload.get("attempts", 1)),
                   metadata=dict(payload.get("metadata", {})))


class Quarantine:
    """Ordered dead-letter store, optionally persisted per entry."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: list[QuarantineEntry] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[QuarantineEntry]:
        return list(self._entries)

    def keys(self) -> list[str]:
        return [entry.key for entry in self._entries]

    def __contains__(self, key: str) -> bool:
        return any(entry.key == key for entry in self._entries)

    def get(self, key: str) -> QuarantineEntry | None:
        """The *latest* entry recorded under ``key`` (or ``None``)."""
        for entry in reversed(self._entries):
            if entry.key == key:
                return entry
        return None

    # ------------------------------------------------------------------
    def record(self, key: str, stage: str, exc: BaseException, *,
               attempts: int = 1,
               metadata: dict | None = None) -> QuarantineEntry:
        """Capture one poison input; returns the ledger entry."""
        entry = QuarantineEntry(
            seq=len(self._entries), key=str(key), stage=str(stage),
            error_type=type(exc).__name__, error=str(exc),
            attempts=int(attempts), metadata=dict(metadata or {}))
        self._entries.append(entry)
        obs_event("quarantine.recorded", key=entry.key, stage=entry.stage,
                  error_type=entry.error_type, error=entry.error,
                  seq=entry.seq)
        if self.directory is not None:
            name = quote(f"{entry.seq:06d}_{entry.key}", safe="")
            try:
                atomic_write_json(self.directory / f"{name}.json",
                                  entry.to_dict(), indent=2)
            except OSError:
                # The dead-letter disk being dead too must not take the
                # fleet down; the in-memory ledger still has the entry.
                pass
        return entry

    # ------------------------------------------------------------------
    def as_dicts(self) -> list[dict]:
        """The whole ledger, JSON-safe and deterministic."""
        return [entry.to_dict() for entry in self._entries]

    def summary(self) -> dict:
        """Compact stats() payload: totals by stage plus the keys."""
        by_stage: dict[str, int] = {}
        for entry in self._entries:
            by_stage[entry.stage] = by_stage.get(entry.stage, 0) + 1
        return {"entries": len(self._entries), "by_stage": by_stage,
                "keys": self.keys()}

    @classmethod
    def load(cls, directory: str | Path) -> "Quarantine":
        """Rehydrate a persisted quarantine directory (sorted by seq)."""
        store = cls(directory)
        entries = []
        for path in sorted(Path(directory).glob("*.json")):
            payload = load_checked_json(path)
            if isinstance(payload, dict) and "seq" in payload:
                entries.append(QuarantineEntry.from_dict(payload))
        store._entries = sorted(entries, key=lambda e: e.seq)
        return store
