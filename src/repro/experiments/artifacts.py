"""Serialization helpers for cached experiment artifacts."""

from __future__ import annotations

import json
from pathlib import Path

from ..eval import DetectionRecord
from ..nn import TrainingHistory

__all__ = ["save_records", "load_records", "save_histories",
           "load_histories", "save_json", "load_json"]


def save_json(path: Path, payload: object) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_json(path: Path) -> object:
    return json.loads(path.read_text())


def save_records(path: Path, records: list[DetectionRecord]) -> Path:
    return save_json(path, [
        {
            "num_stay_points": r.num_stay_points,
            "true_pair": list(r.true_pair),
            "detected_pair": list(r.detected_pair),
            "inference_time_s": r.inference_time_s,
        }
        for r in records
    ])


def load_records(path: Path) -> list[DetectionRecord]:
    return [
        DetectionRecord(
            num_stay_points=int(r["num_stay_points"]),
            true_pair=tuple(r["true_pair"]),
            detected_pair=tuple(r["detected_pair"]),
            inference_time_s=float(r["inference_time_s"]),
        )
        for r in load_json(path)
    ]


def save_histories(path: Path, histories: list[TrainingHistory]) -> Path:
    return save_json(path, [h.to_dict() for h in histories])


def load_histories(path: Path) -> list[TrainingHistory]:
    return [TrainingHistory.from_dict(h) for h in load_json(path)]
