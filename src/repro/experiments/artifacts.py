"""Serialization helpers for cached experiment artifacts.

All writes are atomic (a crash never leaves a truncated cache file) and
all reads surface damage as a typed
:class:`~repro.errors.ArtifactCorruptedError` so the experiment runner
can decide to retrain/re-evaluate instead of dying inside ``json``.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ArtifactCorruptedError
from ..eval import DetectionRecord
from ..io import atomic_write_json, load_checked_json
from ..nn import TrainingHistory

__all__ = ["save_records", "load_records", "save_histories",
           "load_histories", "save_json", "load_json"]


def save_json(path: Path, payload: object) -> Path:
    """Atomically write a JSON artifact."""
    return atomic_write_json(path, payload)


def load_json(path: Path) -> object:
    """Read a JSON artifact; damage raises ``ArtifactCorruptedError``."""
    return load_checked_json(path)


def save_records(path: Path, records: list[DetectionRecord]) -> Path:
    return save_json(path, [
        {
            "num_stay_points": r.num_stay_points,
            "true_pair": list(r.true_pair),
            "detected_pair": list(r.detected_pair),
            "inference_time_s": r.inference_time_s,
        }
        for r in records
    ])


def load_records(path: Path) -> list[DetectionRecord]:
    payload = load_json(path)
    try:
        return [
            DetectionRecord(
                num_stay_points=int(r["num_stay_points"]),
                true_pair=tuple(r["true_pair"]),
                detected_pair=tuple(r["detected_pair"]),
                inference_time_s=float(r["inference_time_s"]),
            )
            for r in payload
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, f"malformed detection records: {exc}") from exc


def save_histories(path: Path, histories: list[TrainingHistory]) -> Path:
    return save_json(path, [h.to_dict() for h in histories])


def load_histories(path: Path) -> list[TrainingHistory]:
    payload = load_json(path)
    try:
        return [TrainingHistory.from_dict(h) for h in payload]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, f"malformed training histories: {exc}") from exc
