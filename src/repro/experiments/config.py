"""Experiment scales and the artifact cache location.

Every benchmark regenerates a table/figure from trained artifacts; training
is expensive on one CPU core, so artifacts are cached on disk, keyed by the
experiment scale.  The scale is selected with the ``REPRO_SCALE``
environment variable:

* ``default`` — the reported configuration (tens of minutes to train).
* ``small``   — minutes; orderings usually hold but noisier.
* ``tiny``    — seconds; for smoke tests only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..data import DatasetConfig, SimulatorConfig, WorldConfig
from ..detection import DetectorTrainingConfig
from ..encoding import AutoencoderTrainingConfig
from ..pipeline import LEADConfig

__all__ = ["ExperimentConfig", "get_experiment_config", "artifact_root"]


def artifact_root() -> Path:
    """Directory holding cached datasets, weights, and records."""
    override = os.environ.get("REPRO_ARTIFACTS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".artifacts"


@dataclass
class ExperimentConfig:
    """Everything a full experiment needs, at one scale."""

    name: str
    dataset: DatasetConfig
    lead: LEADConfig
    sp_nn_epochs: int = 10
    seed: int = 7

    @property
    def cache_dir(self) -> Path:
        return artifact_root() / self.name


def _default_scale() -> ExperimentConfig:
    dataset = DatasetConfig(num_trajectories=420, num_trucks=185, seed=7,
                            world=WorldConfig(seed=7),
                            sim=SimulatorConfig())
    lead = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=5, learning_rate=3e-3, batch_size=16, patience=3,
            max_samples_per_epoch=1200, seed=7),
        detector_training=DetectorTrainingConfig(
            epochs=16, learning_rate=3e-3, batch_size=8, patience=4, seed=7),
        max_autoencoder_samples=None,
        seed=7)
    return ExperimentConfig("default", dataset, lead, sp_nn_epochs=10)


def _small_scale() -> ExperimentConfig:
    dataset = DatasetConfig(num_trajectories=110, num_trucks=48, seed=7,
                            world=WorldConfig(seed=7),
                            sim=SimulatorConfig())
    lead = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=6, learning_rate=3e-3, batch_size=16, patience=3,
            max_samples_per_epoch=600, seed=7),
        detector_training=DetectorTrainingConfig(
            epochs=14, learning_rate=3e-3, batch_size=8, patience=5, seed=7),
        max_autoencoder_samples=None,
        seed=7)
    return ExperimentConfig("small", dataset, lead, sp_nn_epochs=6)


def _tiny_scale() -> ExperimentConfig:
    dataset = DatasetConfig(num_trajectories=18, num_trucks=8, seed=7,
                            world=WorldConfig(seed=7),
                            sim=SimulatorConfig())
    lead = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=2, learning_rate=3e-3, batch_size=8, patience=3,
            max_samples_per_epoch=40, seed=7),
        detector_training=DetectorTrainingConfig(
            epochs=2, learning_rate=3e-3, batch_size=4, patience=4, seed=7),
        max_autoencoder_samples=80,
        seed=7)
    return ExperimentConfig("tiny", dataset, lead, sp_nn_epochs=2)


_SCALES = {
    "default": _default_scale,
    "small": _small_scale,
    "tiny": _tiny_scale,
}


def get_experiment_config(scale: str | None = None) -> ExperimentConfig:
    """The experiment configuration for a scale (env: ``REPRO_SCALE``)."""
    scale = scale or os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[scale]()
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)}") from None
