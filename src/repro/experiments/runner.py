"""Experiment runner: trains, caches, and evaluates every method.

Each function is idempotent — it loads cached artifacts when present and
trains/evaluates otherwise.  The benchmark files under ``benchmarks/`` are
thin wrappers over these functions.

Variant economics on one CPU core (see DESIGN.md):

* LEAD-NoFor / LEAD-NoBac need no training of their own — the paper trains
  the two detectors *separately*, so dropping one at inference time is the
  exact ablation;
* LEAD-NoGro reuses LEAD's normalizer and autoencoder and trains only the
  per-candidate MLP;
* LEAD-NoPoi / LEAD-NoSel / LEAD-NoHie are trained end to end.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from ..baselines import SPNNDetector, SPNNTrainingConfig, SPRDetector
from ..data import HCTDataset, SyntheticWorld, generate_dataset
from ..errors import ArtifactCorruptedError, CircuitOpenError
from ..supervise import CircuitBreaker, RetryPolicy
from ..eval import DetectionRecord, evaluate_detector, prepare_test_set
from ..features import ZScoreNormalizer
from ..nn import TrainingHistory, load_module, save_module
from ..pipeline import LEAD, variant_config
from ..processing import ProcessedTrajectory
from .artifacts import (load_histories, load_records, save_histories,
                        save_records)
from .config import ExperimentConfig, get_experiment_config

__all__ = ["Experiment", "get_experiment_config"]

#: Variants that require no extra training (see module docstring).
_INFERENCE_VARIANTS = {"LEAD-NoFor": "backward", "LEAD-NoBac": "forward"}


class Experiment:
    """Owns a world, a dataset split, and the artifact cache for a scale."""

    def __init__(self, config: ExperimentConfig | None = None,
                 retrain_if_corrupt: bool = False) -> None:
        self.config = config or get_experiment_config()
        #: Default policy when a cached artifact fails integrity checks:
        #: raise (False) or discard-and-retrain (True).
        self.retrain_if_corrupt = retrain_if_corrupt
        #: Transient-IO retry for every cached-artifact read (flaky NFS,
        #: interrupted syscalls); corruption is NOT retried — a bad hash
        #: is deterministic, so it surfaces immediately.
        self.io_retry = RetryPolicy(max_attempts=3, backoff_base_s=0.05)
        #: Trips after repeated *corrupt* cache loads: a cache directory
        #: that keeps serving garbage stops being consulted, and runs go
        #: straight to retraining (or a typed CircuitOpenError).
        self.corruption_breaker = CircuitBreaker("artifact-cache",
                                                 failure_threshold=3,
                                                 cooldown=16)
        self.cache = self.config.cache_dir
        self.cache.mkdir(parents=True, exist_ok=True)
        self.world = SyntheticWorld(self.config.dataset.world)
        self._dataset: HCTDataset | None = None
        self._splits: tuple[HCTDataset, HCTDataset, HCTDataset] | None = None
        self._leads: dict[str, LEAD] = {}
        self._test_sets: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Dataset
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> HCTDataset:
        if self._dataset is None:
            path = self.cache / "dataset.json.gz"
            if path.exists():
                try:
                    self._dataset = self.io_retry.call(HCTDataset.load,
                                                       path)
                except (OSError, ValueError, KeyError, EOFError) as exc:
                    raise ArtifactCorruptedError(
                        path, f"cached dataset unreadable: {exc}; delete "
                        "it to regenerate") from exc
            else:
                self._dataset = generate_dataset(self.config.dataset,
                                                 world=self.world)
                self._dataset.save(path)
        return self._dataset

    @property
    def splits(self) -> tuple[HCTDataset, HCTDataset, HCTDataset]:
        if self._splits is None:
            self._splits = self.dataset.split_by_truck((8, 1, 1),
                                                       seed=self.config.seed)
        return self._splits

    # ------------------------------------------------------------------
    # LEAD variants
    # ------------------------------------------------------------------
    def lead_variant(self, name: str = "LEAD", verbose: bool = False,
                     retrain_if_corrupt: bool | None = None) -> LEAD:
        """A trained LEAD variant, loading cached weights when available.

        Cached weights are checksum-verified; a damaged artifact raises
        :class:`ArtifactCorruptedError` naming the broken file, or — with
        ``retrain_if_corrupt`` — is discarded and retrained.  Training
        itself checkpoints every epoch under ``<cache>/checkpoints/``,
        so a crashed run retrains only the epochs it never finished.
        """
        if retrain_if_corrupt is None:
            retrain_if_corrupt = self.retrain_if_corrupt
        if name in _INFERENCE_VARIANTS:
            return self.lead_variant("LEAD", verbose=verbose,
                                     retrain_if_corrupt=retrain_if_corrupt)
        if name in self._leads:
            return self._leads[name]
        cfg = variant_config(name, self.config.lead)
        model = LEAD(self.world.pois, cfg)
        directory = self.cache / "lead" / name
        if (directory / "state.json").exists():
            if not self.corruption_breaker.allow():
                # The cache keeps serving corrupt artifacts; stop
                # consulting it until the breaker cools down.
                if not retrain_if_corrupt:
                    raise CircuitOpenError(
                        self.corruption_breaker.name,
                        self.corruption_breaker.consecutive_failures)
                shutil.rmtree(directory, ignore_errors=True)
            else:
                try:
                    self.io_retry.call(model.load, directory)
                except (ArtifactCorruptedError, FileNotFoundError):
                    self.corruption_breaker.record_failure()
                    if not retrain_if_corrupt:
                        raise
                    shutil.rmtree(directory, ignore_errors=True)
                    model = LEAD(self.world.pois, cfg)  # discard partial
                else:
                    self.corruption_breaker.record_success()
                    self._leads[name] = model
                    return model
        checkpoint_dir = self.cache / "checkpoints" / name
        train, _, _ = self.splits
        if name == "LEAD-NoGro":
            self._seed_nogro_from_lead(model, verbose)
            report = model.fit_detectors_only(train.samples, verbose=verbose,
                                              checkpoint_dir=checkpoint_dir)
        else:
            report = model.fit(train.samples, verbose=verbose,
                               checkpoint_dir=checkpoint_dir)
        model.save(directory)
        save_histories(directory / "autoencoder_history.json",
                       [report.autoencoder_history])
        save_histories(directory / "detector_histories.json",
                       report.detector_histories)
        self._leads[name] = model
        return model

    def _seed_nogro_from_lead(self, model: LEAD, verbose: bool) -> None:
        """Copy LEAD's normalizer + autoencoder into the NoGro variant."""
        base = self.lead_variant("LEAD", verbose=verbose)
        model.featurizer.normalizer = ZScoreNormalizer.from_dict(
            base.featurizer.normalizer.to_dict())
        model.autoencoder.load_state_dict(base.autoencoder.state_dict())

    def variant_histories(self, name: str, which: str
                          ) -> list[TrainingHistory]:
        """Cached training-loss histories of a trained variant.

        ``which`` is ``"autoencoder"`` or ``"detector"``.
        """
        self.lead_variant(name)  # ensure trained
        real_name = "LEAD" if name in _INFERENCE_VARIANTS else name
        path = self.cache / "lead" / real_name / f"{which}_histories.json"
        if which == "autoencoder":
            path = self.cache / "lead" / real_name / "autoencoder_history.json"
        return load_histories(path)

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baseline_training_pairs(self) -> list[tuple[ProcessedTrajectory,
                                                    tuple[int, int]]]:
        lead = self.lead_variant("LEAD")
        train, _, _ = self.splits
        return prepare_test_set(train.samples, lead.processor)

    def sp_r(self) -> SPRDetector:
        """The white-list baseline (cheap; rebuilt per run from labels)."""
        detector = SPRDetector()
        train, _, _ = self.splits
        lead = self.lead_variant("LEAD")
        pairs = []
        for sample in train.samples:
            processed = lead.processor.process(sample.trajectory,
                                               sample.label)
            if processed is not None:
                pairs.append((processed, sample.label))
        detector.fit(pairs)
        return detector

    def sp_nn(self, cell: str, verbose: bool = False) -> SPNNDetector:
        """A trained SP-GRU or SP-LSTM baseline (cached weights)."""
        lead = self.lead_variant("LEAD")
        detector = SPNNDetector(
            cell, lead.featurizer,
            SPNNTrainingConfig(epochs=self.config.sp_nn_epochs,
                               seed=self.config.seed))
        path = self.cache / "baselines" / f"sp_{cell}.npz"
        if path.exists() and self.corruption_breaker.allow():
            try:
                self.io_retry.call(load_module, detector.classifier, path)
            except ArtifactCorruptedError:
                self.corruption_breaker.record_failure()
                path.unlink(missing_ok=True)  # retrain below
            else:
                self.corruption_breaker.record_success()
                return detector
        history = detector.fit(self.baseline_training_pairs(),
                               verbose=verbose)
        path.parent.mkdir(parents=True, exist_ok=True)
        save_module(detector.classifier, path)
        save_histories(path.with_suffix(".history.json"), [history])
        return detector

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def test_set(self) -> list[tuple[ProcessedTrajectory, tuple[int, int]]]:
        """The processed, labelled test set (validation + test trucks)."""
        key = "test"
        if key not in self._test_sets:
            lead = self.lead_variant("LEAD")
            _, val, test = self.splits
            self._test_sets[key] = prepare_test_set(
                list(val) + list(test), lead.processor)
        return self._test_sets[key]

    def method_records(self, method: str,
                       verbose: bool = False) -> list[DetectionRecord]:
        """Evaluation records of one method on the test set (cached)."""
        path = self.cache / "records" / f"{method}.json"
        if path.exists():
            try:
                return self.io_retry.call(load_records, path)
            except ArtifactCorruptedError:
                # Records are cheap to regenerate relative to training;
                # discard the damaged cache entry and re-evaluate.
                path.unlink(missing_ok=True)
        detect = self._detect_fn(method, verbose)
        records = evaluate_detector(detect, self.test_set())
        save_records(path, records)
        return records

    def _detect_fn(self, method: str, verbose: bool):
        if method == "SP-R":
            detector = self.sp_r()
            return detector.detect
        if method == "SP-GRU":
            return self.sp_nn("gru", verbose=verbose).detect
        if method == "SP-LSTM":
            return self.sp_nn("lstm", verbose=verbose).detect
        if method in _INFERENCE_VARIANTS:
            lead = self.lead_variant("LEAD", verbose=verbose)
            direction = _INFERENCE_VARIANTS[method]
            return lambda p: lead.detect_processed(p, direction).pair
        lead = self.lead_variant(method, verbose=verbose)
        return lambda p: lead.detect_processed(p).pair

    # ------------------------------------------------------------------
    # Paper artifacts
    # ------------------------------------------------------------------
    def table3(self, verbose: bool = False) -> dict[str, list[DetectionRecord]]:
        """Table III: baselines vs LEAD, accuracy by stay-point bucket."""
        return {m: self.method_records(m, verbose)
                for m in ("SP-R", "SP-GRU", "SP-LSTM", "LEAD")}

    def table4(self, verbose: bool = False) -> dict[str, list[DetectionRecord]]:
        """Table IV: LEAD vs its six ablation variants."""
        methods = ("LEAD-NoPoi", "LEAD-NoSel", "LEAD-NoHie", "LEAD-NoGro",
                   "LEAD-NoFor", "LEAD-NoBac", "LEAD")
        return {m: self.method_records(m, verbose) for m in methods}

    def fig8(self, verbose: bool = False) -> dict[str, list[DetectionRecord]]:
        """Fig. 8: inference time by bucket — same records as Table III."""
        return self.table3(verbose)

    def fig9(self, verbose: bool = False) -> dict[str, list[float]]:
        """Fig. 9: autoencoder MSE curves for LEAD / NoSel / NoHie."""
        out = {}
        for name in ("LEAD", "LEAD-NoSel", "LEAD-NoHie"):
            self.lead_variant(name, verbose=verbose)
            history = self.variant_histories(name, "autoencoder")[0]
            out[f"HA in {name}"] = history.epoch_losses
        return out

    def fig10(self, verbose: bool = False) -> dict[str, list[float]]:
        """Fig. 10: forward/backward detector KLD curves."""
        self.lead_variant("LEAD", verbose=verbose)
        histories = self.variant_histories("LEAD", "detector")
        return {h.name: h.epoch_losses for h in histories}
