"""Experiment harness with a disk artifact cache (DESIGN.md S22)."""

from .config import ExperimentConfig, artifact_root, get_experiment_config
from .runner import Experiment

__all__ = ["ExperimentConfig", "artifact_root", "get_experiment_config",
           "Experiment"]
