"""Trajectory data model (DESIGN.md S6): the paper's Definitions 1-5."""

from .trajectory import GPSPoint, Trajectory
from .staypoint import StayPoint, MovePoint
from .candidate import CandidateTrajectory
from .labels import TimeInterval, LoadedLabel

__all__ = [
    "GPSPoint", "Trajectory", "StayPoint", "MovePoint",
    "CandidateTrajectory", "TimeInterval", "LoadedLabel",
]
