"""Ground-truth labels for loaded trajectories (paper Definition 3).

The simulator (and, in the real deployment, government annotators) marks
*when* the truck loaded and unloaded.  Stay points are only derived later by
the extraction algorithm, so the durable label format is a pair of time
intervals.  After extraction, :meth:`LoadedLabel.to_ordinal_pair` maps the
intervals onto the extracted stay points by maximal temporal overlap,
yielding the ``(i', j')`` pair used for training and accuracy scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .staypoint import StayPoint

__all__ = ["TimeInterval", "LoadedLabel"]


@dataclass(frozen=True)
class TimeInterval:
    """A closed time interval ``[start, end]`` in unix seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def overlap_s(self, other: "TimeInterval") -> float:
        """Length of the intersection with ``other`` (0 if disjoint)."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))

    def contains_t(self, t: float) -> bool:
        return self.start <= t <= self.end

    def to_dict(self) -> dict[str, float]:
        return {"start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, payload: dict[str, float]) -> "TimeInterval":
        return cls(float(payload["start"]), float(payload["end"]))


@dataclass(frozen=True)
class LoadedLabel:
    """Ground truth for one raw trajectory.

    ``loading`` / ``unloading`` are the time intervals of the loading and
    unloading stays; the location fields record where they happened (used
    by the SP-R baseline to build its white list and by the waybill
    example).
    """

    loading: TimeInterval
    unloading: TimeInterval
    loading_lat: float
    loading_lng: float
    unloading_lat: float
    unloading_lng: float

    def __post_init__(self) -> None:
        if self.unloading.start < self.loading.end:
            raise ValueError("unloading must begin after loading ends")

    def to_ordinal_pair(self, stay_points: Sequence[StayPoint]
                        ) -> tuple[int, int] | None:
        """Map the label onto extracted stay points by temporal overlap.

        Returns the 1-based ``(i', j')`` ordinal pair, or ``None`` when
        either interval overlaps no extracted stay point (the extraction
        missed the stay; such samples are dropped from training, mirroring
        the data-cleaning employees perform).
        """
        loading_idx = self._best_overlap(self.loading, stay_points)
        unloading_idx = self._best_overlap(self.unloading, stay_points)
        if loading_idx is None or unloading_idx is None:
            return None
        if loading_idx >= unloading_idx:
            return None
        return (loading_idx, unloading_idx)

    @staticmethod
    def _best_overlap(interval: TimeInterval,
                      stay_points: Sequence[StayPoint]) -> int | None:
        best_ordinal: int | None = None
        best_overlap = 0.0
        for sp in stay_points:
            overlap = interval.overlap_s(
                TimeInterval(sp.arrival_t, sp.departure_t))
            if overlap > best_overlap:
                best_overlap = overlap
                best_ordinal = sp.ordinal
        return best_ordinal

    def to_dict(self) -> dict[str, object]:
        return {
            "loading": self.loading.to_dict(),
            "unloading": self.unloading.to_dict(),
            "loading_lat": self.loading_lat,
            "loading_lng": self.loading_lng,
            "unloading_lat": self.unloading_lat,
            "unloading_lng": self.unloading_lng,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LoadedLabel":
        return cls(
            loading=TimeInterval.from_dict(payload["loading"]),
            unloading=TimeInterval.from_dict(payload["unloading"]),
            loading_lat=float(payload["loading_lat"]),
            loading_lng=float(payload["loading_lng"]),
            unloading_lat=float(payload["unloading_lat"]),
            unloading_lng=float(payload["unloading_lng"]),
        )
