"""Stay points and move points (paper Definitions 2 and 5)."""

from __future__ import annotations

from dataclasses import dataclass

from .trajectory import Trajectory

__all__ = ["StayPoint", "MovePoint"]


@dataclass(frozen=True)
class StayPoint:
    """A maximal subtrajectory during which the truck stays in one region.

    ``start`` / ``end`` are *inclusive* indices into the cleaned raw
    trajectory.  The paper numbers stay points 1..n in temporal order;
    ``ordinal`` carries that 1-based number.
    """

    trajectory: Trajectory
    start: int
    end: int
    ordinal: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.end < len(self.trajectory):
            raise ValueError(
                f"stay point [{self.start}, {self.end}] out of range for "
                f"trajectory of {len(self.trajectory)} points")
        if self.ordinal < 1:
            raise ValueError("stay point ordinals are 1-based")

    @property
    def num_points(self) -> int:
        return self.end - self.start + 1

    @property
    def arrival_t(self) -> float:
        return float(self.trajectory.ts[self.start])

    @property
    def departure_t(self) -> float:
        return float(self.trajectory.ts[self.end])

    @property
    def duration_s(self) -> float:
        return self.departure_t - self.arrival_t

    @property
    def centroid(self) -> tuple[float, float]:
        """Mean (lat, lng) of the member points."""
        lats = self.trajectory.lats[self.start:self.end + 1]
        lngs = self.trajectory.lngs[self.start:self.end + 1]
        return float(lats.mean()), float(lngs.mean())

    def subtrajectory(self) -> Trajectory:
        return self.trajectory.slice(self.start, self.end + 1)


@dataclass(frozen=True)
class MovePoint:
    """The subtrajectory connecting two consecutive stay points.

    Our move points *include* the last point of the preceding stay point
    and the first point of the following one, so that a move segment is
    never empty even when the GPS sampling skipped the transit entirely.
    ``ordinal`` is the ordinal of the preceding stay point (mp_i connects
    sp_i and sp_{i+1}).
    """

    trajectory: Trajectory
    start: int
    end: int
    ordinal: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.end < len(self.trajectory):
            raise ValueError(
                f"move point [{self.start}, {self.end}] out of range")

    @property
    def num_points(self) -> int:
        return self.end - self.start + 1

    def subtrajectory(self) -> Trajectory:
        return self.trajectory.slice(self.start, self.end + 1)
