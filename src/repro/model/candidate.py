"""Candidate trajectories (paper Definition 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .staypoint import MovePoint, StayPoint
from .trajectory import Trajectory

__all__ = ["CandidateTrajectory"]


@dataclass(frozen=True)
class CandidateTrajectory:
    """A subtrajectory that starts with one stay point and ends with another.

    Simplified as the ordered pair ``<sp_i' --> sp_j'>`` of 1-based stay
    point ordinals (``start_ordinal < end_ordinal``).  The candidate spans
    every GPS point from the first point of the starting stay point to the
    last point of the ending stay point, and decomposes into the alternating
    sequence ``sp_i', mp_i', sp_{i'+1}, ..., mp_{j'-1}, sp_j'``.
    """

    stay_points: tuple[StayPoint, ...]
    move_points: tuple[MovePoint, ...]

    def __post_init__(self) -> None:
        if len(self.stay_points) < 2:
            raise ValueError("a candidate needs at least two stay points")
        if len(self.move_points) != len(self.stay_points) - 1:
            raise ValueError(
                f"{len(self.stay_points)} stay points require "
                f"{len(self.stay_points) - 1} move points, got "
                f"{len(self.move_points)}")
        ordinals = [sp.ordinal for sp in self.stay_points]
        if ordinals != list(range(ordinals[0], ordinals[0] + len(ordinals))):
            raise ValueError(f"stay point ordinals not consecutive: {ordinals}")

    # ------------------------------------------------------------------
    @property
    def start_ordinal(self) -> int:
        """1-based ordinal i' of the starting stay point."""
        return self.stay_points[0].ordinal

    @property
    def end_ordinal(self) -> int:
        """1-based ordinal j' of the ending stay point."""
        return self.stay_points[-1].ordinal

    @property
    def pair(self) -> tuple[int, int]:
        """The ``(i', j')`` identifier used throughout the paper."""
        return (self.start_ordinal, self.end_ordinal)

    @property
    def trajectory(self) -> Trajectory:
        return self.stay_points[0].trajectory

    @property
    def start_index(self) -> int:
        """First GPS point index of the candidate."""
        return self.stay_points[0].start

    @property
    def end_index(self) -> int:
        """Last GPS point index (inclusive) of the candidate."""
        return self.stay_points[-1].end

    @property
    def num_points(self) -> int:
        return self.end_index - self.start_index + 1

    def subtrajectory(self) -> Trajectory:
        return self.trajectory.slice(self.start_index, self.end_index + 1)

    def segments(self) -> list[StayPoint | MovePoint]:
        """The alternating sp/mp decomposition, in temporal order."""
        out: list[StayPoint | MovePoint] = []
        for sp, mp in zip(self.stay_points, self.move_points):
            out.append(sp)
            out.append(mp)
        out.append(self.stay_points[-1])
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def build(stay_points: Sequence[StayPoint],
              move_points: Sequence[MovePoint],
              start_ordinal: int, end_ordinal: int) -> "CandidateTrajectory":
        """Build ``<sp_start --> sp_end>`` from a raw trajectory's sp/mp lists.

        ``stay_points``/``move_points`` are the full extraction result for
        a raw trajectory (ordinals 1..n and 1..n-1 respectively).
        """
        if not 1 <= start_ordinal < end_ordinal <= len(stay_points):
            raise ValueError(
                f"invalid ordinal pair ({start_ordinal}, {end_ordinal}) "
                f"for {len(stay_points)} stay points")
        sps = tuple(stay_points[start_ordinal - 1:end_ordinal])
        mps = tuple(move_points[start_ordinal - 1:end_ordinal - 1])
        return CandidateTrajectory(sps, mps)
