"""Raw trajectories (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..geo import haversine_m, haversine_rad_m

__all__ = ["GPSPoint", "Trajectory"]


@dataclass(frozen=True)
class GPSPoint:
    """A single GPS fix: ``p = (lat, lng, t)`` with ``t`` in unix seconds."""

    lat: float
    lng: float
    t: float

    def distance_m(self, other: "GPSPoint") -> float:
        return haversine_m(self.lat, self.lng, other.lat, other.lng)


class Trajectory:
    """A chronologically ordered sequence of GPS points.

    Stored columnar (three float64 arrays) for vectorized processing; the
    sequence protocol yields :class:`GPSPoint` views for ergonomic access.
    """

    __slots__ = ("lats", "lngs", "ts", "truck_id", "day", "_radians")

    def __init__(self, lats: Sequence[float], lngs: Sequence[float],
                 ts: Sequence[float], truck_id: str = "",
                 day: str = "") -> None:
        self.lats = np.asarray(lats, dtype=np.float64)
        self.lngs = np.asarray(lngs, dtype=np.float64)
        self.ts = np.asarray(ts, dtype=np.float64)
        if not (self.lats.shape == self.lngs.shape == self.ts.shape):
            raise ValueError("lats, lngs, ts must have the same length")
        if self.lats.ndim != 1:
            raise ValueError("trajectory arrays must be 1-D")
        if self.ts.size > 1 and not (np.diff(self.ts) > 0).all():
            raise ValueError("timestamps must be strictly increasing")
        self.truck_id = truck_id
        self.day = day
        self._radians: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Sequence[GPSPoint], truck_id: str = "",
                    day: str = "") -> "Trajectory":
        return cls([p.lat for p in points], [p.lng for p in points],
                   [p.t for p in points], truck_id=truck_id, day=day)

    def __len__(self) -> int:
        return int(self.lats.size)

    def __iter__(self) -> Iterator[GPSPoint]:
        for i in range(len(self)):
            yield self.point(i)

    def point(self, i: int) -> GPSPoint:
        return GPSPoint(float(self.lats[i]), float(self.lngs[i]),
                        float(self.ts[i]))

    def __getitem__(self, index: int | slice) -> "GPSPoint | Trajectory":
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise ValueError("trajectory slices must have step 1")
            return self.slice(start, stop)
        return self.point(index)

    def slice(self, start: int, stop: int) -> "Trajectory":
        """Subtrajectory of points ``[start, stop)``."""
        return Trajectory(self.lats[start:stop], self.lngs[start:stop],
                          self.ts[start:stop], truck_id=self.truck_id,
                          day=self.day)

    def radians(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lats, lngs)`` in radians, computed once and cached.

        Every vectorized geo kernel downstream (noise filter, stay-point
        scanner, distance metrics) needs radian coordinates; converting
        per call would re-run two full ``np.radians`` passes each time.
        The arrays are owned by the trajectory — treat them as
        read-only, like the degree columns.
        """
        if self._radians is None:
            self._radians = (np.radians(self.lats), np.radians(self.lngs))
        return self._radians

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(self.ts[-1] - self.ts[0])

    def pairwise_distances_m(self) -> np.ndarray:
        """Distances between consecutive points, shape ``(n-1,)``.

        Served from the cached radian arrays, so repeated metric calls
        (length, speeds, noise filtering) share one conversion pass.
        """
        if len(self) < 2:
            return np.zeros(0)
        lats_r, lngs_r = self.radians()
        return haversine_rad_m(lats_r[:-1], lngs_r[:-1],
                               lats_r[1:], lngs_r[1:])

    def length_m(self) -> float:
        """Total path length along consecutive points."""
        return float(self.pairwise_distances_m().sum())

    def segment_speeds_kmh(self) -> np.ndarray:
        """Speed of each consecutive segment, shape ``(n-1,)``."""
        if len(self) < 2:
            return np.zeros(0)
        dist = self.pairwise_distances_m()
        dt = np.diff(self.ts)
        with np.errstate(divide="ignore", invalid="ignore"):
            speeds = np.where(dt > 0, dist / np.maximum(dt, 1e-12) * 3.6,
                              np.inf)
        return speeds

    def to_dict(self) -> dict[str, object]:
        return {
            "truck_id": self.truck_id,
            "day": self.day,
            "lats": self.lats.tolist(),
            "lngs": self.lngs.tolist(),
            "ts": self.ts.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Trajectory":
        return cls(payload["lats"], payload["lngs"], payload["ts"],
                   truck_id=str(payload.get("truck_id", "")),
                   day=str(payload.get("day", "")))

    def __repr__(self) -> str:
        return (f"Trajectory(truck_id={self.truck_id!r}, day={self.day!r}, "
                f"points={len(self)})")
