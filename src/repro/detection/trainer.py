"""Training of the forward and backward detectors (paper §V-B workflow).

The two detectors are trained *separately* (their own optimizers), each
minimizing the KLD between its output distribution and the smoothed label,
with gradient accumulation over B consecutive raw trajectories and early
stopping.  The per-epoch KLD curves regenerate the paper's Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..configbase import ConfigMixin
from ..nn import (Adam, EarlyStopping, Tensor, TrainingHistory, bce_loss,
                  clip_grad_norm, kld_loss, use_fused)
from .detectors import GroupDetector, IndependentDetector
from .grouping import build_backward_group, build_forward_group, merge_groups
from .labels import DEFAULT_EPSILON, smooth_label

__all__ = ["DetectorSample", "DetectorTrainingConfig", "DetectorTrainer",
           "IndependentDetectorTrainer"]


@dataclass(frozen=True)
class DetectorSample:
    """One training sample: the encoded candidates of a raw trajectory."""

    cvecs: np.ndarray            # (N, D) in enumeration order
    num_stay_points: int
    target_index: int            # flat index of the loaded candidate

    def __post_init__(self) -> None:
        expected = self.num_stay_points * (self.num_stay_points - 1) // 2
        if len(self.cvecs) != expected:
            raise ValueError(
                f"{self.num_stay_points} stay points imply {expected} "
                f"candidates, got {len(self.cvecs)}")
        if not 0 <= self.target_index < expected:
            raise ValueError("target index out of range")


@dataclass
class DetectorTrainingConfig(ConfigMixin):
    """Training-loop knobs.

    The paper trains with batch size 1 and averages gradients over B = 64
    consecutive trajectories; here a mini-batch merges several
    trajectories' groups into one padded detector forward (mathematically
    the same averaged update, far cheaper on one CPU core), and the batch
    size is smaller because the synthetic training set has far fewer raw
    trajectories per epoch than the paper's 4,774.
    """

    epochs: int = 15
    learning_rate: float = 2e-3
    batch_size: int = 8          # raw trajectories per optimizer step
    patience: int = 3
    epsilon: float = DEFAULT_EPSILON
    max_grad_norm: float = 5.0
    weight_decay: float = 1e-4   # decoupled L2, curbs site memorization
    seed: int = 0
    #: Route forwards through the fused single-node autograd ops
    #: (:mod:`repro.nn.fused`); ``False`` forces the legacy tape.
    fused: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.learning_rate <= 0 or self.batch_size < 1:
            raise ValueError("invalid training configuration")


def _stack_cvecs(batch: list["DetectorSample"]) -> tuple[np.ndarray,
                                                         np.ndarray]:
    """Concatenate a batch's c-vecs; returns (matrix, per-sample counts)."""
    return (np.concatenate([s.cvecs for s in batch], axis=0),
            np.array([len(s.cvecs) for s in batch]))


class DetectorTrainer:
    """Trains a (forward, backward) detector pair."""

    def __init__(self, forward: GroupDetector, backward: GroupDetector,
                 config: DetectorTrainingConfig | None = None) -> None:
        self.forward = forward
        self.backward = backward
        self.config = config or DetectorTrainingConfig()

    def fit(self, samples: list[DetectorSample], verbose: bool = False
            ) -> tuple[TrainingHistory, TrainingHistory]:
        """Train both detectors; returns their KLD loss histories."""
        if not samples:
            raise ValueError("no training samples")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizers = (Adam(self.forward.parameters(), lr=cfg.learning_rate),
                      Adam(self.backward.parameters(), lr=cfg.learning_rate))
        stoppers = (EarlyStopping(patience=cfg.patience),
                    EarlyStopping(patience=cfg.patience))
        histories = (TrainingHistory(name="forward-detector"),
                     TrainingHistory(name="backward-detector"))
        done = [False, False]
        self.forward.train()
        self.backward.train()
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(samples))
            totals = [0.0, 0.0]
            with use_fused(cfg.fused):
                for start in range(0, len(order), cfg.batch_size):
                    batch = [samples[int(c)]
                             for c in order[start:start + cfg.batch_size]]
                    label = np.concatenate([
                        smooth_label(len(s.cvecs), s.target_index,
                                     cfg.epsilon)
                        for s in batch])
                    for d, (detector, optimizer, builder) in enumerate((
                            (self.forward, optimizers[0],
                             build_forward_group),
                            (self.backward, optimizers[1],
                             build_backward_group))):
                        if done[d]:
                            continue
                        merged = merge_groups([
                            builder(s.cvecs, s.num_stay_points)
                            for s in batch])
                        batch_cvecs, _ = _stack_cvecs(batch)
                        probs = detector.score_indexed(
                            Tensor(batch_cvecs), list(merged.index_maps),
                            segments=np.array([len(s.cvecs)
                                               for s in batch]))
                        loss = kld_loss(label, probs) * (1.0 / len(batch))
                        totals[d] += loss.item() * len(batch)
                        optimizer.zero_grad()
                        loss.backward()
                        clip_grad_norm(optimizer.parameters,
                                       cfg.max_grad_norm)
                        optimizer.step()
            for d in range(2):
                if done[d]:
                    continue
                epoch_loss = totals[d] / len(order)
                histories[d].record(epoch_loss)
                if verbose:
                    print(f"[{histories[d].name}] epoch {epoch}: "
                          f"kld={epoch_loss:.4f}")
                if stoppers[d].update(epoch_loss):
                    done[d] = True
            if all(done):
                break
        self.forward.eval()
        self.backward.eval()
        return histories


class IndependentDetectorTrainer:
    """Trains the LEAD-NoGro MLP with per-candidate binary cross entropy."""

    def __init__(self, detector: IndependentDetector,
                 config: DetectorTrainingConfig | None = None) -> None:
        self.detector = detector
        self.config = config or DetectorTrainingConfig()

    def fit(self, samples: list[DetectorSample], verbose: bool = False
            ) -> TrainingHistory:
        if not samples:
            raise ValueError("no training samples")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.detector.parameters(), lr=cfg.learning_rate)
        stopper = EarlyStopping(patience=cfg.patience)
        history = TrainingHistory(name="independent-detector")
        self.detector.train()
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(samples))
            total = 0.0
            batches = 0
            with use_fused(cfg.fused):
                for start in range(0, len(order), cfg.batch_size):
                    batch = [samples[int(c)]
                             for c in order[start:start + cfg.batch_size]]
                    cvecs = np.concatenate([s.cvecs for s in batch], axis=0)
                    target = np.zeros(len(cvecs))
                    offset = 0
                    for s in batch:
                        target[offset + s.target_index] = 1.0
                        offset += len(s.cvecs)
                    probs = self.detector(Tensor(cvecs))
                    loss = bce_loss(probs, target)
                    optimizer.zero_grad()
                    loss.backward()
                    clip_grad_norm(optimizer.parameters, cfg.max_grad_norm)
                    optimizer.step()
                    total += loss.item()
                    batches += 1
            epoch_loss = total / batches
            history.record(epoch_loss)
            if verbose:
                print(f"[no-gro] epoch {epoch}: bce={epoch_loss:.4f}")
            if stopper.update(epoch_loss):
                break
        self.detector.eval()
        return history
