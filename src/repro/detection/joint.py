"""Joint fine-tuning of the compressor and the detectors.

The paper freezes the compressor after self-supervised training and trains
the detectors on fixed c-vecs — feasible at its data/GPU scale (4,774
training trajectories, ~143k candidate f-seqs).  At this repository's
CPU scale the reconstruction pretext alone cannot make the 64-dim c-vec
discriminative enough, so after the same self-supervised pretraining we
continue to backpropagate the detectors' KLD losses *through the
compressor* (standard pretrain-then-fine-tune).  Every architectural
component and loss of the paper is unchanged; only the freeze is lifted.
See DESIGN.md §2 for the substitution record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..encoding import HierarchicalAutoencoder
from ..nn import (Adam, CheckpointManager, EarlyStopping, TrainingHistory,
                  bce_loss, clip_grad_norm, concat, kld_loss, use_fused)
from ..obs.core import active_obs
from .detectors import GroupDetector, IndependentDetector
from .grouping import backward_index_maps, forward_index_maps
from .labels import smooth_label
from .trainer import DetectorTrainingConfig

__all__ = ["TrajectorySpec", "JointDetectorTrainer"]


@dataclass(frozen=True)
class TrajectorySpec:
    """One training trajectory in segment form (encoder inputs + label)."""

    stay_segments: list[np.ndarray]
    move_segments: list[np.ndarray]
    pairs: list[tuple[int, int]]
    num_stay_points: int
    target_index: int

    def __post_init__(self) -> None:
        n = self.num_stay_points
        if len(self.stay_segments) != n or len(self.move_segments) != n - 1:
            raise ValueError("segment counts do not match stay point count")
        if len(self.pairs) != n * (n - 1) // 2:
            raise ValueError("pair count does not match stay point count")
        if not 0 <= self.target_index < len(self.pairs):
            raise ValueError("target index out of range")


class JointDetectorTrainer:
    """Trains detectors (and optionally the compressor) end to end."""

    def __init__(self, autoencoder: HierarchicalAutoencoder,
                 forward: GroupDetector | None,
                 backward: GroupDetector | None,
                 independent: IndependentDetector | None = None,
                 config: DetectorTrainingConfig | None = None,
                 finetune_encoder: bool = True) -> None:
        if independent is None and forward is None and backward is None:
            raise ValueError("no detector to train")
        self.autoencoder = autoencoder
        self.forward = forward
        self.backward = backward
        self.independent = independent
        self.config = config or DetectorTrainingConfig()
        self.finetune_encoder = finetune_encoder

    def _parameters(self):
        params = []
        for module in (self.forward, self.backward, self.independent):
            if module is not None:
                params.extend(module.parameters())
        if self.finetune_encoder:
            params.extend(self.autoencoder.parameters())
        return params

    def _checkpoint_modules(self):
        """Named live modules, as stored in a training checkpoint."""
        named = {"autoencoder": self.autoencoder, "forward": self.forward,
                 "backward": self.backward, "independent": self.independent}
        return {name: module for name, module in named.items()
                if module is not None}

    def fit(self, specs: list[TrajectorySpec],
            verbose: bool = False,
            checkpoint: CheckpointManager | None = None
            ) -> list[TrainingHistory]:
        """Train; returns per-detector loss histories (paper Fig. 10).

        With ``checkpoint``, every epoch persists the detectors (and the
        fine-tuned compressor), Adam moments, RNG, early stopping, and
        the loss histories, so a killed ``fit()`` resumes deterministically
        at the next epoch.
        """
        if not specs:
            raise ValueError("no training samples")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self._parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        stopper = EarlyStopping(patience=cfg.patience)
        histories = self._make_histories()
        start_epoch = 0
        if checkpoint is not None:
            state = checkpoint.load()
            if state is not None:
                start_epoch = checkpoint.restore(
                    state, modules=self._checkpoint_modules(),
                    optimizer=optimizer, rng=rng, stopper=stopper)
                if len(state.histories) == len(histories):
                    histories = state.histories
        modules = [m for m in (self.autoencoder, self.forward, self.backward,
                               self.independent) if m is not None]
        for module in modules:
            module.train()
        for epoch in range(start_epoch, cfg.epochs):
            if stopper.should_stop:
                break
            epoch_start = time.perf_counter()
            steps = 0
            order = rng.permutation(len(specs))
            totals = np.zeros(len(histories))
            with use_fused(cfg.fused):
                for start in range(0, len(order), cfg.batch_size):
                    batch = [specs[int(c)]
                             for c in order[start:start + cfg.batch_size]]
                    losses = self._batch_losses(batch)
                    total_loss = losses[0]
                    for extra in losses[1:]:
                        total_loss = total_loss + extra
                    optimizer.zero_grad()
                    (total_loss * (1.0 / len(batch))).backward()
                    clip_grad_norm(optimizer.parameters, cfg.max_grad_norm)
                    optimizer.step()
                    for d, loss in enumerate(losses):
                        totals[d] += loss.item()
                    steps += 1
            for d, history in enumerate(histories):
                history.record(totals[d] / len(order))
            self._publish_epoch(epoch, histories, steps,
                                time.perf_counter() - epoch_start)
            if verbose:
                rendered = ", ".join(
                    f"{h.name}={h.final_loss:.4f}" for h in histories)
                print(f"[joint] epoch {epoch}: {rendered}")
            should_stop = stopper.update(float(totals.sum()) / len(order))
            if checkpoint is not None:
                checkpoint.save(epoch=epoch,
                                modules=self._checkpoint_modules(),
                                optimizer=optimizer, rng=rng,
                                stopper=stopper, histories=list(histories))
            if should_stop:
                break
        for module in modules:
            module.eval()
        if checkpoint is not None:
            checkpoint.clear()
        return histories

    @staticmethod
    def _publish_epoch(epoch: int, histories: list[TrainingHistory],
                       steps: int, elapsed_s: float) -> None:
        """Per-epoch, per-detector training gauges when telemetry is on."""
        ob = active_obs()
        if ob is None:
            return
        for history in histories:
            labels = {"model": "joint", "detector": history.name}
            ob.registry.gauge("train_epoch",
                              help="Last completed epoch index.",
                              labels=labels).set(epoch)
            ob.registry.gauge(
                "train_epoch_loss",
                help="Mean loss of the last completed epoch.",
                labels=labels).set(history.final_loss)
        if elapsed_s > 0.0:
            ob.registry.gauge(
                "train_steps_per_second",
                help="Optimizer steps per second over the last epoch.",
                labels={"model": "joint"}).set(steps / elapsed_s)

    def _make_histories(self) -> list[TrainingHistory]:
        if self.independent is not None:
            return [TrainingHistory(name="independent-detector")]
        histories = []
        if self.forward is not None:
            histories.append(TrainingHistory(name="forward-detector"))
        if self.backward is not None:
            histories.append(TrainingHistory(name="backward-detector"))
        return histories

    # ------------------------------------------------------------------
    def _batch_losses(self, batch: list[TrajectorySpec]):
        """Per-detector summed losses over one mini-batch."""
        cvec_tensors = [
            self.autoencoder.encode_trajectory_tensor(
                spec.stay_segments, spec.move_segments, spec.pairs)
            for spec in batch]
        all_cvecs = concat(cvec_tensors, axis=0)
        if self.independent is not None:
            target = np.zeros(all_cvecs.shape[0])
            offset = 0
            for spec in batch:
                target[offset + spec.target_index] = 1.0
                offset += len(spec.pairs)
            probs = self.independent(all_cvecs)
            return [bce_loss(probs, target) * len(batch)]
        label = np.concatenate([
            smooth_label(len(spec.pairs), spec.target_index,
                         self.config.epsilon)
            for spec in batch])
        losses = []
        for detector, map_builder in ((self.forward, forward_index_maps),
                                      (self.backward, backward_index_maps)):
            if detector is None:
                continue
            index_maps = []
            offset = 0
            for spec in batch:
                for indices in map_builder(spec.num_stay_points):
                    index_maps.append(indices + offset)
                offset += len(spec.pairs)
            segments = np.array([len(spec.pairs) for spec in batch])
            probs = detector.score_indexed(all_cvecs, index_maps,
                                           segments=segments)
            losses.append(kld_loss(label, probs))
        return losses
