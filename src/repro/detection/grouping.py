"""Group generation (paper §V-A, Table II).

Candidates are enumerated in *forward-group order*: (1,2), (1,3), ...,
(1,n), (2,3), ..., (n-1,n).  The forward group's subgroups are contiguous
slices of that order; the backward group's subgroups gather candidates
sharing an ending stay point, sorted by descending starting index.

Inside each subgroup, neighbouring candidates stand in inclusion
(left-to-right) and exclusion (right-to-left) relationships, and all of a
subgroup's candidates are analogous (same starting or ending stay point) —
the relationships the BiLSTM detectors exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["pair_to_index", "index_to_pair", "enumerate_pairs",
           "Group", "build_forward_group", "build_backward_group",
           "forward_index_maps", "backward_index_maps", "merge_groups"]


def enumerate_pairs(num_stay_points: int) -> list[tuple[int, int]]:
    """All (i', j') pairs in forward-group order."""
    return [(i, j)
            for i in range(1, num_stay_points + 1)
            for j in range(i + 1, num_stay_points + 1)]


def pair_to_index(num_stay_points: int, pair: tuple[int, int]) -> int:
    """Flat candidate index of pair (i', j') in forward-group order."""
    i, j = pair
    n = num_stay_points
    if not 1 <= i < j <= n:
        raise ValueError(f"invalid pair {pair} for n={n}")
    # Candidates before subgroup i: (n-1) + (n-2) + ... + (n-i+1).
    offset = (i - 1) * n - i * (i - 1) // 2
    return offset + (j - i - 1)


def index_to_pair(num_stay_points: int, index: int) -> tuple[int, int]:
    """Inverse of :func:`pair_to_index`."""
    n = num_stay_points
    total = n * (n - 1) // 2
    if not 0 <= index < total:
        raise ValueError(f"index {index} out of range for n={n}")
    remaining = index
    for i in range(1, n):
        size = n - i
        if remaining < size:
            return (i, i + 1 + remaining)
        remaining -= size
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class Group:
    """A forward or backward group.

    ``subgroups[k]`` is a ``(L_k, D)`` matrix of compressed vectors;
    ``index_maps[k]`` gives, for each row, the candidate's flat index in
    forward-group (enumeration) order, so detector outputs can be scattered
    back into a common indexing.
    """

    subgroups: tuple[np.ndarray, ...]
    index_maps: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.subgroups) != len(self.index_maps):
            raise ValueError("subgroups/index_maps length mismatch")
        for matrix, indices in zip(self.subgroups, self.index_maps):
            if len(matrix) != len(indices):
                raise ValueError("subgroup and index map sizes differ")

    @property
    def num_candidates(self) -> int:
        return int(sum(len(m) for m in self.subgroups))

    def flat_indices(self) -> np.ndarray:
        """Candidate indices in subgroup-concatenation order."""
        return np.concatenate(self.index_maps)


#: Index maps are pure functions of ``n`` and are rebuilt for every
#: trajectory of every detect call; stay-point counts repeat heavily
#: across a fleet, so a small memo removes the quadratic Python loop
#: from the online path.  Cached arrays are frozen — consumers that
#: offset them (``merge_groups``, the batched detector path) already
#: produce fresh arrays via ``indices + offset``.
_INDEX_MAP_MEMO: dict[tuple[str, int], list[np.ndarray]] = {}
_INDEX_MAP_MEMO_MAX = 1024


def _memoized_maps(kind: str, num_stay_points: int, build) -> list[np.ndarray]:
    key = (kind, num_stay_points)
    maps = _INDEX_MAP_MEMO.get(key)
    if maps is None:
        maps = build(num_stay_points)
        for indices in maps:
            indices.setflags(write=False)
        if len(_INDEX_MAP_MEMO) >= _INDEX_MAP_MEMO_MAX:
            _INDEX_MAP_MEMO.clear()
        _INDEX_MAP_MEMO[key] = maps
    return list(maps)


def forward_index_maps(num_stay_points: int) -> list[np.ndarray]:
    """Candidate indices of subgroups g_1..g_{n-1} (same starting index,
    ascending ending index)."""
    return _memoized_maps("forward", num_stay_points, _forward_index_maps)


def backward_index_maps(num_stay_points: int) -> list[np.ndarray]:
    """Candidate indices of subgroups ḡ_2..ḡ_n (same ending index,
    descending starting index)."""
    return _memoized_maps("backward", num_stay_points, _backward_index_maps)


def _forward_index_maps(num_stay_points: int) -> list[np.ndarray]:
    n = num_stay_points
    return [np.array([pair_to_index(n, (i, j)) for j in range(i + 1, n + 1)])
            for i in range(1, n)]


def _backward_index_maps(num_stay_points: int) -> list[np.ndarray]:
    n = num_stay_points
    return [np.array([pair_to_index(n, (i, j)) for i in range(j - 1, 0, -1)])
            for j in range(2, n + 1)]


def build_forward_group(cvecs: np.ndarray, num_stay_points: int) -> Group:
    """Subgroups g_1..g_{n-1}: same starting index, ascending ending index."""
    _validate(cvecs, num_stay_points)
    index_maps = forward_index_maps(num_stay_points)
    return Group(tuple(cvecs[indices] for indices in index_maps),
                 tuple(index_maps))


def build_backward_group(cvecs: np.ndarray, num_stay_points: int) -> Group:
    """Subgroups ḡ_2..ḡ_n: same ending index, descending starting index."""
    _validate(cvecs, num_stay_points)
    index_maps = backward_index_maps(num_stay_points)
    return Group(tuple(cvecs[indices] for indices in index_maps),
                 tuple(index_maps))


def merge_groups(groups: list[Group]) -> Group:
    """Concatenate groups of several raw trajectories into one.

    Index maps are offset by the cumulative candidate counts, so the merged
    detector output is the concatenation of the per-trajectory outputs in
    enumeration order.  Subgroups remain independent sequences, which makes
    one detector forward over the merged group mathematically identical to
    one forward per trajectory — but far cheaper on CPU.
    """
    if not groups:
        raise ValueError("no groups to merge")
    subgroups: list[np.ndarray] = []
    index_maps: list[np.ndarray] = []
    offset = 0
    for group in groups:
        subgroups.extend(group.subgroups)
        index_maps.extend(indices + offset for indices in group.index_maps)
        offset += group.num_candidates
    return Group(tuple(subgroups), tuple(index_maps))


def _validate(cvecs: np.ndarray, num_stay_points: int) -> None:
    expected = num_stay_points * (num_stay_points - 1) // 2
    if num_stay_points < 2:
        raise ValueError("need at least two stay points")
    if cvecs.ndim != 2 or len(cvecs) != expected:
        raise ValueError(
            f"expected ({expected}, D) compressed vectors for "
            f"n={num_stay_points}, got {cvecs.shape}")
