"""Merging the two detectors' distributions (paper §V-B workflow).

The forward and backward probability distributions are summed elementwise
by candidate, then rescaled to [0, 1]; the candidate with the maximum
merged probability is the detected loaded trajectory (Eq. 13).
"""

from __future__ import annotations

import numpy as np

__all__ = ["merge_distributions", "argmax_pair"]


def merge_distributions(forward: np.ndarray,
                        backward: np.ndarray | None = None) -> np.ndarray:
    """Sum (when both are given) and min-max rescale to [0, 1]."""
    forward = np.asarray(forward, dtype=np.float64)
    merged = forward if backward is None else forward + np.asarray(backward)
    if merged.ndim != 1 or merged.size == 0:
        raise ValueError("expected a non-empty 1-D distribution")
    span = merged.max() - merged.min()
    if span <= 0:
        return np.full(merged.shape, 0.5)
    return (merged - merged.min()) / span


def argmax_pair(merged: np.ndarray, pairs: list[tuple[int, int]]
                ) -> tuple[int, int]:
    """The (i', j') of the highest-probability candidate."""
    if len(merged) != len(pairs):
        raise ValueError("distribution and pair list sizes differ")
    return pairs[int(np.argmax(merged))]
