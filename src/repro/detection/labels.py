"""Label processing (paper §V-C).

The real label is a one-hot distribution over candidates (1 at the loaded
candidate, 0 elsewhere).  Zero probabilities make the KLD loss undefined
(log 0), so the real label is smoothed: every zero becomes a small constant
epsilon and the hot entry becomes ``1 - k * epsilon`` where ``k`` is the
number of smoothed entries.
"""

from __future__ import annotations

import numpy as np

__all__ = ["smooth_label", "DEFAULT_EPSILON"]

DEFAULT_EPSILON = 1e-5


def smooth_label(num_candidates: int, target_index: int,
                 epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """The smoothed label distribution over candidates.

    The same distribution (re-indexed) serves both the forward and the
    backward detector: KLD pairs label and prediction entries by candidate,
    so only consistent indexing matters, not the group's internal order.
    """
    if num_candidates < 1:
        raise ValueError("need at least one candidate")
    if not 0 <= target_index < num_candidates:
        raise ValueError(
            f"target index {target_index} out of range 0..{num_candidates - 1}")
    if not 0.0 < epsilon < 1.0 / max(1, num_candidates):
        raise ValueError("epsilon too large for this many candidates")
    label = np.full(num_candidates, epsilon)
    label[target_index] = 1.0 - (num_candidates - 1) * epsilon
    return label
