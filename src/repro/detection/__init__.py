"""Loaded trajectory detection — LEAD component 3 (paper §V).

Group generation, forward/backward stacked-BiLSTM detectors, label
processing, and distribution merging (DESIGN.md S16-S18).
"""

from .grouping import (Group, backward_index_maps, build_backward_group,
                       build_forward_group, enumerate_pairs,
                       forward_index_maps, index_to_pair, merge_groups,
                       pair_to_index)
from .labels import DEFAULT_EPSILON, smooth_label
from .detectors import GroupDetector, IndependentDetector
from .merge import argmax_pair, merge_distributions
from .trainer import (DetectorSample, DetectorTrainer,
                      DetectorTrainingConfig, IndependentDetectorTrainer)
from .joint import JointDetectorTrainer, TrajectorySpec

__all__ = [
    "Group", "build_forward_group", "build_backward_group",
    "enumerate_pairs", "pair_to_index", "index_to_pair", "merge_groups",
    "forward_index_maps", "backward_index_maps",
    "smooth_label", "DEFAULT_EPSILON",
    "GroupDetector", "IndependentDetector",
    "merge_distributions", "argmax_pair",
    "DetectorSample", "DetectorTrainer", "DetectorTrainingConfig",
    "IndependentDetectorTrainer",
    "JointDetectorTrainer", "TrajectorySpec",
]
