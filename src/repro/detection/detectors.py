"""Forward / backward detectors (paper §V-B, Fig. 7) and the NoGro MLP.

Each detector is a stacked BiLSTM over the subgroups of a group; every
subgroup is an independent sequence (batched with padding), position
scores come from a 1-unit fully connected layer, and a per-subgroup softmax
yields the probability vector of the subgroup (Eq. 10).
"""

from __future__ import annotations

import numpy as np

from ..nn import (Linear, Module, Sequential, StackedBiLSTM, Tensor, concat,
                  masked_softmax)
from ..nn.padding import pad_sequences
from ..nn.rnn import sequence_mask
from .grouping import Group

__all__ = ["GroupDetector", "IndependentDetector"]


class GroupDetector(Module):
    """Stacked-BiLSTM detector over a forward or backward group.

    Output: a probability Tensor of shape ``(N,)`` indexed by *candidate
    enumeration order* (the detector scatters its per-subgroup outputs back
    through the group's index maps), where each subgroup's entries form a
    softmax distribution.
    """

    def __init__(self, input_dim: int = 64, hidden_size: int = 64,
                 num_layers: int = 4,
                 rng: np.random.Generator | None = None,
                 subgroup_softmax: bool = False) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.backbone = StackedBiLSTM(input_dim, hidden_size, num_layers, rng)
        self.score = Linear(hidden_size, 1, rng)
        #: Eq. (10) reads as a softmax per subgroup, but the detector's
        #: output is compared by KLD against a label that sums to 1
        #: (Eq. 11), and single-detector ablations (NoFor/NoBac) only
        #: produce meaningful argmaxes when the distribution is normalized
        #: over the whole group: a per-subgroup softmax pins every
        #: single-element subgroup at probability 1.0.  The default is
        #: therefore a flat softmax over all candidates of the group; set
        #: ``subgroup_softmax=True`` for the literal per-subgroup reading.
        self.subgroup_softmax = subgroup_softmax

    def forward(self, group: Group) -> Tensor:
        batch, lengths = pad_sequences(group.subgroups)
        if batch.shape[2] != self.input_dim:
            raise ValueError(
                f"expected c-vec dim {self.input_dim}, got {batch.shape[2]}")
        return self._probabilities(Tensor(batch), lengths,
                                   group.flat_indices(), segments=None)

    def score_indexed(self, cvecs: Tensor, index_maps: list[np.ndarray],
                      segments: np.ndarray | None = None,
                      bucket: bool = False) -> Tensor:
        """Differentiable variant of :meth:`forward`.

        ``cvecs`` is the ``(N, D)`` tensor of compressed vectors (typically
        fresh out of the compressor, with gradients attached) and
        ``index_maps`` are the subgroup index maps of a (merged) group.
        Rows are gathered into a padded subgroup batch with one fancy
        index, so gradients flow back into the encoder — the joint
        fine-tuning path.  When several trajectories' groups were merged,
        ``segments`` gives the candidate count of each trajectory so the
        flat softmax normalizes per trajectory, never across them.

        ``bucket=True`` groups the subgroup sequences by power-of-two
        length before the BiLSTM pass so short subgroups are not padded
        to the longest subgroup of the whole (merged) batch.  The
        freeze-masked BiLSTM makes the hidden states of valid positions
        padding-length invariant, so this changes nothing but wasted
        arithmetic; it pays off when many trajectories' groups were
        merged and is a no-op for single-subgroup calls.
        """
        if cvecs.shape[-1] != self.input_dim:
            raise ValueError(
                f"expected c-vec dim {self.input_dim}, got {cvecs.shape}")
        lengths = np.array([len(m) for m in index_maps], dtype=np.int64)
        flat_indices = np.concatenate(index_maps)
        if bucket and len(index_maps) > 1 and not self.subgroup_softmax:
            return self._probabilities_bucketed(cvecs, index_maps, lengths,
                                                flat_indices, segments)
        index = np.zeros((len(index_maps), int(lengths.max())),
                         dtype=np.int64)
        for row, indices in enumerate(index_maps):
            index[row, :len(indices)] = indices
        return self._probabilities(cvecs[index], lengths, flat_indices,
                                   segments)

    def _probabilities(self, batch: Tensor, lengths: np.ndarray,
                       flat_indices: np.ndarray,
                       segments: np.ndarray | None) -> Tensor:
        hidden = self.backbone(batch, lengths)                # (B, T, H)
        scores = self.score(hidden).reshape(batch.shape[0], batch.shape[1])
        order = np.argsort(flat_indices)
        if self.subgroup_softmax:
            mask = sequence_mask(lengths, batch.shape[1])
            probs = masked_softmax(scores, mask, axis=1)      # (B, T)
            pieces = [probs[b, :int(lengths[b])]
                      for b in range(batch.shape[0])]
            return concat(pieces, axis=0)[order]
        # Flat normalization: one softmax per trajectory's candidates.
        pieces = [scores[b, :int(lengths[b])]
                  for b in range(batch.shape[0])]
        return self._normalize_flat(concat(pieces, axis=0)[order], segments)

    def _probabilities_bucketed(self, cvecs: Tensor,
                                index_maps: list[np.ndarray],
                                lengths: np.ndarray,
                                flat_indices: np.ndarray,
                                segments: np.ndarray | None) -> Tensor:
        """Flat-softmax scoring with length-bucketed BiLSTM passes.

        Subgroups are binned by the power-of-two ceiling of their length;
        each bin runs one backbone forward padded only to the bin's own
        maximum, and the per-subgroup score slices are reassembled in the
        original subgroup order before normalization.
        """
        keys = 2 ** np.ceil(np.log2(np.maximum(lengths, 1))).astype(np.int64)
        pieces: list[Tensor | None] = [None] * len(index_maps)
        for key in np.unique(keys):
            rows = np.nonzero(keys == key)[0]
            width = int(lengths[rows].max())
            index = np.zeros((len(rows), width), dtype=np.int64)
            for r, row in enumerate(rows):
                index[r, :int(lengths[row])] = index_maps[row]
            hidden = self.backbone(cvecs[index], lengths[rows])
            scores = self.score(hidden).reshape(len(rows), width)
            for r, row in enumerate(rows):
                pieces[row] = scores[r, :int(lengths[row])]
        order = np.argsort(flat_indices)
        return self._normalize_flat(concat(pieces, axis=0)[order], segments)

    def _normalize_flat(self, flat_scores: Tensor,
                        segments: np.ndarray | None) -> Tensor:
        if segments is None:
            return flat_scores.softmax(axis=0)
        bounds = np.concatenate([[0], np.cumsum(segments)])
        parts = [flat_scores[int(a):int(b)].softmax(axis=0)
                 for a, b in zip(bounds[:-1], bounds[1:])]
        return concat(parts, axis=0)


class IndependentDetector(Module):
    """The LEAD-NoGro ablation: per-candidate MLP with sigmoid output.

    Four fully connected layers (64, 32, 32, 1 units) applied to each
    compressed vector independently; the last layer's sigmoid is the
    candidate's probability of being the loaded trajectory (§VI-A).
    """

    def __init__(self, input_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_dim = input_dim
        self.fc1 = Linear(input_dim, 64, rng)
        self.fc2 = Linear(64, 32, rng)
        self.fc3 = Linear(32, 32, rng)
        self.fc4 = Linear(32, 1, rng)

    def forward(self, cvecs: np.ndarray | Tensor) -> Tensor:
        """Probabilities of shape ``(N,)`` in enumeration order."""
        x = cvecs if isinstance(cvecs, Tensor) else Tensor(cvecs)
        if x.shape[-1] != self.input_dim:
            raise ValueError(
                f"expected c-vec dim {self.input_dim}, got {x.shape}")
        h = self.fc1(x).relu()
        h = self.fc2(h).relu()
        h = self.fc3(h).relu()
        return self.fc4(h).sigmoid().reshape(-1)
