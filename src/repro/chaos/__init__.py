"""Deterministic chaos harness: prove the recovery paths actually work.

PR 1 built recovery machinery (checkpoint/resume, degradation tiers,
atomic IO) and PR 6 adds supervision (retries, breakers, quarantine) —
this package is what makes those claims *testable*: a seed-driven fault
injector whose every decision comes from a
:class:`numpy.random.SeedSequence`, so a soak that tears writes, crashes
workers, corrupts pings and poisons sessions replays bit-identically
from the same seed.

* :mod:`repro.chaos.core` — :class:`FaultSpec` rules, the installable
  :class:`ChaosEngine` (context manager / :func:`inject` decorator),
  and the :func:`chaos_point` hooks compiled into the production fault
  sites (``repro.io``, ``repro.perf.parallel``, ``repro.stream``);
* :mod:`repro.chaos.streams` — additive ping-stream hostility
  (corrupt / duplicate / clock-skewed retransmissions) that the ingest
  path provably neutralizes;
* :mod:`repro.chaos.soak` — the seeded fleet soak behind ``python -m
  repro.cli chaos``: run a fleet once clean and once under faults,
  assert healthy verdicts match bit-for-bit, and emit the fault /
  recovery ledger.

``streams`` and ``soak`` are lazy-loaded here: ``core`` must stay
import-light because :mod:`repro.io` instruments itself with its hooks.
"""

from .core import (ChaosEngine, Fault, FaultSpec, InjectedFault,
                   active_engine, chaos_point, inject)

__all__ = [
    "ChaosEngine", "Fault", "FaultSpec", "InjectedFault",
    "active_engine", "chaos_point", "inject",
    "chaos_ping_stream", "run_chaos_soak", "format_chaos_ledger",
]


def __getattr__(name: str):
    if name == "chaos_ping_stream":
        from .streams import chaos_ping_stream
        return chaos_ping_stream
    if name in ("run_chaos_soak", "format_chaos_ledger"):
        from . import soak
        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
