"""Deterministic, seed-driven fault injection.

A :class:`ChaosEngine` owns a set of :class:`FaultSpec` rules ("fail
5% of atomic writes", "always crash the detector for truck-7") and a
:class:`numpy.random.SeedSequence`-derived stream *per fault site*, so
the k-th decision at a site is a pure function of ``(seed, site, k)`` —
never of wall clock or scheduling.  Running the same soak with the same
seed reproduces the same fault ledger bit for bit.

Production code is instrumented with :func:`chaos_point` calls at its
fault sites — a module-global lookup that costs one ``is None`` check
when no engine is installed.  Install an engine with the context
manager (``with ChaosEngine(seed=7, specs=[...]):``) or the
:func:`inject` decorator.

Fault sites instrumented across the repository::

    io.write         atomic_write_bytes     fail | torn (partial bytes)
    io.rename        replace_file           fail
    io.read          load_checked_json/npz  fail
    parallel.task    parallel_map dispatch  crash | hang | wrong
    stream.ping      chaos_ping_stream      corrupt | duplicate | skew
    detector.batch   fleet batched detect   fail
    detector.forward fleet per-session      fail   (key = "truck|day")
    fleet.snapshot   fleet snapshot build   fail   (key = "truck|day")
    serve.worker     FleetService submit    kill | crash | hang
                                                   (key = shard index)

The injected faults are *additive or recoverable by design*: an engine
only ever raises injected exceptions, emits extra hostile pings, or
tears files mid-write — it never silently mutates healthy data in
place.  That is what lets chaos soaks assert bit-identical healthy
output against a fault-free run with the same data seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["FaultSpec", "Fault", "ChaosEngine", "chaos_point",
           "active_engine", "inject", "InjectedFault"]


class InjectedFault(OSError):
    """Exception type raised for injected IO-style faults.

    Subclasses ``OSError`` so the production retry paths treat injected
    faults exactly like real transient IO errors — chaos exercises the
    same handlers real faults would hit.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, how often.

    ``rate`` is the per-hit firing probability (1.0 = always).  ``keys``
    restricts the rule to specific hit keys (e.g. one truck's sessions).
    ``max_fires`` stops the rule after N firings; ``param`` carries a
    kind-specific knob (torn-write cut position in bytes, hang duration
    in seconds, clock-skew offset).
    """

    site: str
    kind: str
    rate: float = 1.0
    keys: frozenset[str] | None = None
    max_fires: int | None = None
    param: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.keys is not None:
            object.__setattr__(self, "keys",
                               frozenset(str(k) for k in self.keys))


@dataclass(frozen=True)
class Fault:
    """One fired fault decision, handed to the instrumented call site.

    ``draw`` is the uniform variate that fired the rule; ``aux`` is a
    second deterministic variate for the site to shape the fault with
    (cut position, corruption variant).  Picklable, so parallel workers
    can apply decisions drawn in the parent.
    """

    spec: FaultSpec
    seq: int            # global ledger position
    fire: int           # n-th firing of this spec (1-based)
    key: str | None
    draw: float
    aux: float

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def param(self) -> float | None:
        return self.spec.param

    def cut(self, size: int) -> int:
        """Torn-write cut position in ``[0, size]``.

        Uses ``spec.param`` when set (crash-consistency fuzzers sweep
        it over every byte boundary), otherwise the deterministic
        ``aux`` draw.
        """
        if self.param is not None:
            return max(0, min(int(self.param), size))
        return int(self.aux * (size + 1)) if size >= 0 else 0


def _site_spawn_key(site: str) -> int:
    digest = hashlib.blake2b(site.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class _SpecState:
    spec: FaultSpec
    fires: int = 0


class ChaosEngine:
    """Installable fault injector with a replayable ledger."""

    def __init__(self, seed: int = 0,
                 specs: Iterable[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self._specs: list[_SpecState] = [_SpecState(s) for s in specs]
        self._rngs: dict[str, np.random.Generator] = {}
        self._ledger: list[dict] = []

    # ------------------------------------------------------------------
    def _rng(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(np.random.SeedSequence(
                self.seed, spawn_key=(_site_spawn_key(site),)))
            self._rngs[site] = rng
        return rng

    def hit(self, site: str, key: str | None = None) -> Fault | None:
        """Evaluate one pass through a fault site.

        Specs matching ``(site, key)`` are consulted in registration
        order; the first one whose draw fires wins.  Every consulted
        spec consumes exactly one draw from the site's stream whether
        it fires or not, so the decision sequence is independent of
        which rules happen to fire first.
        """
        fault: Fault | None = None
        for state in self._specs:
            spec = state.spec
            if spec.site != site:
                continue
            if spec.keys is not None and str(key) not in spec.keys:
                continue
            if spec.max_fires is not None and state.fires >= spec.max_fires:
                continue
            draw = float(self._rng(site).random())
            if fault is None and draw < spec.rate:
                state.fires += 1
                aux = float(self._rng(site).random())
                fault = Fault(spec=spec, seq=len(self._ledger),
                              fire=state.fires,
                              key=None if key is None else str(key),
                              draw=draw, aux=aux)
                self._ledger.append({
                    "seq": fault.seq, "site": site, "kind": spec.kind,
                    "key": fault.key, "fire": fault.fire,
                    "draw": round(draw, 12),
                })
        return fault

    # ------------------------------------------------------------------
    @property
    def ledger(self) -> list[dict]:
        """Every fired fault, in order — JSON-safe and replayable."""
        return [dict(entry) for entry in self._ledger]

    def fired(self, site: str | None = None) -> int:
        if site is None:
            return len(self._ledger)
        return sum(1 for entry in self._ledger if entry["site"] == site)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosEngine":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a ChaosEngine is already installed")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        _ACTIVE = None


_ACTIVE: ChaosEngine | None = None


def active_engine() -> ChaosEngine | None:
    """The installed engine, or ``None`` (the production fast path)."""
    return _ACTIVE


def chaos_point(site: str, key: str | None = None) -> Fault | None:
    """Evaluate a fault site; ``None`` (no fault) when chaos is off."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.hit(site, key)


def inject(seed: int = 0, specs: Sequence[FaultSpec] = ()):
    """Decorator: run the wrapped callable under a fresh engine.

    The engine is exposed to the callable via the keyword argument
    ``chaos_engine`` when its signature accepts one.
    """
    def decorate(fn):
        def wrapped(*args, **kwargs):
            with ChaosEngine(seed=seed, specs=specs) as engine:
                if "chaos_engine" in getattr(
                        fn, "__code__", None).co_varnames:
                    kwargs.setdefault("chaos_engine", engine)
                return fn(*args, **kwargs)
        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped
    return decorate
