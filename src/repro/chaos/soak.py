"""The seeded fleet chaos soak: hostile everything, healthy answers.

One function, :func:`run_chaos_soak`, is the executable form of this
repository's fault-tolerance claim.  It runs the same fleet twice on the
same ping replay — once clean, once under an installed
:class:`~repro.chaos.core.ChaosEngine` that corrupts pings, duplicates
retransmissions, skews clocks, fails and tears IO, crashes pool workers,
knocks over batched detector passes, and permanently poisons one chosen
session — and then checks, truck by truck:

* every *healthy* truck-day's final verdict matches the fault-free run
  (same pair, ``allclose`` distribution at ``rtol=1e-9``, same
  provenance);
* the poisoned session lands in the quarantine dead-letter store with
  replayable state (the soak actually rebuilds a
  :class:`~repro.stream.TruckSession` from the stored metadata);
* no exception escapes ``ingest`` / ``tick`` / ``flush_all`` — the soak
  calls them bare, so an escape fails the soak loudly;
* the supervised :func:`~repro.perf.parallel_map` stage returns correct
  results despite injected worker crashes and hangs.

Everything — injected faults included — derives from one seed, so the
ledger and the verdicts replay bit-identically: run the soak twice with
the same seed and you get the same report (``repro chaos
--check-determinism`` does exactly that).
"""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path

import numpy as np

from ..supervise import RetryPolicy
from .core import ChaosEngine, FaultSpec

__all__ = ["run_chaos_soak", "format_chaos_ledger", "default_fault_specs",
           "build_soak_fleet_data"]

#: Tick the fleet after this many ingested pings.
_TICK_EVERY = 400


def build_soak_fleet_data(data_seed: int = 13, num_trajectories: int = 50,
                          num_trucks: int = 20):
    """The soak's synthetic world + dataset (same recipe as the tests)."""
    from ..data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
    world = SyntheticWorld(WorldConfig(seed=data_seed))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=num_trajectories,
                      num_trucks=num_trucks, seed=data_seed),
        world=world)
    return world, dataset


def _tiny_detector(world, samples):
    """A LEAD fitted just enough to emit real verdicts, quickly."""
    from ..detection import DetectorTrainingConfig
    from ..encoding import AutoencoderTrainingConfig
    from ..pipeline import LEAD, LEADConfig
    config = LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    lead = LEAD(world.pois, config)
    lead.fit(samples[:8])
    return lead


def default_fault_specs(poison_key: str) -> list[FaultSpec]:
    """The soak's standard hostility mix.

    Rates are tuned so every recovery path fires while staying inside
    the retry budgets of the supervised layers — a healthy truck must
    never exhaust its retries, or the convergence assertion could not
    hold for every seed.  ``poison_key`` (``"truck|day"``) names the one
    session whose snapshot *always* fails: the quarantine's customer.
    """
    return [
        # Additive stream hostility (neutralized by ingest by design).
        FaultSpec("stream.ping", "corrupt", rate=0.02),
        FaultSpec("stream.ping", "duplicate", rate=0.02),
        FaultSpec("stream.ping", "skew", rate=0.01),
        # Flaky spill/restore IO (absorbed by the fleet's io_retry; the
        # read rate is low and the soak's retry budget deep, because an
        # exhausted *restore* loses state and would rightly fail the
        # convergence assertion).
        FaultSpec("io.write", "torn", rate=0.02),
        FaultSpec("io.write", "fail", rate=0.05),
        FaultSpec("io.read", "fail", rate=0.02),
        # Batched detector knocked over twice (per-session fallback).
        FaultSpec("detector.batch", "fail", rate=0.2, max_fires=2),
        # Worker crashes in the supervised parallel stage.
        FaultSpec("parallel.task", "crash", rate=0.2, max_fires=4),
        # One permanently poisoned session.
        FaultSpec("fleet.snapshot", "fail", keys={poison_key}),
    ]


def _soak_task(index: int) -> int:
    """The supervised parallel stage's task (module-level: picklable)."""
    return index * index


def _final_verdicts(manager, pings) -> dict:
    """Ingest ``pings`` with periodic ticks, then flush everything."""
    for count, ping in enumerate(pings, start=1):
        manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                       day=ping.day)
        if count % _TICK_EVERY == 0:
            manager.tick()
    manager.tick()
    return {(v.truck_id, v.day): v for v in manager.flush_all()}


def _verdict_digest(finals: dict) -> str:
    """Bit-exact digest of a final-verdict map (determinism checks)."""
    h = hashlib.sha256()
    for key in sorted(finals):
        verdict = finals[key]
        h.update(repr((key, verdict.pair, verdict.confidence)).encode())
        if verdict.distribution is not None:
            h.update(np.asarray(verdict.distribution, dtype=np.float64)
                     .tobytes())
    return h.hexdigest()


def _verdicts_match(chaotic, baseline) -> bool:
    """The *verdict* must converge; the audit trail may not.

    Injected garbage pings are dropped by sanitize, which truthfully
    records them in the provenance notes — so notes (and the
    ``sanitized`` flag) legitimately differ between the runs.  The
    decision payload — pair, probability distribution, confidence, and
    the degradation tier that produced it — must be identical.
    """
    if baseline.pair != chaotic.pair:
        return False
    if baseline.confidence != chaotic.confidence:
        return False
    a, b = baseline.distribution, chaotic.distribution
    if (a is None) != (b is None):
        return False
    if a is not None and not np.allclose(b, a, rtol=1e-9, atol=0.0):
        return False
    pa, pb = baseline.provenance, chaotic.provenance
    if (pa is None) != (pb is None):
        return False
    if pa is not None and pa.tier != pb.tier:
        return False
    return True


def run_chaos_soak(seed: int = 7, *, detector=None, samples=None,
                   data_seed: int = 13, num_trajectories: int = 50,
                   num_trucks: int = 20, fit_detector: bool = True,
                   specs: list[FaultSpec] | None = None,
                   max_sessions: int = 12, workdir=None,
                   poison_key: str | None = None) -> dict:
    """Run the chaos soak; returns a JSON-safe report (see module doc).

    ``seed`` drives *only* the injected faults; the data and model come
    from ``data_seed`` (or the provided ``samples`` / ``detector``), so
    sweeping ``seed`` soaks the same fleet under different hostility.
    ``report["ok"]`` is the overall pass/fail; ``report["ledger"]`` is
    the deterministic fault ledger.
    """
    from ..perf import parallel_map
    from ..stream import FleetConfig, FleetSessionManager, TruckSession
    from ..stream.replay import dataset_ping_stream, scramble_stream

    if samples is None:
        world, dataset = build_soak_fleet_data(data_seed, num_trajectories,
                                               num_trucks)
        samples = dataset.samples
        if detector is None and fit_detector:
            detector = _tiny_detector(world, samples)

    base_pings = scramble_stream(dataset_ping_stream(samples), window=4,
                                 seed=data_seed)
    if poison_key is None:
        first = base_pings[0]
        poison_key = f"{first.truck_id}|{first.day}"
    if specs is None:
        specs = default_fault_specs(poison_key)

    # ---- fault-free baseline --------------------------------------
    # Everything stays resident: no spills, no restores — the purest
    # reference run the chaotic one must converge to.
    baseline = _final_verdicts(
        FleetSessionManager(detector, FleetConfig(
            max_sessions=1_000_000, reorder_capacity=16)),
        base_pings)

    # ---- chaotic run ----------------------------------------------
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = cleanup.name
    workdir = Path(workdir)
    try:
        with ChaosEngine(seed, specs) as engine:
            from .streams import chaos_ping_stream
            chaotic_pings = chaos_ping_stream(base_pings,
                                              reorder_capacity=16)
            # The tight session budget forces constant spill/restore
            # under fire; the deep retry budget makes a *restore* loss
            # (which would legitimately diverge a healthy truck)
            # astronomically unlikely at the configured read rate.
            manager = FleetSessionManager(detector, FleetConfig(
                max_sessions=max_sessions, reorder_capacity=16,
                checkpoint_dir=workdir / "sessions",
                quarantine_dir=workdir / "quarantine",
                io_retry=RetryPolicy(max_attempts=5, backoff_base_s=0.0,
                                     jitter=0.0)))
            finals = _final_verdicts(manager, chaotic_pings)

            # Supervised parallel stage under injected worker crashes.
            parallel_counters: dict[str, int] = {}
            parallel_results = parallel_map(
                _soak_task, range(32), workers=2,
                retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                                  timeout_s=30.0),
                counters=parallel_counters)
            ledger = list(engine.ledger)
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    # ---- verification ---------------------------------------------
    mismatched = []
    for key, reference in baseline.items():
        if f"{key[0]}|{key[1]}" == poison_key:
            continue
        if key not in finals or not _verdicts_match(finals[key], reference):
            mismatched.append(list(key))
    healthy_total = len(baseline) - 1

    entry = manager.quarantine.get(poison_key)
    replayable = False
    if entry is not None and "state" in entry.metadata:
        try:
            rebuilt = TruckSession.from_state(entry.metadata["state"])
            replayable = f"{rebuilt.truck_id}|{rebuilt.day}" == poison_key
        except Exception:  # noqa: BLE001 - replayability is the check
            replayable = False
    stray = [k for k in manager.quarantine.keys() if k != poison_key]

    parallel_ok = parallel_results == [i * i for i in range(32)]
    ok = (not mismatched and entry is not None and replayable
          and not stray and parallel_ok)
    return {
        "seed": seed,
        "ok": bool(ok),
        "truck_days": len(baseline),
        "pings": {
            "clean": len(base_pings),
            "chaotic": len(chaotic_pings),
            "injected": len(chaotic_pings) - len(base_pings),
        },
        "healthy": {
            "total": healthy_total,
            "matched": healthy_total - len(mismatched),
            "mismatched": mismatched,
        },
        "poison": {
            "key": poison_key,
            "quarantined": entry is not None,
            "stage": entry.stage if entry is not None else None,
            "error_type": entry.error_type if entry is not None else None,
            "replayable": replayable,
            "stray_quarantined_keys": stray,
        },
        "parallel": {"ok": parallel_ok, "counters": parallel_counters},
        "faults_fired": len(ledger),
        "quarantine": manager.quarantine.summary(),
        "fleet": manager.stats(),
        "verdict_digest": _verdict_digest(finals),
        "ledger": ledger,
    }


def format_chaos_ledger(report: dict) -> str:
    """Human-readable fault / recovery ledger for one soak report."""
    lines = [
        f"chaos soak  seed={report['seed']}  "
        f"{'PASS' if report['ok'] else 'FAIL'}",
        f"  pings     {report['pings']['clean']} clean + "
        f"{report['pings']['injected']} injected",
        f"  faults    {report['faults_fired']} fired",
    ]
    by_site: dict[str, int] = {}
    for fault in report["ledger"]:
        label = f"{fault['site']}:{fault['kind']}"
        by_site[label] = by_site.get(label, 0) + 1
    for label in sorted(by_site):
        lines.append(f"    {label:<24} x{by_site[label]}")
    fleet = report["fleet"]["fleet"]
    lines.append(
        "  recovery  "
        f"detect_retries={fleet['detect_retries']} "
        f"batch_fallbacks={fleet['detect_batch_failures']} "
        f"spill_failures={fleet['spill_failures']} "
        f"restore_failures={fleet['restore_failures']} "
        f"quarantined={fleet['sessions_quarantined']}")
    lines.append(
        "  parallel  "
        f"ok={report['parallel']['ok']} "
        f"counters={report['parallel']['counters']}")
    healthy = report["healthy"]
    lines.append(
        f"  verdicts  {healthy['matched']}/{healthy['total']} healthy "
        "truck-days match the fault-free run (rtol=1e-9)")
    poison = report["poison"]
    lines.append(
        f"  poison    {poison['key']} quarantined={poison['quarantined']} "
        f"stage={poison['stage']} replayable={poison['replayable']}")
    lines.append(f"  digest    {report['verdict_digest'][:16]}")
    return "\n".join(lines)
