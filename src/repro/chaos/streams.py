"""Ping-stream fault injection: hostile traffic, healthy answers.

:func:`chaos_ping_stream` feeds a replay stream through the installed
:class:`~repro.chaos.core.ChaosEngine`, injecting the hostility real
GPS uplinks exhibit.  Every injected fault is **additive** — a garbage
ping, a verbatim retransmission, a stale-clocked retransmission — and
each is provably neutralized by the ingest path (sanitize, duplicate
drop, late drop), so a fleet fed the chaotic stream converges to the
same verdicts as one fed the clean stream.  That invariant is what the
chaos soak asserts.

Fault kinds at site ``"stream.ping"`` (key = ``"truck|day"``):

* ``corrupt`` — an extra ping with a non-finite or out-of-range fix
  (the ``aux`` draw picks the variant); dropped by per-ping sanitize.
* ``duplicate`` — the truck's previous ping re-emitted verbatim (a
  buffered-upload retry); dropped by the reorder buffer's duplicate
  guard.
* ``skew`` — a retransmission of the previous fix stamped *before the
  truck's first ping* (a receiver whose clock reset); dropped as
  too-late.  Only injected once the session has released at least one
  fix (more than ``reorder_capacity`` pings seen), because before any
  release a prehistoric timestamp would be accepted and poison the
  cleaned trajectory — chaos must stay recoverable by design.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..stream.replay import Ping
from .core import chaos_point

__all__ = ["chaos_ping_stream"]

#: corrupt-variant table indexed by the aux draw.
_CORRUPT_VARIANTS = ("nan_lat", "nan_lng", "nan_t", "lat_out_of_range",
                     "lng_out_of_range")


def _corrupt_ping(ping: Ping, aux: float) -> Ping:
    variant = _CORRUPT_VARIANTS[int(aux * len(_CORRUPT_VARIANTS))
                                % len(_CORRUPT_VARIANTS)]
    lat, lng, t = ping.lat, ping.lng, ping.t
    if variant == "nan_lat":
        lat = math.nan
    elif variant == "nan_lng":
        lng = math.inf
    elif variant == "nan_t":
        t = math.nan
    elif variant == "lat_out_of_range":
        lat = 91.0 + 10.0 * aux
    else:
        lng = -(181.0 + 10.0 * aux)
    return Ping(ping.truck_id, ping.day, lat, lng, t)


def chaos_ping_stream(pings: Iterable[Ping],
                      reorder_capacity: int = 16) -> list[Ping]:
    """Inject stream faults after each real ping; order preserved.

    With no engine installed this is the identity (a list copy).  The
    injected extras depend only on the engine's seed and the input
    order, so the chaotic stream itself replays deterministically.
    """
    out: list[Ping] = []
    last_real: dict[tuple[str, str], Ping] = {}
    first_t: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], int] = {}
    for ping in pings:
        session = (ping.truck_id, ping.day)
        out.append(ping)
        counts[session] = counts.get(session, 0) + 1
        first_t.setdefault(session, ping.t)
        previous = last_real.get(session)
        last_real[session] = ping
        fault = chaos_point("stream.ping", key=f"{ping.truck_id}|{ping.day}")
        if fault is None:
            continue
        if fault.kind == "corrupt":
            out.append(_corrupt_ping(ping, fault.aux))
        elif fault.kind == "duplicate":
            if previous is not None:
                out.append(previous)
        elif fault.kind == "skew":
            if previous is not None and counts[session] > reorder_capacity:
                stale_t = first_t[session] - 1.0 - 100.0 * fault.aux
                out.append(Ping(previous.truck_id, previous.day,
                                previous.lat, previous.lng, stale_t))
        else:
            raise ValueError(
                f"unknown stream.ping fault kind {fault.kind!r}")
    return out
