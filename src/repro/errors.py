"""Typed exception taxonomy for the whole reproduction.

Every anticipated failure mode of the system has a dedicated exception
class, so callers can distinguish "the artifact on disk is damaged"
from "the model was never trained" from "this trajectory is garbage"
without parsing message strings.  Where an ad-hoc built-in exception was
raised historically (``RuntimeError`` for unfitted models,
``ValueError`` for bad inputs), the typed replacement *also* subclasses
that built-in, so existing ``except``/``pytest.raises`` sites keep
working while new code can catch the precise type.

Hierarchy::

    ReproError
    ├── ArtifactCorruptedError        (checksum/parse failures on disk)
    │   └── CheckpointCorruptedError  (damaged training checkpoint)
    ├── NotFittedError                (also RuntimeError)
    ├── InvalidTrajectoryError        (also ValueError)
    ├── DetectorUnavailableError      (also ValueError)
    ├── NumericalInstabilityError     (also ArithmeticError)
    ├── TaskFailedError               (a parallel_map task failed)
    └── CircuitOpenError              (a circuit breaker rejected a call)
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "ReproError",
    "ArtifactCorruptedError",
    "CheckpointCorruptedError",
    "NotFittedError",
    "InvalidTrajectoryError",
    "DetectorUnavailableError",
    "NumericalInstabilityError",
    "TaskFailedError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class of every typed error raised by this package."""


class ArtifactCorruptedError(ReproError):
    """An on-disk artifact failed integrity checking or parsing.

    Raised instead of the underlying ``zipfile``/``json``/``numpy``
    exception so callers see *which* file is damaged and *why*, and can
    decide to retrain/regenerate rather than crash.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"artifact {self.path} is corrupted: {reason}")


class CheckpointCorruptedError(ArtifactCorruptedError):
    """A training checkpoint is unreadable; training restarts from zero."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used before ``fit()`` (or a successful ``load()``)."""


class InvalidTrajectoryError(ReproError, ValueError):
    """A trajectory violates the input contract beyond repair.

    Examples: all coordinates non-finite, fewer than two usable fixes,
    latitude/longitude outside the valid range everywhere.
    """


class DetectorUnavailableError(ReproError, ValueError):
    """The requested detector (direction) is absent or failed to answer."""


class NumericalInstabilityError(ReproError, ArithmeticError):
    """Training or inference produced NaN/Inf beyond tolerated limits."""


class TaskFailedError(ReproError):
    """A ``parallel_map`` task failed beyond recovery.

    Raised identically by the serial and the worker-pool execution
    paths, with the failing item's position attached, so callers can
    report or skip the exact input that broke regardless of how the map
    was scheduled.  The original exception is chained as ``__cause__``.
    """

    def __init__(self, index: int, message: str) -> None:
        self.index = int(index)
        super().__init__(f"task {self.index} failed: {message}")


class CircuitOpenError(ReproError):
    """A circuit breaker is open; the protected call was not attempted."""

    def __init__(self, name: str, failures: int) -> None:
        self.name = name
        self.failures = failures
        super().__init__(
            f"circuit {name!r} is open after {failures} consecutive "
            "failures; call rejected")
