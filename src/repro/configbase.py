"""Uniform config (de)serialization shared by every dataclass config.

Every public config object — :class:`~repro.pipeline.LEADConfig` and its
nested feature/encoder/trainer configs, the streaming
:class:`~repro.stream.FleetConfig` and the serving
:class:`~repro.serve.ServeConfig` — round-trips through the same two
functions so CLI subcommands, checkpoint manifests and tests all speak
one dialect:

* :func:`config_to_dict` renders a config as a JSON-safe nested dict
  (``Path`` becomes ``str``, tuples become lists, nested dataclasses
  recurse).
* :func:`config_from_dict` rebuilds a config from such a dict and
  **rejects unknown keys** with an error that names both the offending
  keys and the valid ones — a typo in a ``--config`` JSON file fails
  loudly instead of silently keeping a default.

Mix :class:`ConfigMixin` into a dataclass to expose both as
``to_dict()`` / ``from_dict()`` methods.

Fields can opt out of serialization (mutable run-state such as
``RetryPolicy.counters``, or values with no JSON form) by declaring
``field(..., metadata={"config_exclude": True})``; such fields are
skipped on the way out and rejected as unknown on the way in, so the
dict surface only ever contains round-trippable knobs.
"""

from __future__ import annotations

import dataclasses
import typing
from pathlib import Path
from types import UnionType

__all__ = ["ConfigMixin", "config_to_dict", "config_from_dict"]

#: Field metadata key that removes a field from the dict surface.
EXCLUDE_KEY = "config_exclude"


def _config_fields(cls) -> list[dataclasses.Field]:
    """The fields of ``cls`` that participate in dict round-trips."""
    return [f for f in dataclasses.fields(cls)
            if f.init and not f.metadata.get(EXCLUDE_KEY)]


def _value_to_jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return config_to_dict(value)
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (tuple, list)):
        return [_value_to_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"config field value {value!r} of type {type(value).__name__} "
        "has no JSON form; mark the field config_exclude or add a case")


def config_to_dict(config) -> dict:
    """Render a dataclass config as a JSON-safe nested dict."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError(f"expected a dataclass instance, got {config!r}")
    return {f.name: _value_to_jsonable(getattr(config, f.name))
            for f in _config_fields(type(config))}


def _unwrap_optional(hint):
    """Strip ``X | None`` down to its non-None members (or the hint)."""
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is UnionType:
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        return args
    return [hint]


def _coerce(hint, value, *, field_name: str, cls_name: str):
    """Coerce a JSON value toward the annotated field type."""
    if value is None:
        return None
    for candidate in _unwrap_optional(hint):
        if dataclasses.is_dataclass(candidate) and isinstance(candidate, type):
            if dataclasses.is_dataclass(value):
                return value
            if isinstance(value, dict):
                return config_from_dict(candidate, value)
            raise TypeError(
                f"{cls_name}.{field_name} expects a mapping for "
                f"{candidate.__name__}, got {type(value).__name__}")
        if candidate is Path and isinstance(value, str):
            return Path(value)
        if typing.get_origin(candidate) is tuple and \
                isinstance(value, (list, tuple)):
            return tuple(value)
    return value


def config_from_dict(cls, data) -> object:
    """Build ``cls`` from a dict, rejecting keys it does not declare."""
    if dataclasses.is_dataclass(data) and isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise TypeError(
            f"{cls.__name__}.from_dict expects a mapping, "
            f"got {type(data).__name__}")
    declared = _config_fields(cls)
    allowed = {f.name for f in declared}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} key(s) {unknown}; "
            f"valid keys: {sorted(allowed)}")
    hints = typing.get_type_hints(cls)
    kwargs = {name: _coerce(hints.get(name), data[name],
                            field_name=name, cls_name=cls.__name__)
              for name in data}
    return cls(**kwargs)


class ConfigMixin:
    """Adds uniform ``to_dict`` / ``from_dict`` to a dataclass config."""

    def to_dict(self) -> dict:
        """This config as a JSON-safe nested dict."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        return config_from_dict(cls, data)
