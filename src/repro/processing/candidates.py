"""Candidate trajectory generation (paper §III).

Enumerates every ordered pair of stay points ``(i', j')`` with
``i' < j'``, producing the n(n-1)/2 candidate trajectories that form the
search space for loaded trajectory detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import CandidateTrajectory, MovePoint, StayPoint

__all__ = ["CandidateGenerator"]


@dataclass(frozen=True)
class CandidateGenerator:
    """Enumerate candidate trajectories from extracted stay/move points.

    ``max_stay_points`` guards against pathological inputs: the paper's
    one-day trajectories have 3-14 stay points (3-91 candidates), and the
    quadratic enumeration stays cheap in that regime.
    """

    max_stay_points: int = 64

    def generate(self, stay_points: list[StayPoint],
                 move_points: list[MovePoint]) -> list[CandidateTrajectory]:
        """All candidates in forward-group order: (1,2), (1,3), ..., (n-1,n)."""
        n = len(stay_points)
        if n > self.max_stay_points:
            raise ValueError(
                f"{n} stay points exceed the {self.max_stay_points} cap")
        if len(move_points) != max(0, n - 1):
            raise ValueError(
                f"{n} stay points require {max(0, n - 1)} move points, "
                f"got {len(move_points)}")
        candidates = []
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                candidates.append(
                    CandidateTrajectory.build(stay_points, move_points, i, j))
        return candidates

    @staticmethod
    def count_for(num_stay_points: int) -> int:
        """n(n-1)/2 — how many candidates ``n`` stay points produce."""
        return num_stay_points * (num_stay_points - 1) // 2
