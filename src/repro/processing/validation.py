"""Validation and repair of hostile raw trajectory input.

Production GPS feeds contain garbage the paper's curated dataset never
shows: NaN/Inf fixes from cold receivers, coordinates outside the valid
range, out-of-order or duplicated timestamps from buffered uploads, and
frozen clocks.  The online detection path routes every raw trajectory
through :func:`sanitize_trajectory` (or, for raw arrays that may not
even satisfy :class:`Trajectory`'s constructor, through
:func:`trajectory_from_raw`), which repairs what it can and raises a
typed :class:`~repro.errors.InvalidTrajectoryError` only when nothing
usable remains.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidTrajectoryError
from ..model import Trajectory

__all__ = ["MIN_USABLE_FIXES", "trajectory_issues", "sanitize_trajectory",
           "trajectory_from_raw", "ReorderBuffer", "ReorderStats",
           "monotonize_stream"]

#: Fewer usable fixes than this cannot form even one move segment.
MIN_USABLE_FIXES = 2


def _usable_mask(lats: np.ndarray, lngs: np.ndarray,
                 ts: np.ndarray) -> np.ndarray:
    """Fixes that are finite and inside the valid coordinate range."""
    return (np.isfinite(lats) & np.isfinite(lngs) & np.isfinite(ts)
            & (np.abs(lats) <= 90.0) & (np.abs(lngs) <= 180.0))


def trajectory_issues(trajectory: Trajectory) -> list[str]:
    """Human-readable list of contract violations (empty when clean).

    Non-monotonic timestamps cannot occur here — :class:`Trajectory`
    enforces strictly increasing ``ts`` at construction — so the checks
    cover what *can* slip through: non-finite and out-of-range
    coordinates, and too few points.
    """
    issues: list[str] = []
    bad = int((~_usable_mask(trajectory.lats, trajectory.lngs,
                             trajectory.ts)).sum())
    if bad:
        issues.append(f"{bad} non-finite or out-of-range fixes")
    if len(trajectory) < MIN_USABLE_FIXES:
        issues.append(f"only {len(trajectory)} fixes "
                      f"(need >= {MIN_USABLE_FIXES})")
    return issues


def sanitize_trajectory(trajectory: Trajectory
                        ) -> tuple[Trajectory, list[str]]:
    """Drop unusable fixes; return the repaired trajectory and notes.

    Raises :class:`InvalidTrajectoryError` when fewer than
    :data:`MIN_USABLE_FIXES` usable fixes remain.
    """
    mask = _usable_mask(trajectory.lats, trajectory.lngs, trajectory.ts)
    kept = int(mask.sum())
    if kept < MIN_USABLE_FIXES:
        raise InvalidTrajectoryError(
            f"trajectory {trajectory.truck_id or '?'}/"
            f"{trajectory.day or '?'} has {kept} usable fixes of "
            f"{len(trajectory)} (need >= {MIN_USABLE_FIXES})")
    if kept == len(trajectory):
        return trajectory, []
    dropped = len(trajectory) - kept
    repaired = Trajectory(trajectory.lats[mask], trajectory.lngs[mask],
                          trajectory.ts[mask],
                          truck_id=trajectory.truck_id, day=trajectory.day)
    return repaired, [f"dropped {dropped} non-finite/out-of-range fixes"]


def trajectory_from_raw(lats, lngs, ts, truck_id: str = "",
                        day: str = "") -> tuple[Trajectory, list[str]]:
    """Build a :class:`Trajectory` from hostile raw arrays.

    Repairs, in order: non-finite / out-of-range fixes (dropped),
    out-of-order timestamps (stable-sorted), duplicate or frozen-clock
    timestamps (first fix of each instant kept).  Returns the repaired
    trajectory plus a note per repair applied; raises
    :class:`InvalidTrajectoryError` when fewer than
    :data:`MIN_USABLE_FIXES` fixes survive.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    ts = np.asarray(ts, dtype=np.float64)
    if not (lats.shape == lngs.shape == ts.shape) or lats.ndim != 1:
        raise InvalidTrajectoryError(
            "lats, lngs, ts must be 1-D arrays of equal length")
    notes: list[str] = []
    mask = _usable_mask(lats, lngs, ts)
    if not mask.all():
        notes.append(f"dropped {int((~mask).sum())} "
                     "non-finite/out-of-range fixes")
        lats, lngs, ts = lats[mask], lngs[mask], ts[mask]
    if ts.size and (np.diff(ts) < 0).any():
        order = np.argsort(ts, kind="stable")
        lats, lngs, ts = lats[order], lngs[order], ts[order]
        notes.append("re-sorted out-of-order timestamps")
    if ts.size:
        keep = np.concatenate([[True], np.diff(ts) > 0])
        if not keep.all():
            notes.append(f"dropped {int((~keep).sum())} duplicate/"
                         "frozen-clock fixes")
            lats, lngs, ts = lats[keep], lngs[keep], ts[keep]
    if ts.size < MIN_USABLE_FIXES:
        raise InvalidTrajectoryError(
            f"raw input for {truck_id or '?'}/{day or '?'} has "
            f"{int(ts.size)} usable fixes (need >= {MIN_USABLE_FIXES})")
    return Trajectory(lats, lngs, ts, truck_id=truck_id, day=day), notes


# ---------------------------------------------------------------------------
# Timestamp-monotonicity sanitization for ping *streams*
# ---------------------------------------------------------------------------
@dataclass
class ReorderStats:
    """Counters of one :class:`ReorderBuffer` instance.

    ``reordered`` counts accepted pings that arrived behind a
    later-stamped ping (and were put back in place); ``dropped`` counts
    pings discarded as too late (older than an already-released
    timestamp) or as exact duplicates.  Nothing in the buffer ever
    raises — hostility is counted, not crashed on.
    """

    pushed: int = 0
    released: int = 0
    reordered: int = 0
    dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"pushed": self.pushed, "released": self.released,
                "reordered": self.reordered, "dropped": self.dropped}


class ReorderBuffer:
    """Bounded buffer restoring timestamp monotonicity of a ping stream.

    GPS uplinks batch, retry, and interleave: fixes arrive out of order
    within a bounded window.  :class:`~repro.model.Trajectory` (and the
    stay-point scanner) require strictly increasing timestamps, so both
    the streaming ingest path and any caller feeding raw ping streams
    route fixes through this buffer first.

    * ``policy="reorder"`` (default) holds up to ``capacity`` fixes in a
      min-heap and releases the oldest one per overflow, so any ping
      displaced by at most ``capacity`` positions is silently put back
      in place (counted in :attr:`ReorderStats.reordered`).
    * ``policy="drop"`` releases in-order pings immediately and drops
      every late ping (``capacity`` is ignored).

    In both policies a ping at or behind the newest *released* timestamp
    can no longer be placed and is dropped (counted, never raised); the
    released stream is strictly increasing by construction.  The offline
    analogue — an unbounded full sort — lives in
    :func:`trajectory_from_raw`.
    """

    def __init__(self, capacity: int = 16, policy: str = "reorder") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in ("reorder", "drop"):
            raise ValueError(f"unknown policy {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.stats = ReorderStats()
        self._heap: list[tuple[float, int, float, float]] = []
        self._seq = 0                      # tie-break for equal timestamps
        self._last_released = -np.inf
        self._max_seen = -np.inf

    def __len__(self) -> int:
        return len(self._heap)

    def _release(self) -> tuple[float, float, float] | None:
        t, _, lat, lng = heapq.heappop(self._heap)
        if t <= self._last_released:
            self.stats.dropped += 1        # duplicate inside the window
            return None
        self._last_released = t
        self.stats.released += 1
        return (lat, lng, t)

    def push(self, lat: float, lng: float, t: float
             ) -> list[tuple[float, float, float]]:
        """Ingest one fix; return the ``(lat, lng, t)`` fixes released
        by it, in strictly increasing timestamp order."""
        self.stats.pushed += 1
        t = float(t)
        if not np.isfinite(t) or t <= self._last_released:
            self.stats.dropped += 1
            return []
        if self.policy == "drop":
            self._last_released = t
            self.stats.released += 1
            return [(float(lat), float(lng), t)]
        if t < self._max_seen:
            self.stats.reordered += 1
        else:
            self._max_seen = t
        heapq.heappush(self._heap, (t, self._seq, float(lat), float(lng)))
        self._seq += 1
        released: list[tuple[float, float, float]] = []
        while len(self._heap) > self.capacity:
            fix = self._release()
            if fix is not None:
                released.append(fix)
        return released

    def flush(self) -> list[tuple[float, float, float]]:
        """Drain every buffered fix, in timestamp order."""
        released: list[tuple[float, float, float]] = []
        while self._heap:
            fix = self._release()
            if fix is not None:
                released.append(fix)
        return released

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-serializable resume state (exact float round-trip)."""
        return {"capacity": self.capacity, "policy": self.policy,
                "heap": [list(item) for item in self._heap],
                "seq": self._seq,
                "last_released": (None if self._last_released == -np.inf
                                  else self._last_released),
                "max_seen": (None if self._max_seen == -np.inf
                             else self._max_seen),
                "stats": self.stats.as_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "ReorderBuffer":
        buffer = cls(int(state["capacity"]), str(state["policy"]))
        buffer._heap = [(float(t), int(seq), float(lat), float(lng))
                        for t, seq, lat, lng in state["heap"]]
        heapq.heapify(buffer._heap)
        buffer._seq = int(state["seq"])
        last = state["last_released"]
        buffer._last_released = -np.inf if last is None else float(last)
        seen = state["max_seen"]
        buffer._max_seen = -np.inf if seen is None else float(seen)
        buffer.stats = ReorderStats(**state["stats"])
        return buffer


def monotonize_stream(lats, lngs, ts, capacity: int = 16,
                      policy: str = "reorder"
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 ReorderStats]:
    """Repair a whole ping stream through a :class:`ReorderBuffer`.

    Convenience wrapper for offline callers holding raw arrays: the
    returned arrays have strictly increasing timestamps, and the stats
    say what it cost.  Never raises on ordering hostility (shape
    mismatches are still a caller bug and do raise).
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    ts = np.asarray(ts, dtype=np.float64)
    if not (lats.shape == lngs.shape == ts.shape) or lats.ndim != 1:
        raise InvalidTrajectoryError(
            "lats, lngs, ts must be 1-D arrays of equal length")
    buffer = ReorderBuffer(capacity=capacity, policy=policy)
    fixes: list[tuple[float, float, float]] = []
    for lat, lng, t in zip(lats, lngs, ts):
        fixes.extend(buffer.push(lat, lng, t))
    fixes.extend(buffer.flush())
    if not fixes:
        empty = np.zeros(0)
        return empty, empty.copy(), empty.copy(), buffer.stats
    out_lat, out_lng, out_t = (np.asarray(col, dtype=np.float64)
                               for col in zip(*fixes))
    return out_lat, out_lng, out_t, buffer.stats
