"""Validation and repair of hostile raw trajectory input.

Production GPS feeds contain garbage the paper's curated dataset never
shows: NaN/Inf fixes from cold receivers, coordinates outside the valid
range, out-of-order or duplicated timestamps from buffered uploads, and
frozen clocks.  The online detection path routes every raw trajectory
through :func:`sanitize_trajectory` (or, for raw arrays that may not
even satisfy :class:`Trajectory`'s constructor, through
:func:`trajectory_from_raw`), which repairs what it can and raises a
typed :class:`~repro.errors.InvalidTrajectoryError` only when nothing
usable remains.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidTrajectoryError
from ..model import Trajectory

__all__ = ["MIN_USABLE_FIXES", "trajectory_issues", "sanitize_trajectory",
           "trajectory_from_raw"]

#: Fewer usable fixes than this cannot form even one move segment.
MIN_USABLE_FIXES = 2


def _usable_mask(lats: np.ndarray, lngs: np.ndarray,
                 ts: np.ndarray) -> np.ndarray:
    """Fixes that are finite and inside the valid coordinate range."""
    return (np.isfinite(lats) & np.isfinite(lngs) & np.isfinite(ts)
            & (np.abs(lats) <= 90.0) & (np.abs(lngs) <= 180.0))


def trajectory_issues(trajectory: Trajectory) -> list[str]:
    """Human-readable list of contract violations (empty when clean).

    Non-monotonic timestamps cannot occur here — :class:`Trajectory`
    enforces strictly increasing ``ts`` at construction — so the checks
    cover what *can* slip through: non-finite and out-of-range
    coordinates, and too few points.
    """
    issues: list[str] = []
    bad = int((~_usable_mask(trajectory.lats, trajectory.lngs,
                             trajectory.ts)).sum())
    if bad:
        issues.append(f"{bad} non-finite or out-of-range fixes")
    if len(trajectory) < MIN_USABLE_FIXES:
        issues.append(f"only {len(trajectory)} fixes "
                      f"(need >= {MIN_USABLE_FIXES})")
    return issues


def sanitize_trajectory(trajectory: Trajectory
                        ) -> tuple[Trajectory, list[str]]:
    """Drop unusable fixes; return the repaired trajectory and notes.

    Raises :class:`InvalidTrajectoryError` when fewer than
    :data:`MIN_USABLE_FIXES` usable fixes remain.
    """
    mask = _usable_mask(trajectory.lats, trajectory.lngs, trajectory.ts)
    kept = int(mask.sum())
    if kept < MIN_USABLE_FIXES:
        raise InvalidTrajectoryError(
            f"trajectory {trajectory.truck_id or '?'}/"
            f"{trajectory.day or '?'} has {kept} usable fixes of "
            f"{len(trajectory)} (need >= {MIN_USABLE_FIXES})")
    if kept == len(trajectory):
        return trajectory, []
    dropped = len(trajectory) - kept
    repaired = Trajectory(trajectory.lats[mask], trajectory.lngs[mask],
                          trajectory.ts[mask],
                          truck_id=trajectory.truck_id, day=trajectory.day)
    return repaired, [f"dropped {dropped} non-finite/out-of-range fixes"]


def trajectory_from_raw(lats, lngs, ts, truck_id: str = "",
                        day: str = "") -> tuple[Trajectory, list[str]]:
    """Build a :class:`Trajectory` from hostile raw arrays.

    Repairs, in order: non-finite / out-of-range fixes (dropped),
    out-of-order timestamps (stable-sorted), duplicate or frozen-clock
    timestamps (first fix of each instant kept).  Returns the repaired
    trajectory plus a note per repair applied; raises
    :class:`InvalidTrajectoryError` when fewer than
    :data:`MIN_USABLE_FIXES` fixes survive.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    ts = np.asarray(ts, dtype=np.float64)
    if not (lats.shape == lngs.shape == ts.shape) or lats.ndim != 1:
        raise InvalidTrajectoryError(
            "lats, lngs, ts must be 1-D arrays of equal length")
    notes: list[str] = []
    mask = _usable_mask(lats, lngs, ts)
    if not mask.all():
        notes.append(f"dropped {int((~mask).sum())} "
                     "non-finite/out-of-range fixes")
        lats, lngs, ts = lats[mask], lngs[mask], ts[mask]
    if ts.size and (np.diff(ts) < 0).any():
        order = np.argsort(ts, kind="stable")
        lats, lngs, ts = lats[order], lngs[order], ts[order]
        notes.append("re-sorted out-of-order timestamps")
    if ts.size:
        keep = np.concatenate([[True], np.diff(ts) > 0])
        if not keep.all():
            notes.append(f"dropped {int((~keep).sum())} duplicate/"
                         "frozen-clock fixes")
            lats, lngs, ts = lats[keep], lngs[keep], ts[keep]
    if ts.size < MIN_USABLE_FIXES:
        raise InvalidTrajectoryError(
            f"raw input for {truck_id or '?'}/{day or '?'} has "
            f"{int(ts.size)} usable fixes (need >= {MIN_USABLE_FIXES})")
    return Trajectory(lats, lngs, ts, truck_id=truck_id, day=day), notes
