"""End-to-end raw trajectory processing (LEAD component 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..model import (CandidateTrajectory, LoadedLabel, MovePoint, StayPoint,
                     Trajectory)
from .candidates import CandidateGenerator
from .noise import NoiseFilter
from .staypoints import StayPointExtractor, extract_move_points

__all__ = ["ProcessedTrajectory", "RawTrajectoryProcessor"]


@dataclass(frozen=True)
class ProcessedTrajectory:
    """The result of processing one raw trajectory.

    ``label_pair`` is the ground-truth ``(i', j')`` ordinal pair when a
    label was supplied and could be mapped onto the extracted stay points,
    otherwise ``None``.
    """

    raw: Trajectory
    cleaned: Trajectory
    stay_points: tuple[StayPoint, ...]
    move_points: tuple[MovePoint, ...]
    candidates: tuple[CandidateTrajectory, ...]
    label_pair: tuple[int, int] | None = None

    @property
    def num_stay_points(self) -> int:
        return len(self.stay_points)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @cached_property
    def _pair_index(self) -> dict[tuple[int, int], int]:
        """Precomputed pair → enumeration-index map (built once).

        ``candidate_index`` is called once per candidate inside hot
        evaluation loops; a linear scan there made them O(n²) in the
        candidate count.
        """
        return {candidate.pair: index
                for index, candidate in enumerate(self.candidates)}

    def candidate_index(self, pair: tuple[int, int]) -> int:
        """Position of candidate ``(i', j')`` in the enumeration order."""
        try:
            return self._pair_index[pair]
        except KeyError:
            raise KeyError(f"no candidate with pair {pair}") from None

    @property
    def labeled_candidate_index(self) -> int | None:
        if self.label_pair is None:
            return None
        return self.candidate_index(self.label_pair)


@dataclass(frozen=True)
class RawTrajectoryProcessor:
    """Noise filtering -> stay point extraction -> candidate generation."""

    noise_filter: NoiseFilter = field(default_factory=NoiseFilter)
    extractor: StayPointExtractor = field(default_factory=StayPointExtractor)
    generator: CandidateGenerator = field(default_factory=CandidateGenerator)
    min_stay_points: int = 2

    def process(self, trajectory: Trajectory,
                label: LoadedLabel | None = None
                ) -> ProcessedTrajectory | None:
        """Process one raw trajectory.

        Returns ``None`` when fewer than ``min_stay_points`` stay points
        are found (no candidate can be formed), mirroring how such days are
        excluded from the paper's dataset.
        """
        cleaned = self.noise_filter.filter(trajectory)
        stay_points = self.extractor.extract(cleaned)
        if len(stay_points) < self.min_stay_points:
            return None
        move_points = extract_move_points(cleaned, stay_points)
        candidates = self.generator.generate(stay_points, move_points)
        label_pair = None
        if label is not None:
            label_pair = label.to_ordinal_pair(stay_points)
        return ProcessedTrajectory(
            raw=trajectory, cleaned=cleaned,
            stay_points=tuple(stay_points),
            move_points=tuple(move_points),
            candidates=tuple(candidates),
            label_pair=label_pair)
