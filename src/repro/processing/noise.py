"""Heuristic speed-based noise filtering (paper §III, after Zheng [6]).

The filter walks the trajectory and computes the travel speed of each GPS
point relative to the last *kept* point; points implying a speed above
``Vmax`` are dropped.  Comparing against the last kept point (rather than
the immediate predecessor) removes runs of consecutive outliers and avoids
discarding the good point that follows an outlier.

The sequential last-kept rule looks inherently scalar, but it has a key
property: *between drops, the last kept point is simply the predecessor*.
So one vectorized pass computes every consecutive-segment speed, and the
walk bulk-accepts whole stretches up to the next precomputed violation;
only the points immediately after a drop (where "last kept" lags behind)
need scalar re-checks until the chain re-joins.  On clean data the filter
is a single array pass with zero per-point Python work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import haversine_m, haversine_rad_m, speed_kmh
from ..model import Trajectory

__all__ = ["NoiseFilter"]


@dataclass(frozen=True)
class NoiseFilter:
    """Remove GPS points whose implied speed exceeds ``max_speed_kmh``.

    The paper sets ``Vmax`` to 130 km/h: HCT trucks essentially never move
    faster, so any faster implied jump is sensor error.
    """

    max_speed_kmh: float = 130.0

    def __post_init__(self) -> None:
        if self.max_speed_kmh <= 0:
            raise ValueError("max_speed_kmh must be positive")

    # ------------------------------------------------------------------
    def _walk(self, lats, lngs, ts, violations: np.ndarray,
              prev: tuple[float, float, float] | None) -> list[int]:
        """Resolve the last-kept-point rule given precomputed
        consecutive-speed ``violations`` (point indices whose segment
        from the predecessor is implausible).

        While the chain is intact (last kept == predecessor) the rule
        reduces to the consecutive check, so everything up to the next
        violation is accepted in one slice.  After a drop the last kept
        point lags behind and each candidate needs a scalar check until
        some point is accepted right after its kept predecessor — from
        there the chain is re-joined and bulk mode resumes.
        """
        n = len(ts)
        vmax = self.max_speed_kmh
        keep: list[int] = []
        if prev is None:
            keep.append(0)
            i = 1
        else:
            i = 0
        num_violations = violations.size
        vp = 0  # index of the first violation not yet passed
        while i < n:
            if keep and keep[-1] == i - 1:
                while vp < num_violations and violations[vp] < i:
                    vp += 1
                nxt = int(violations[vp]) if vp < num_violations else n
                if nxt > i:
                    keep.extend(range(i, nxt))
                    i = nxt
                    continue
            if keep:
                j = keep[-1]
                plat, plng, pt = float(lats[j]), float(lngs[j]), float(ts[j])
            else:
                plat, plng, pt = prev
            distance = haversine_m(plat, plng, float(lats[i]),
                                   float(lngs[i]))
            if speed_kmh(distance, float(ts[i]) - pt) <= vmax:
                keep.append(i)
            i += 1
        return keep

    def _consecutive_violations(self, speeds: np.ndarray) -> np.ndarray:
        """Point indices whose segment from the predecessor is too fast."""
        return np.flatnonzero(speeds > self.max_speed_kmh) + 1

    # ------------------------------------------------------------------
    def filter(self, trajectory: Trajectory) -> Trajectory:
        """Return a cleaned copy of ``trajectory``.

        One vectorized speed pass decides everything on clean stretches;
        the scalar last-kept walk only runs around actual outliers.
        Produces the identical kept set to :meth:`filter_scalar` (the
        per-point reference implementation).
        """
        n = len(trajectory)
        if n <= 1:
            return trajectory
        violations = self._consecutive_violations(
            trajectory.segment_speeds_kmh())
        if violations.size == 0:
            return trajectory  # every point chained: nothing to copy
        keep = self._walk(trajectory.lats, trajectory.lngs, trajectory.ts,
                          violations, prev=None)
        index = np.asarray(keep)
        return Trajectory(trajectory.lats[index], trajectory.lngs[index],
                          trajectory.ts[index],
                          truck_id=trajectory.truck_id, day=trajectory.day)

    def filter_scalar(self, trajectory: Trajectory) -> Trajectory:
        """Reference per-point implementation (the equivalence oracle)."""
        n = len(trajectory)
        if n <= 1:
            return trajectory
        keep = [0]
        for i in range(1, n):
            j = keep[-1]
            distance = haversine_m(trajectory.lats[j], trajectory.lngs[j],
                                   trajectory.lats[i], trajectory.lngs[i])
            dt = float(trajectory.ts[i] - trajectory.ts[j])
            if speed_kmh(distance, dt) <= self.max_speed_kmh:
                keep.append(i)
        index = np.asarray(keep)
        return Trajectory(trajectory.lats[index], trajectory.lngs[index],
                          trajectory.ts[index],
                          truck_id=trajectory.truck_id, day=trajectory.day)

    def kept_indices(self, lats, lngs, ts,
                     prev: tuple[float, float, float] | None = None
                     ) -> np.ndarray:
        """Kept indices for a block of in-order fixes, vectorized.

        ``prev`` is the last kept fix *before* this block (streaming
        resume): when given, even the first point is checked against it;
        when ``None`` the first point is kept unconditionally, matching
        :meth:`filter`.  This is the bulk-ingest entry the stream layer
        uses to push a whole released batch through the filter at once.
        """
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        ts = np.asarray(ts, dtype=np.float64)
        n = ts.size
        if n == 0:
            return np.zeros(0, dtype=np.intp)
        if n >= 2:
            rlat = np.radians(lats)
            rlng = np.radians(lngs)
            distances = haversine_rad_m(rlat[:-1], rlng[:-1],
                                        rlat[1:], rlng[1:])
            dt = np.diff(ts)
            with np.errstate(divide="ignore", invalid="ignore"):
                speeds = np.where(dt > 0,
                                  distances / np.maximum(dt, 1e-12) * 3.6,
                                  np.inf)
            violations = self._consecutive_violations(speeds)
        else:
            violations = np.zeros(0, dtype=np.intp)
        if violations.size == 0 and prev is None:
            return np.arange(n, dtype=np.intp)
        keep = self._walk(lats, lngs, ts, violations, prev=prev)
        return np.asarray(keep, dtype=np.intp)

    def removed_count(self, trajectory: Trajectory) -> int:
        """Number of points the filter would drop."""
        return len(trajectory) - len(self.filter(trajectory))
