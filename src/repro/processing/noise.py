"""Heuristic speed-based noise filtering (paper §III, after Zheng [6]).

The filter walks the trajectory and computes the travel speed of each GPS
point relative to the last *kept* point; points implying a speed above
``Vmax`` are dropped.  Comparing against the last kept point (rather than
the immediate predecessor) removes runs of consecutive outliers and avoids
discarding the good point that follows an outlier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import haversine_m, speed_kmh
from ..model import Trajectory

__all__ = ["NoiseFilter"]


@dataclass(frozen=True)
class NoiseFilter:
    """Remove GPS points whose implied speed exceeds ``max_speed_kmh``.

    The paper sets ``Vmax`` to 130 km/h: HCT trucks essentially never move
    faster, so any faster implied jump is sensor error.
    """

    max_speed_kmh: float = 130.0

    def __post_init__(self) -> None:
        if self.max_speed_kmh <= 0:
            raise ValueError("max_speed_kmh must be positive")

    def filter(self, trajectory: Trajectory) -> Trajectory:
        """Return a cleaned copy of ``trajectory``."""
        n = len(trajectory)
        if n <= 1:
            return trajectory
        keep = [0]
        for i in range(1, n):
            j = keep[-1]
            distance = haversine_m(trajectory.lats[j], trajectory.lngs[j],
                                   trajectory.lats[i], trajectory.lngs[i])
            dt = float(trajectory.ts[i] - trajectory.ts[j])
            if speed_kmh(distance, dt) <= self.max_speed_kmh:
                keep.append(i)
        index = np.asarray(keep)
        return Trajectory(trajectory.lats[index], trajectory.lngs[index],
                          trajectory.ts[index],
                          truck_id=trajectory.truck_id, day=trajectory.day)

    def removed_count(self, trajectory: Trajectory) -> int:
        """Number of points the filter would drop."""
        return len(trajectory) - len(self.filter(trajectory))
