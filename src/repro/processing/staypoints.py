"""Stay point extraction (paper §III, after Li et al. [7]).

Anchor-based rule algorithm: starting from an anchor point, collect the
maximal run of successors within ``Dmax`` meters of the anchor; if the run
lasts at least ``Tmin`` seconds it is a stay point and the anchor jumps past
it, otherwise the anchor advances by one.  The produced stay points are
temporally consecutive and numbered 1..n, as the paper requires for stay
point ordinals.

The algorithm is implemented once, as the *resumable*
:class:`StayPointScanner` that consumes GPS fixes one at a time and emits
a stay-point span the moment it is decidable.  Offline extraction
(:meth:`StayPointExtractor.extract`) is literally a replay of the online
path — feed every point, then flush — so the streaming subsystem
(:mod:`repro.stream`) and the batch pipeline can never disagree about
where stay points are.

Why a span is decidable online: a run breaks the moment a fix falls more
than ``Dmax`` from the anchor, and the accept/reject decision for the
broken run depends only on fixes *before* the breaking one.  Future
fixes can extend an unbroken run but never reopen a broken one, so every
span emitted mid-stream is final.  Only the trailing (still open) run
must wait for :meth:`StayPointScanner.finish`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import haversine_m
from ..model import MovePoint, StayPoint, Trajectory

__all__ = ["StayPointScanner", "StayPointExtractor", "extract_move_points"]


class StayPointScanner:
    """Resumable core of the stay-point rule algorithm.

    Feed cleaned GPS fixes in timestamp order with :meth:`feed`; each
    call returns the (possibly empty) list of ``(start, end)`` index
    spans that became decidable, in ordinal order.  :meth:`finish`
    decides the trailing open run exactly the way the offline algorithm
    treats the end of a trajectory.  The scanner owns the growing point
    buffer, so a session checkpoint (:meth:`state` / :meth:`from_state`)
    captures everything needed to resume mid-day, bit-for-bit.
    """

    __slots__ = ("max_distance_m", "min_duration_s", "lats", "lngs", "ts",
                 "_anchor", "_last", "_scan", "_emitted", "_finished")

    def __init__(self, max_distance_m: float = 500.0,
                 min_duration_s: float = 15.0 * 60.0) -> None:
        if max_distance_m <= 0 or min_duration_s <= 0:
            raise ValueError("thresholds must be positive")
        self.max_distance_m = max_distance_m
        self.min_duration_s = min_duration_s
        #: The cleaned fixes seen so far (plain lists: append-only).
        self.lats: list[float] = []
        self.lngs: list[float] = []
        self.ts: list[float] = []
        self._anchor = 0      # first index of the current run
        self._last = 0        # last index within Dmax of the anchor
        self._scan = 1        # next index to test against the anchor
        self._emitted = 0     # spans emitted so far (== next ordinal - 1)
        self._finished = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ts)

    @property
    def num_emitted(self) -> int:
        """How many stay-point spans have been emitted so far."""
        return self._emitted

    @property
    def open_run(self) -> tuple[int, int] | None:
        """The undecided trailing run ``(anchor, last)``, if any."""
        if self._anchor >= len(self.ts):
            return None
        return (self._anchor, self._last)

    def open_run_qualifies(self) -> bool:
        """True when the open run would already be a stay point if the
        stream ended now (it can only keep qualifying: the run's
        duration is non-decreasing until it breaks)."""
        run = self.open_run
        if run is None:
            return False
        anchor, last = run
        return (last > anchor
                and self.ts[last] - self.ts[anchor] >= self.min_duration_s)

    # ------------------------------------------------------------------
    def _close_run(self) -> tuple[int, int] | None:
        """Decide the current run, advance the anchor, reset the scan."""
        anchor, last = self._anchor, self._last
        span = None
        if (last > anchor
                and self.ts[last] - self.ts[anchor] >= self.min_duration_s):
            span = (anchor, last)
            self._emitted += 1
            self._anchor = last + 1
        else:
            self._anchor = anchor + 1
        self._last = self._anchor
        self._scan = self._anchor + 1
        return span

    def _advance(self, final: bool) -> list[tuple[int, int]]:
        """Run the rule algorithm as far as the buffered fixes allow."""
        spans: list[tuple[int, int]] = []
        n = len(self.ts)
        while True:
            broke = False
            while self._scan < n:
                k = self._scan
                distance = haversine_m(
                    self.lats[self._anchor], self.lngs[self._anchor],
                    self.lats[k], self.lngs[k])
                if distance > self.max_distance_m:
                    broke = True
                    break
                self._last = k
                self._scan = k + 1
            if broke:
                span = self._close_run()
                if span is not None:
                    spans.append(span)
                continue  # rescan the buffer from the new anchor
            # Ran out of buffered fixes without breaking the run.
            if not final:
                return spans  # a future fix may still extend the run
            if self._anchor >= n - 1:
                return spans  # offline outer-loop exit: anchor at the end
            span = self._close_run()
            if span is not None:
                spans.append(span)

    # ------------------------------------------------------------------
    def feed(self, lat: float, lng: float, t: float
             ) -> list[tuple[int, int]]:
        """Ingest one cleaned fix; return newly decidable spans.

        Timestamps must be strictly increasing (the stream layer's
        reorder buffer guarantees this before fixes reach the scanner).
        """
        if self._finished:
            raise ValueError("scanner already finished")
        if self.ts and t <= self.ts[-1]:
            raise ValueError("scanner requires strictly increasing "
                             "timestamps")
        self.lats.append(float(lat))
        self.lngs.append(float(lng))
        self.ts.append(float(t))
        return self._advance(final=False)

    def finish(self) -> list[tuple[int, int]]:
        """End of stream: decide everything still open (idempotent)."""
        if self._finished:
            return []
        self._finished = True
        return self._advance(final=True)

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-serializable resume state (exact: floats round-trip)."""
        return {
            "max_distance_m": self.max_distance_m,
            "min_duration_s": self.min_duration_s,
            "lats": list(self.lats), "lngs": list(self.lngs),
            "ts": list(self.ts),
            "anchor": self._anchor, "last": self._last, "scan": self._scan,
            "emitted": self._emitted, "finished": self._finished,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StayPointScanner":
        scanner = cls(state["max_distance_m"], state["min_duration_s"])
        scanner.lats = [float(v) for v in state["lats"]]
        scanner.lngs = [float(v) for v in state["lngs"]]
        scanner.ts = [float(v) for v in state["ts"]]
        scanner._anchor = int(state["anchor"])
        scanner._last = int(state["last"])
        scanner._scan = int(state["scan"])
        scanner._emitted = int(state["emitted"])
        scanner._finished = bool(state["finished"])
        return scanner


@dataclass(frozen=True)
class StayPointExtractor:
    """Extract stay points with distance threshold ``Dmax`` and time
    threshold ``Tmin`` (defaults are the paper's tuned values, §VI-A)."""

    max_distance_m: float = 500.0
    min_duration_s: float = 15.0 * 60.0

    def __post_init__(self) -> None:
        if self.max_distance_m <= 0 or self.min_duration_s <= 0:
            raise ValueError("thresholds must be positive")

    def scanner(self) -> StayPointScanner:
        """A fresh resumable scanner with this extractor's thresholds."""
        return StayPointScanner(self.max_distance_m, self.min_duration_s)

    def extract(self, trajectory: Trajectory) -> list[StayPoint]:
        """All stay points of a (cleaned) trajectory, in temporal order.

        Implemented as a ping-by-ping replay of the online scanner, so
        offline extraction and streaming ingest share one code path.
        """
        scanner = self.scanner()
        spans: list[tuple[int, int]] = []
        lats, lngs, ts = trajectory.lats, trajectory.lngs, trajectory.ts
        for i in range(len(trajectory)):
            spans.extend(scanner.feed(lats[i], lngs[i], ts[i]))
        spans.extend(scanner.finish())
        return [StayPoint(trajectory, start, end, ordinal=k + 1)
                for k, (start, end) in enumerate(spans)]


def extract_move_points(trajectory: Trajectory,
                        stay_points: list[StayPoint]) -> list[MovePoint]:
    """Move points connecting consecutive stay points (Definition 5).

    Each move point spans from the last GPS point of the preceding stay
    point to the first GPS point of the following one (inclusive), so a
    move segment is never empty even when sampling skipped the transit.
    """
    move_points: list[MovePoint] = []
    for a, b in zip(stay_points, stay_points[1:]):
        if b.start < a.end:
            raise ValueError("stay points overlap or are out of order")
        move_points.append(MovePoint(trajectory, a.end, b.start,
                                     ordinal=a.ordinal))
    return move_points
