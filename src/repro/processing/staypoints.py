"""Stay point extraction (paper §III, after Li et al. [7]).

Anchor-based rule algorithm: starting from an anchor point, collect the
maximal run of successors within ``Dmax`` meters of the anchor; if the run
lasts at least ``Tmin`` seconds it is a stay point and the anchor jumps past
it, otherwise the anchor advances by one.  The produced stay points are
temporally consecutive and numbered 1..n, as the paper requires for stay
point ordinals.

The algorithm is implemented once, as the *resumable*
:class:`StayPointScanner` that consumes GPS fixes one at a time and emits
a stay-point span the moment it is decidable.  Offline extraction
(:meth:`StayPointExtractor.extract`) is literally a replay of the online
path — feed every point, then flush — so the streaming subsystem
(:mod:`repro.stream`) and the batch pipeline can never disagree about
where stay points are.

Why a span is decidable online: a run breaks the moment a fix falls more
than ``Dmax`` from the anchor, and the accept/reject decision for the
broken run depends only on fixes *before* the breaking one.  Future
fixes can extend an unbroken run but never reopen a broken one, so every
span emitted mid-stream is final.  Only the trailing (still open) run
must wait for :meth:`StayPointScanner.finish`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geo import EARTH_RADIUS_M, haversine_m, haversine_rad_m
from ..model import MovePoint, StayPoint, Trajectory

__all__ = ["StayPointScanner", "StayPointExtractor", "extract_move_points"]

#: Candidate points examined per vectorized scan round.  Bounds the
#: temporary arrays of :meth:`StayPointScanner.feed_batch` regardless of
#: trajectory length; anything ≥ a few hundred amortizes numpy call
#: overhead completely.
_SCAN_CHUNK = 2048

#: Below this many candidates a tight :mod:`math` loop beats numpy's
#: per-call overhead (the common case for per-ping streaming feeds,
#: where the unscanned tail is a single fix).
_SCALAR_CUTOFF = 24


def _haversine_rad_scalar(lat1: float, lng1: float,
                          lat2: float, lng2: float) -> float:
    """Scalar :mod:`math`-lane haversine over radian coordinates."""
    sin_dlat = math.sin((lat2 - lat1) / 2.0)
    sin_dlng = math.sin((lng2 - lng1) / 2.0)
    h = (sin_dlat * sin_dlat
         + math.cos(lat1) * math.cos(lat2) * sin_dlng * sin_dlng)
    if h > 1.0:
        h = 1.0
    elif h < 0.0:
        h = 0.0
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


class StayPointScanner:
    """Resumable core of the stay-point rule algorithm.

    Feed cleaned GPS fixes in timestamp order with :meth:`feed`; each
    call returns the (possibly empty) list of ``(start, end)`` index
    spans that became decidable, in ordinal order.  :meth:`finish`
    decides the trailing open run exactly the way the offline algorithm
    treats the end of a trajectory.  The scanner owns the growing point
    buffer, so a session checkpoint (:meth:`state` / :meth:`from_state`)
    captures everything needed to resume mid-day, bit-for-bit.
    """

    __slots__ = ("max_distance_m", "min_duration_s", "lats", "lngs", "ts",
                 "_anchor", "_last", "_scan", "_emitted", "_finished",
                 "_rad_lat", "_rad_lng", "_rlat", "_rlng", "_far",
                 "_batch_lane")

    def __init__(self, max_distance_m: float = 500.0,
                 min_duration_s: float = 15.0 * 60.0) -> None:
        if max_distance_m <= 0 or min_duration_s <= 0:
            raise ValueError("thresholds must be positive")
        self.max_distance_m = max_distance_m
        self.min_duration_s = min_duration_s
        #: The cleaned fixes seen so far (plain lists: append-only).
        self.lats: list[float] = []
        self.lngs: list[float] = []
        self.ts: list[float] = []
        self._anchor = 0      # first index of the current run
        self._last = 0        # last index within Dmax of the anchor
        self._scan = 1        # next index to test against the anchor
        self._emitted = 0     # spans emitted so far (== next ordinal - 1)
        self._finished = False
        #: Radian mirrors of ``lats``/``lngs``, kept twice: numpy
        #: buffers (doubling capacity) feed the chunked vectorized scan,
        #: and plain float lists feed the scalar head loop — indexing a
        #: Python list of floats is ~5x cheaper per element than boxing
        #: ``np.float64`` scalars out of an array.
        self._rad_lat = np.empty(64)
        self._rad_lng = np.empty(64)
        self._rlat: list[float] = []
        self._rlng: list[float] = []
        #: ``_far[i]`` ⇔ fix ``i+1`` is farther than ``Dmax`` from fix
        #: ``i``.  When a *fresh* run's first candidate is already far,
        #: the rule algorithm provably rejects and advances the anchor
        #: by one — so :meth:`_advance_batch` fast-forwards through
        #: whole moving stretches by walking these precomputed flags
        #: instead of re-deciding each anchor with a haversine.
        self._far: list[bool] = []
        #: Whether any :meth:`feed_batch` call happened; decides which
        #: lane :meth:`finish` uses so a purely scalar replay (the
        #: equivalence oracle) stays scalar end to end.
        self._batch_lane = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ts)

    @property
    def num_emitted(self) -> int:
        """How many stay-point spans have been emitted so far."""
        return self._emitted

    @property
    def open_run(self) -> tuple[int, int] | None:
        """The undecided trailing run ``(anchor, last)``, if any."""
        if self._anchor >= len(self.ts):
            return None
        return (self._anchor, self._last)

    def open_run_qualifies(self) -> bool:
        """True when the open run would already be a stay point if the
        stream ended now (it can only keep qualifying: the run's
        duration is non-decreasing until it breaks)."""
        run = self.open_run
        if run is None:
            return False
        anchor, last = run
        return (last > anchor
                and self.ts[last] - self.ts[anchor] >= self.min_duration_s)

    # ------------------------------------------------------------------
    def _close_run(self) -> tuple[int, int] | None:
        """Decide the current run, advance the anchor, reset the scan."""
        anchor, last = self._anchor, self._last
        span = None
        if (last > anchor
                and self.ts[last] - self.ts[anchor] >= self.min_duration_s):
            span = (anchor, last)
            self._emitted += 1
            self._anchor = last + 1
        else:
            self._anchor = anchor + 1
        self._last = self._anchor
        self._scan = self._anchor + 1
        return span

    def _advance(self, final: bool) -> list[tuple[int, int]]:
        """Run the rule algorithm as far as the buffered fixes allow."""
        spans: list[tuple[int, int]] = []
        n = len(self.ts)
        while True:
            broke = False
            while self._scan < n:
                k = self._scan
                distance = haversine_m(
                    self.lats[self._anchor], self.lngs[self._anchor],
                    self.lats[k], self.lngs[k])
                if distance > self.max_distance_m:
                    broke = True
                    break
                self._last = k
                self._scan = k + 1
            if broke:
                span = self._close_run()
                if span is not None:
                    spans.append(span)
                continue  # rescan the buffer from the new anchor
            # Ran out of buffered fixes without breaking the run.
            if not final:
                return spans  # a future fix may still extend the run
            if self._anchor >= n - 1:
                return spans  # offline outer-loop exit: anchor at the end
            span = self._close_run()
            if span is not None:
                spans.append(span)

    def _find_break(self, n: int) -> int | None:
        """First index in ``[_scan, n)`` farther than ``Dmax`` from the
        anchor, or ``None`` when the whole tail stays within range.

        The vectorized twin of the scalar inner while loop: one chunked
        haversine over the precomputed radian buffers instead of one
        scalar call per fix.  Short tails (the per-ping streaming case)
        take a tight :mod:`math` loop that beats numpy's call overhead.
        """
        rlat, rlng = self._rlat, self._rlng
        a_lat = rlat[self._anchor]
        a_lng = rlng[self._anchor]
        # Tight math loop over the first few candidates: most runs break
        # within a handful of fixes, and per-ping streaming feeds only
        # ever have a one-fix tail.
        head_end = min(self._scan + _SCALAR_CUTOFF, n)
        cos_a = math.cos(a_lat)
        sin = math.sin
        cos = math.cos
        asin = math.asin
        sqrt = math.sqrt
        diameter = 2.0 * EARTH_RADIUS_M
        dmax = self.max_distance_m
        for k in range(self._scan, head_end):
            sin_dlat = sin((rlat[k] - a_lat) / 2.0)
            sin_dlng = sin((rlng[k] - a_lng) / 2.0)
            h = (sin_dlat * sin_dlat
                 + cos_a * cos(rlat[k]) * sin_dlng * sin_dlng)
            if h > 1.0:
                h = 1.0
            elif h < 0.0:
                h = 0.0
            if diameter * asin(sqrt(h)) > dmax:
                return k
        # Doubling chunks beyond the head: a break ``d`` fixes away costs
        # O(d) scanned candidates, never a full fixed-width chunk.
        chunk_start, chunk = head_end, 64
        while chunk_start < n:
            chunk_end = min(chunk_start + chunk, n)
            distances = haversine_rad_m(
                a_lat, a_lng,
                self._rad_lat[chunk_start:chunk_end],
                self._rad_lng[chunk_start:chunk_end])
            far = distances > self.max_distance_m
            if far.any():
                return chunk_start + int(far.argmax())
            chunk_start = chunk_end
            chunk = min(chunk * 2, _SCAN_CHUNK)
        return None

    def _advance_batch(self, final: bool) -> list[tuple[int, int]]:
        """Vectorized :meth:`_advance`: identical state transitions —
        the scalar loop's post-conditions (``_scan``, ``_last``,
        ``_anchor``, spans) are reproduced exactly, it only finds each
        run break with :meth:`_find_break` instead of a per-fix scan."""
        spans: list[tuple[int, int]] = []
        n = len(self.ts)
        far = self._far
        while True:
            if self._scan == self._anchor + 1 and self._scan < n:
                # Fast-forward through a moving stretch: while the fresh
                # run's first candidate is already beyond Dmax, the
                # scalar loop breaks immediately, rejects (the run holds
                # only its anchor), and advances the anchor by one — a
                # pure pointer march this flag walk reproduces exactly.
                a = self._anchor
                stop = n - 1
                while a < stop and far[a]:
                    a += 1
                self._anchor = a
                self._last = a
                self._scan = a + 1
            broke = False
            if self._scan < n:
                k = self._find_break(n)
                if k is None:
                    self._last = n - 1
                    self._scan = n
                else:
                    self._last = k - 1
                    self._scan = k
                    broke = True
            if broke:
                span = self._close_run()
                if span is not None:
                    spans.append(span)
                continue  # rescan the buffer from the new anchor
            if not final:
                return spans
            if self._anchor >= n - 1:
                return spans
            span = self._close_run()
            if span is not None:
                spans.append(span)

    # ------------------------------------------------------------------
    def _ensure_capacity(self, need: int) -> None:
        """Grow the radian buffers to hold at least ``need`` fixes."""
        capacity = self._rad_lat.size
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        for name in ("_rad_lat", "_rad_lng"):
            old = getattr(self, name)
            grown = np.empty(capacity)
            grown[:old.size] = old
            setattr(self, name, grown)

    def feed(self, lat: float, lng: float, t: float
             ) -> list[tuple[int, int]]:
        """Ingest one cleaned fix; return newly decidable spans.

        Timestamps must be strictly increasing (the stream layer's
        reorder buffer guarantees this before fixes reach the scanner).

        This is the scalar reference path — :meth:`feed_batch` is the
        production lane, and equivalence tests replay both against each
        other.
        """
        if self._finished:
            raise ValueError("scanner already finished")
        if self.ts and t <= self.ts[-1]:
            raise ValueError("scanner requires strictly increasing "
                             "timestamps")
        n = len(self.ts)
        self._ensure_capacity(n + 1)
        # math.radians and np.radians multiply by the same double
        # constant, so the scalar and batch lanes fill identical bits.
        rad_lat = math.radians(lat)
        rad_lng = math.radians(lng)
        self._rad_lat[n] = rad_lat
        self._rad_lng[n] = rad_lng
        if n:
            self._far.append(_haversine_rad_scalar(
                self._rlat[-1], self._rlng[-1], rad_lat, rad_lng)
                > self.max_distance_m)
        self._rlat.append(rad_lat)
        self._rlng.append(rad_lng)
        self.lats.append(float(lat))
        self.lngs.append(float(lng))
        self.ts.append(float(t))
        return self._advance(final=False)

    def feed_batch(self, lats, lngs, ts) -> list[tuple[int, int]]:
        """Ingest many cleaned, time-ordered fixes at once.

        Emits exactly the spans that feeding the same fixes one
        :meth:`feed` call at a time would emit, and leaves the scanner
        in the identical state (same anchor/scan pointers, so
        checkpoints and later feeds cannot diverge either).  The win is
        how each run break is found: one chunked vectorized haversine
        over precomputed radian buffers instead of a Python loop of
        scalar calls — this is what makes offline extraction and bulk
        stream ingest array-at-a-time.
        """
        if self._finished:
            raise ValueError("scanner already finished")
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        ts = np.asarray(ts, dtype=np.float64)
        if not (lats.shape == lngs.shape == ts.shape) or lats.ndim != 1:
            raise ValueError("feed_batch needs equal-length 1-D arrays")
        count = ts.size
        if count == 0:
            return []
        if ((self.ts and ts[0] <= self.ts[-1])
                or (count > 1 and not (np.diff(ts) > 0).all())):
            raise ValueError("scanner requires strictly increasing "
                             "timestamps")
        n = len(self.ts)
        self._ensure_capacity(n + count)
        np.radians(lats, out=self._rad_lat[n:n + count])
        np.radians(lngs, out=self._rad_lng[n:n + count])
        total = n + count
        if total >= 2:
            lo = n - 1 if n else 0  # include the pair crossing the batch
            distances = haversine_rad_m(
                self._rad_lat[lo:total - 1], self._rad_lng[lo:total - 1],
                self._rad_lat[lo + 1:total], self._rad_lng[lo + 1:total])
            self._far.extend((distances > self.max_distance_m).tolist())
        self._rlat.extend(self._rad_lat[n:n + count].tolist())
        self._rlng.extend(self._rad_lng[n:n + count].tolist())
        self.lats.extend(lats.tolist())
        self.lngs.extend(lngs.tolist())
        self.ts.extend(ts.tolist())
        self._batch_lane = True
        return self._advance_batch(final=False)

    def finish(self) -> list[tuple[int, int]]:
        """End of stream: decide everything still open (idempotent)."""
        if self._finished:
            return []
        self._finished = True
        if self._batch_lane:
            return self._advance_batch(final=True)
        return self._advance(final=True)

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-serializable resume state (exact: floats round-trip)."""
        return {
            "max_distance_m": self.max_distance_m,
            "min_duration_s": self.min_duration_s,
            "lats": list(self.lats), "lngs": list(self.lngs),
            "ts": list(self.ts),
            "anchor": self._anchor, "last": self._last, "scan": self._scan,
            "emitted": self._emitted, "finished": self._finished,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StayPointScanner":
        scanner = cls(state["max_distance_m"], state["min_duration_s"])
        scanner.lats = [float(v) for v in state["lats"]]
        scanner.lngs = [float(v) for v in state["lngs"]]
        scanner.ts = [float(v) for v in state["ts"]]
        n = len(scanner.ts)
        scanner._ensure_capacity(n)
        scanner._rad_lat[:n] = np.radians(scanner.lats)
        scanner._rad_lng[:n] = np.radians(scanner.lngs)
        scanner._rlat = scanner._rad_lat[:n].tolist()
        scanner._rlng = scanner._rad_lng[:n].tolist()
        if n >= 2:
            distances = haversine_rad_m(
                scanner._rad_lat[:n - 1], scanner._rad_lng[:n - 1],
                scanner._rad_lat[1:n], scanner._rad_lng[1:n])
            scanner._far = (distances
                            > scanner.max_distance_m).tolist()
        scanner._anchor = int(state["anchor"])
        scanner._last = int(state["last"])
        scanner._scan = int(state["scan"])
        scanner._emitted = int(state["emitted"])
        scanner._finished = bool(state["finished"])
        return scanner


@dataclass(frozen=True)
class StayPointExtractor:
    """Extract stay points with distance threshold ``Dmax`` and time
    threshold ``Tmin`` (defaults are the paper's tuned values, §VI-A)."""

    max_distance_m: float = 500.0
    min_duration_s: float = 15.0 * 60.0

    def __post_init__(self) -> None:
        if self.max_distance_m <= 0 or self.min_duration_s <= 0:
            raise ValueError("thresholds must be positive")

    def scanner(self) -> StayPointScanner:
        """A fresh resumable scanner with this extractor's thresholds."""
        return StayPointScanner(self.max_distance_m, self.min_duration_s)

    def extract(self, trajectory: Trajectory) -> list[StayPoint]:
        """All stay points of a (cleaned) trajectory, in temporal order.

        Implemented as a single :meth:`StayPointScanner.feed_batch`
        replay of the online scanner (plus the flush), so offline
        extraction and streaming ingest share one code path — and both
        run the chunked vectorized scan rather than a per-fix loop.
        """
        scanner = self.scanner()
        spans = scanner.feed_batch(trajectory.lats, trajectory.lngs,
                                   trajectory.ts)
        spans.extend(scanner.finish())
        return [StayPoint(trajectory, start, end, ordinal=k + 1)
                for k, (start, end) in enumerate(spans)]


def extract_move_points(trajectory: Trajectory,
                        stay_points: list[StayPoint]) -> list[MovePoint]:
    """Move points connecting consecutive stay points (Definition 5).

    Each move point spans from the last GPS point of the preceding stay
    point to the first GPS point of the following one (inclusive), so a
    move segment is never empty even when sampling skipped the transit.
    """
    move_points: list[MovePoint] = []
    for a, b in zip(stay_points, stay_points[1:]):
        if b.start < a.end:
            raise ValueError("stay points overlap or are out of order")
        move_points.append(MovePoint(trajectory, a.end, b.start,
                                     ordinal=a.ordinal))
    return move_points
