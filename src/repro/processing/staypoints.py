"""Stay point extraction (paper §III, after Li et al. [7]).

Anchor-based rule algorithm: starting from an anchor point, collect the
maximal run of successors within ``Dmax`` meters of the anchor; if the run
lasts at least ``Tmin`` seconds it is a stay point and the anchor jumps past
it, otherwise the anchor advances by one.  The produced stay points are
temporally consecutive and numbered 1..n, as the paper requires for stay
point ordinals.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import haversine_m
from ..model import MovePoint, StayPoint, Trajectory

__all__ = ["StayPointExtractor", "extract_move_points"]


@dataclass(frozen=True)
class StayPointExtractor:
    """Extract stay points with distance threshold ``Dmax`` and time
    threshold ``Tmin`` (defaults are the paper's tuned values, §VI-A)."""

    max_distance_m: float = 500.0
    min_duration_s: float = 15.0 * 60.0

    def __post_init__(self) -> None:
        if self.max_distance_m <= 0 or self.min_duration_s <= 0:
            raise ValueError("thresholds must be positive")

    def extract(self, trajectory: Trajectory) -> list[StayPoint]:
        """All stay points of a (cleaned) trajectory, in temporal order."""
        n = len(trajectory)
        stay_points: list[StayPoint] = []
        anchor = 0
        while anchor < n - 1:
            # Maximal run of successors within Dmax of the anchor.
            last = anchor
            for k in range(anchor + 1, n):
                distance = haversine_m(
                    trajectory.lats[anchor], trajectory.lngs[anchor],
                    trajectory.lats[k], trajectory.lngs[k])
                if distance > self.max_distance_m:
                    break
                last = k
            duration = float(trajectory.ts[last] - trajectory.ts[anchor])
            if last > anchor and duration >= self.min_duration_s:
                stay_points.append(StayPoint(
                    trajectory, anchor, last,
                    ordinal=len(stay_points) + 1))
                anchor = last + 1
            else:
                anchor += 1
        return stay_points


def extract_move_points(trajectory: Trajectory,
                        stay_points: list[StayPoint]) -> list[MovePoint]:
    """Move points connecting consecutive stay points (Definition 5).

    Each move point spans from the last GPS point of the preceding stay
    point to the first GPS point of the following one (inclusive), so a
    move segment is never empty even when sampling skipped the transit.
    """
    move_points: list[MovePoint] = []
    for a, b in zip(stay_points, stay_points[1:]):
        if b.start < a.end:
            raise ValueError("stay points overlap or are out of order")
        move_points.append(MovePoint(trajectory, a.end, b.start,
                                     ordinal=a.ordinal))
    return move_points
