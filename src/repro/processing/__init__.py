"""Raw trajectory processing — LEAD component 1 (paper §III).

Noise filtering, stay point extraction, and candidate trajectory
generation (DESIGN.md S11-S13).
"""

from .noise import NoiseFilter
from .staypoints import (StayPointExtractor, StayPointScanner,
                         extract_move_points)
from .candidates import CandidateGenerator
from .pipeline import ProcessedTrajectory, RawTrajectoryProcessor
from .validation import (MIN_USABLE_FIXES, ReorderBuffer, ReorderStats,
                         monotonize_stream, sanitize_trajectory,
                         trajectory_from_raw, trajectory_issues)

__all__ = [
    "NoiseFilter", "StayPointExtractor", "StayPointScanner",
    "extract_move_points",
    "CandidateGenerator", "ProcessedTrajectory", "RawTrajectoryProcessor",
    "MIN_USABLE_FIXES", "ReorderBuffer", "ReorderStats",
    "monotonize_stream", "sanitize_trajectory", "trajectory_from_raw",
    "trajectory_issues",
]
