"""Atomic file writes: tmp file in the same directory + fsync + rename.

POSIX ``rename(2)`` within one filesystem is atomic, so readers observe
either the complete old file or the complete new file — never a torn
write.  All writers here funnel through :func:`replace_file`.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..chaos.core import InjectedFault, chaos_point

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json",
           "atomic_savez", "replace_file"]


def replace_file(tmp: Path, target: Path) -> Path:
    """Atomically move ``tmp`` over ``target`` (same-directory rename)."""
    fault = chaos_point("io.rename", key=target.name)
    if fault is not None:
        Path(tmp).unlink(missing_ok=True)
        raise InjectedFault(f"chaos: injected rename failure for {target}")
    os.replace(tmp, target)
    _fsync_directory(target.parent)
    return target


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename survives a power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    Under an installed :class:`~repro.chaos.core.ChaosEngine`, the
    ``io.write`` fault site fires here: ``fail`` raises before any byte
    lands, and ``torn`` simulates a crash of a *non-atomic* writer —
    partial bytes are deliberately written straight to ``path``
    (bypassing the tmp+rename discipline) before raising, so crash-
    consistency tests can prove the checked loaders reject every torn
    prefix instead of returning garbage.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fault = chaos_point("io.write", key=path.name)
    if fault is not None:
        if fault.kind == "torn":
            cut = fault.cut(len(data))
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            raise InjectedFault(
                f"chaos: torn write at byte {cut}/{len(data)} of {path}")
        raise InjectedFault(f"chaos: injected write failure for {path}")
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return replace_file(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> Path:
    """Atomically write a text file."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | Path, payload: object, *,
                      indent: int | None = None) -> Path:
    """Atomically serialize ``payload`` as JSON."""
    return atomic_write_text(path, json.dumps(payload, indent=indent))


def atomic_savez(path: str | Path, **arrays: np.ndarray) -> Path:
    """Atomically write an ``.npz`` archive; returns the path written.

    Unlike bare ``np.savez(path)`` — which silently *appends* ``.npz``
    when the suffix is absent, so the written file need not be the path
    the caller handed in — this resolves the final path up front
    (appending ``.npz`` only when missing), serializes to memory, and
    atomically installs the bytes at exactly that path.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    buffer = io.BytesIO()
    # Writing to a file object suppresses numpy's suffix appending.
    np.savez(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())
