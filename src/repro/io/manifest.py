"""Schema-versioned artifact manifests and checked loaders.

A manifest (``manifest.json``) lists every artifact file in a directory
with its SHA-256 digest and size::

    {
      "schema": 1,
      "kind": "lead-model",
      "files": {"autoencoder.npz": {"sha256": "...", "size": 12345}, ...},
      "meta": {...}
    }

:func:`verify_manifest` re-hashes each listed file and raises
:class:`~repro.errors.ArtifactCorruptedError` naming the first file
whose bytes do not match — a flipped byte becomes a typed, actionable
error instead of a downstream numpy/json crash.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..chaos.core import InjectedFault, chaos_point
from ..errors import ArtifactCorruptedError
from .atomic import atomic_write_json
from .checksum import sha256_file

__all__ = ["MANIFEST_NAME", "MANIFEST_SCHEMA_VERSION", "ArtifactManifest",
           "write_manifest", "verify_manifest", "load_checked_json",
           "load_checked_npz"]

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA_VERSION = 1


@dataclass
class ArtifactManifest:
    """In-memory form of a directory's ``manifest.json``."""

    kind: str
    files: dict[str, dict[str, object]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict[str, object]:
        return {"schema": self.schema, "kind": self.kind,
                "files": self.files, "meta": self.meta}

    @classmethod
    def from_dict(cls, payload: dict[str, object],
                  path: Path) -> "ArtifactManifest":
        try:
            schema = int(payload["schema"])  # type: ignore[arg-type]
            if schema > MANIFEST_SCHEMA_VERSION:
                raise ArtifactCorruptedError(
                    path, f"manifest schema {schema} is newer than the "
                    f"supported version {MANIFEST_SCHEMA_VERSION}")
            return cls(kind=str(payload.get("kind", "")),
                       files=dict(payload.get("files", {})),
                       meta=dict(payload.get("meta", {})),
                       schema=schema)
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptedError(
                path, f"malformed manifest: {exc}") from exc


def write_manifest(directory: str | Path, filenames: list[str], *,
                   kind: str,
                   meta: dict[str, object] | None = None) -> Path:
    """Hash ``filenames`` (relative to ``directory``) into a manifest."""
    directory = Path(directory)
    files: dict[str, dict[str, object]] = {}
    for name in sorted(filenames):
        path = directory / name
        files[name] = {"sha256": sha256_file(path),
                       "size": path.stat().st_size}
    manifest = ArtifactManifest(kind=kind, files=files, meta=meta or {})
    return atomic_write_json(directory / MANIFEST_NAME, manifest.to_dict(),
                             indent=2)


def verify_manifest(directory: str | Path, *,
                    required: bool = False) -> ArtifactManifest | None:
    """Check every file listed in a directory's manifest.

    Returns the parsed manifest, or ``None`` when no manifest exists and
    ``required`` is false (pre-manifest artifact layouts stay loadable).
    Raises :class:`ArtifactCorruptedError` on a missing listed file, a
    size or digest mismatch, or an unparseable manifest.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        if required:
            raise ArtifactCorruptedError(manifest_path, "manifest missing")
        return None
    payload = load_checked_json(manifest_path)
    if not isinstance(payload, dict):
        raise ArtifactCorruptedError(manifest_path,
                                     "manifest is not a JSON object")
    manifest = ArtifactManifest.from_dict(payload, manifest_path)
    for name, entry in manifest.files.items():
        path = directory / name
        if not path.exists():
            raise ArtifactCorruptedError(
                path, "listed in manifest but missing on disk")
        size = path.stat().st_size
        if int(entry.get("size", -1)) != size:
            raise ArtifactCorruptedError(
                path, f"size mismatch: manifest says {entry.get('size')}, "
                f"found {size}")
        digest = sha256_file(path)
        if entry.get("sha256") != digest:
            raise ArtifactCorruptedError(
                path, f"checksum mismatch: manifest says "
                f"{entry.get('sha256')}, file hashes to {digest}")
    return manifest


def load_checked_json(path: str | Path) -> object:
    """Parse a JSON file, mapping decode failures to a typed error."""
    path = Path(path)
    fault = chaos_point("io.read", key=path.name)
    if fault is not None:
        raise InjectedFault(f"chaos: injected read failure for {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptedError(path, f"invalid JSON: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise ArtifactCorruptedError(path, f"not valid UTF-8: {exc}") from exc


def load_checked_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load an ``.npz`` archive, mapping corruption to a typed error."""
    path = Path(path)
    fault = chaos_point("io.read", key=path.name)
    if fault is not None:
        raise InjectedFault(f"chaos: injected read failure for {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError,
            EOFError) as exc:
        raise ArtifactCorruptedError(
            path, f"unreadable npz archive: {exc}") from exc
