"""SHA-256 helpers used by the manifest layer."""

from __future__ import annotations

import hashlib
from pathlib import Path

__all__ = ["sha256_bytes", "sha256_file"]

_CHUNK = 1 << 20  # 1 MiB


def sha256_bytes(data: bytes) -> str:
    """Hex digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path) -> str:
    """Hex digest of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while chunk := handle.read(_CHUNK):
            digest.update(chunk)
    return digest.hexdigest()
