"""Durable artifact I/O: atomic writes, checksums, versioned manifests.

Every artifact this repository persists (model weights, normalizer
state, cached records, training checkpoints) goes through this package
so that

* a crash mid-write never leaves a half-written file where a complete
  one used to be (*atomicity*: tmp file + fsync + rename);
* a flipped byte is detected at load time and surfaced as a typed
  :class:`repro.errors.ArtifactCorruptedError` instead of a cryptic
  ``zipfile``/``json`` traceback (*integrity*: SHA-256 checksums);
* a directory of artifacts carries a schema-versioned ``manifest.json``
  naming each file and its digest (*provenance*).
"""

from .atomic import (atomic_write_bytes, atomic_write_json,
                     atomic_write_text, atomic_savez, replace_file)
from .checksum import sha256_bytes, sha256_file
from .manifest import (MANIFEST_NAME, MANIFEST_SCHEMA_VERSION,
                       ArtifactManifest, load_checked_json,
                       load_checked_npz, verify_manifest, write_manifest)

__all__ = [
    "atomic_write_bytes", "atomic_write_text", "atomic_write_json",
    "atomic_savez", "replace_file",
    "sha256_bytes", "sha256_file",
    "MANIFEST_NAME", "MANIFEST_SCHEMA_VERSION", "ArtifactManifest",
    "write_manifest", "verify_manifest",
    "load_checked_json", "load_checked_npz",
]
