"""Fleet-scale session multiplexing with bounded memory and fault isolation.

A regulator's feed interleaves pings from thousands of trucks; the
:class:`FleetSessionManager` owns one :class:`~repro.stream.TruckSession`
per ``(truck_id, day)`` and keeps the resident set bounded: least
recently active sessions are evicted, and — when a ``checkpoint_dir`` is
configured — written to disk through :mod:`repro.io`'s atomic writer so
the next ping for that truck restores them bit-for-bit.  Without a
checkpoint directory an evicted session is simply dropped (counted), and
a later ping starts a fresh session: degraded, never wrong about what it
has seen.

Detection runs on a *tick*: the manager snapshots every live session
that changed since its last verdict, hands the batch to the detector's
degradation-aware ``detect_many`` (one fused pass over the whole fleet,
PR-2 batching), and emits a :class:`~repro.stream.ProvisionalVerdict`
per session.  ``flush`` finalizes a session (drains its reorder buffer,
closes the trailing stay-point run) and produces the *final* verdict —
the one that equals offline ``LEAD.detect`` on the completed trajectory.

**Supervision** (PR 6): the failure domain is one session, never the
fleet.  A session whose snapshot or detection keeps failing is retried
(:class:`~repro.supervise.RetryPolicy` semantics), then *quarantined* —
captured in a :class:`~repro.supervise.Quarantine` dead-letter store
with the triggering exception and its full replayable ``state()`` —
while every other truck's verdict proceeds.  A failing batched detector
pass falls back to per-session isolation; a *persistently* failing
detector trips a :class:`~repro.supervise.CircuitBreaker` so ticks stop
hammering it until a cooldown passes (final flushes always try — the
end-of-day verdict is the product).  Spill/restore IO failures degrade
(keep-resident, fresh-session) behind their own retry policy and
breaker instead of poisoning ``ingest``.  No exception escapes
``tick()`` / ``flush_all()`` for input-dependent failures; programming
errors (``config`` misuse) still raise.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import quote, unquote

from ..chaos.core import InjectedFault, chaos_point
from ..configbase import ConfigMixin
from ..errors import ArtifactCorruptedError
from ..io import atomic_write_bytes, atomic_write_json, load_checked_json
from ..obs.core import active_obs, obs_event
from ..processing import RawTrajectoryProcessor
from ..supervise import CircuitBreaker, Quarantine, RetryPolicy
from .session import SessionCounters, TruckSession
from .verdict import ProvisionalVerdict, confidence_tier

__all__ = ["FleetConfig", "FleetCounters", "FleetSessionManager"]

SessionKey = tuple[str, str]  # (truck_id, day)


def _default_io_retry() -> RetryPolicy:
    # Zero base backoff: the ingest path must not sleep; the retry is
    # for transient syscall failures, not remote services.
    return RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)


@dataclass
class FleetConfig(ConfigMixin):
    """Serving knobs of the fleet session manager."""

    #: Resident session bound; LRU sessions beyond it are evicted
    #: (checkpointed to disk when ``checkpoint_dir`` is set).
    max_sessions: int = 1024
    #: Per-session reorder tolerance (see processing.ReorderBuffer).
    reorder_capacity: int = 16
    reorder_policy: str = "reorder"
    #: Directory for evicted-session checkpoints; ``None`` disables
    #: persistence (evictions then lose state, counted).
    checkpoint_dir: str | Path | None = None
    #: Confidence-tier thresholds on the leading candidate probability.
    high_confidence: float = 0.75
    medium_confidence: float = 0.4
    #: Directory for the quarantine dead-letter store; ``None`` keeps
    #: the ledger in memory only.
    quarantine_dir: str | Path | None = None
    #: Detection attempts per session before it is quarantined.
    detect_attempts: int = 2
    #: Consecutive *batched* detector failures that trip the detector
    #: breaker, and how many ticks it stays open before a probe.
    detector_breaker_failures: int = 3
    detector_breaker_cooldown: int = 2
    #: Retry policy for session spill/restore IO, and the consecutive
    #: spill failures that trip the spill breaker (further evictions
    #: then keep sessions resident without touching disk).
    io_retry: RetryPolicy = field(default_factory=_default_io_retry)
    spill_breaker_failures: int = 3
    spill_breaker_cooldown: int = 16

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if not 0.0 <= self.medium_confidence <= self.high_confidence <= 1.0:
            raise ValueError("need 0 <= medium <= high <= 1")
        if self.detect_attempts < 1:
            raise ValueError("detect_attempts must be >= 1")


@dataclass
class FleetCounters:
    """Manager-level counters (session counters aggregate separately)."""

    sessions_opened: int = 0
    sessions_restored: int = 0
    sessions_evicted: int = 0
    sessions_dropped: int = 0     # evicted with no checkpoint dir
    sessions_flushed: int = 0
    sessions_quarantined: int = 0
    ticks: int = 0
    verdicts_emitted: int = 0
    detect_calls: int = 0         # sessions actually re-detected
    detect_batch_failures: int = 0   # batched passes that fell back
    detect_retries: int = 0       # extra per-session attempts
    detect_skipped_breaker: int = 0  # sessions skipped: breaker open
    spill_failures: int = 0       # spill attempts that failed (kept)
    spill_skipped_breaker: int = 0   # spills not attempted: breaker open
    restore_failures: int = 0     # unreadable spills (fresh session)

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class FleetSessionManager:
    """Multiplex thousands of concurrent truck sessions.

    ``detector`` is anything exposing the :meth:`repro.pipeline.LEAD.
    detect_many` contract (and optionally ``processor`` /
    ``feature_cache``); pass ``None`` for an ingest-only manager (soak
    tests, pure extraction services) — ticks then report stay-point
    progress with ``confidence="none"``.
    """

    def __init__(self, detector=None, config: FleetConfig | None = None,
                 processor: RawTrajectoryProcessor | None = None) -> None:
        self.detector = detector
        self.config = config or FleetConfig()
        if processor is None:
            processor = getattr(detector, "processor", None) \
                or RawTrajectoryProcessor()
        self.processor = processor
        self.counters = FleetCounters()
        self.quarantine = Quarantine(self.config.quarantine_dir)
        self.detector_breaker = CircuitBreaker(
            "detector", self.config.detector_breaker_failures,
            self.config.detector_breaker_cooldown)
        self.spill_breaker = CircuitBreaker(
            "session-spill", self.config.spill_breaker_failures,
            self.config.spill_breaker_cooldown)
        self._sessions: OrderedDict[SessionKey, TruckSession] = OrderedDict()
        self._known: dict[SessionKey, None] = {}   # insertion-ordered set
        self._aggregate = SessionCounters()        # of flushed sessions
        self._tick_index = 0
        if self.config.checkpoint_dir is not None:
            Path(self.config.checkpoint_dir).mkdir(parents=True,
                                                   exist_ok=True)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Resident (in-memory) session count."""
        return len(self._sessions)

    @property
    def known_sessions(self) -> list[SessionKey]:
        """Every unflushed session key ever seen (resident or evicted)."""
        return list(self._known)

    @staticmethod
    def _chaos_key(session: TruckSession) -> str:
        return f"{session.truck_id}|{session.day}"

    @staticmethod
    def _spill_name(key: SessionKey) -> str:
        return quote(f"{key[0]}|{key[1]}", safe="") + ".json"

    def _checkpoint_path(self, key: SessionKey) -> Path | None:
        if self.config.checkpoint_dir is None:
            return None
        return Path(self.config.checkpoint_dir) / self._spill_name(key)

    def session(self, truck_id: str, day: str = "") -> TruckSession:
        """The resident session for a truck-day (restored or created)."""
        return self._session((truck_id, day))

    def _session(self, key: SessionKey) -> TruckSession:
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            return session
        session = self._restore(key)
        if session is None:
            session = TruckSession(
                key[0], key[1], processor=self.processor,
                reorder_capacity=self.config.reorder_capacity,
                reorder_policy=self.config.reorder_policy)
            self.counters.sessions_opened += 1
        self._sessions[key] = session
        self._known[key] = None
        self._evict_over_capacity()
        return session

    def _restore(self, key: SessionKey) -> TruckSession | None:
        """Restore an evicted session; degrade to fresh on bad spills.

        Transient read failures are retried under ``config.io_retry``;
        a spill that stays unreadable (or will not parse back into a
        session) is quarantined with the path for forensics, deleted,
        and the truck restarts from a fresh session — degraded and
        counted, never raised into ``ingest``.
        """
        path = self._checkpoint_path(key)
        if path is None or not path.exists():
            return None
        try:
            state = self.config.io_retry.call(load_checked_json, path)
            session = TruckSession.from_state(state,
                                              processor=self.processor)
        except (ArtifactCorruptedError, OSError, KeyError, TypeError,
                ValueError) as exc:
            self.counters.restore_failures += 1
            obs_event("fleet.restore_failed", truck_id=key[0],
                      day=key[1], path=str(path), reason=str(exc))
            self.quarantine.record(
                f"{key[0]}|{key[1]}", "restore", exc,
                metadata={"path": str(path)})
            path.unlink(missing_ok=True)
            warnings.warn(
                f"session spill {path} is unreadable ({exc}); starting "
                "a fresh session", RuntimeWarning, stacklevel=3)
            return None
        self.counters.sessions_restored += 1
        return session

    def _evict_over_capacity(self) -> None:
        """LRU-evict past ``max_sessions``; spill failures degrade.

        A failing or breaker-open spill keeps the victim *resident*
        (memory over budget beats lost state) and stops this eviction
        round, so an unwritable checkpoint directory shows up as
        counters and a warning — never as an exception inside
        ``ingest``.
        """
        while len(self._sessions) > self.config.max_sessions:
            key, session = self._sessions.popitem(last=False)
            path = self._checkpoint_path(key)
            if path is None:
                # State is gone; a later ping reopens from scratch.
                self._aggregate.add(session.counters)
                self._known.pop(key, None)
                self.counters.sessions_dropped += 1
                self.counters.sessions_evicted += 1
                obs_event("fleet.session_dropped", truck_id=key[0],
                          day=key[1],
                          reason="evicted with no checkpoint dir; "
                                 "state lost")
                continue
            if not self.spill_breaker.allow():
                self.counters.spill_skipped_breaker += 1
                obs_event("fleet.spill_skipped", truck_id=key[0],
                          day=key[1], reason="spill breaker open")
                self._keep_resident(key, session)
                return
            try:
                self.config.io_retry.call(atomic_write_json, path,
                                          session.state())
            except OSError as exc:
                self.spill_breaker.record_failure()
                self.counters.spill_failures += 1
                obs_event("fleet.spill_failed", truck_id=key[0],
                          day=key[1], path=str(path), reason=str(exc))
                warnings.warn(
                    f"failed to spill session {key[0]}/{key[1]} to "
                    f"{path} ({exc}); keeping it resident",
                    RuntimeWarning, stacklevel=3)
                self._keep_resident(key, session)
                return
            self.spill_breaker.record_success()
            self.counters.sessions_evicted += 1

    def _keep_resident(self, key: SessionKey,
                       session: TruckSession) -> None:
        """Re-insert an eviction victim at its LRU position."""
        self._sessions[key] = session
        self._sessions.move_to_end(key, last=False)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, truck_id: str, lat: float, lng: float, t: float,
               day: str = "") -> int:
        """Route one raw ping to its session; returns stay points closed."""
        return self._session((truck_id, day)).ingest(lat, lng, t)

    def ingest_batch(self, truck_id: str, lats, lngs, ts, *,
                     day: str = "") -> int:
        """Route many pings for one truck-day through the array lane.

        Semantically identical to calling :meth:`ingest` per ping — see
        :meth:`TruckSession.ingest_batch` for the bit-exactness
        contract.  The serve workers use this to apply whole submitted
        batches at array speed.
        """
        return self._session((truck_id, day)).ingest_batch(lats, lngs, ts)

    # ------------------------------------------------------------------
    # Detection ticks
    # ------------------------------------------------------------------
    def tick(self) -> list[ProvisionalVerdict]:
        """Provisional verdicts for every *resident* session.

        Sessions untouched since their last verdict are served from
        that verdict (no re-detection); everything else goes through
        one batched, degradation-aware detector pass.  Failures never
        escape: a failing session is quarantined (its verdict reports
        ``confidence="none"``), the rest of the fleet proceeds.
        """
        ob = active_obs()
        if ob is None:
            return self._tick_impl()
        start = time.perf_counter()
        with ob.tracer.span("fleet.tick", resident=len(self._sessions)):
            verdicts = self._tick_impl()
        ob.registry.histogram(
            "fleet_tick_seconds",
            help="wall time of fleet detection ticks").observe(
                time.perf_counter() - start)
        self._publish_metrics(ob)
        return verdicts

    def _tick_impl(self) -> list[ProvisionalVerdict]:
        self._tick_index += 1
        self.counters.ticks += 1
        verdicts: list[ProvisionalVerdict] = []
        pending: list[TruckSession] = []
        for session in self._sessions.values():
            if (session.last_verdict is not None
                    and session.last_verdict_version == session.version):
                verdicts.append(session.last_verdict)
            else:
                pending.append(session)
        verdicts.extend(self._detect(pending, final=False))
        self.counters.verdicts_emitted += len(verdicts)
        return verdicts

    # -- supervised building blocks ------------------------------------
    def _safe_snapshot(self, session: TruckSession):
        """``session.snapshot()`` under retry; raises after the budget.

        The ``fleet.snapshot`` chaos site fires here (keyed by
        ``"truck|day"``), modelling snapshot-stage poison: a session
        whose rolling candidate state breaks the featurization path.
        """
        key = self._chaos_key(session)
        failure: BaseException | None = None
        for attempt in range(self.config.detect_attempts):
            if attempt:
                self.counters.detect_retries += 1
            try:
                fault = chaos_point("fleet.snapshot", key=key)
                if fault is not None:
                    raise InjectedFault(
                        f"chaos: injected snapshot failure for {key}")
                return session.snapshot()
            except Exception as exc:   # noqa: BLE001 - isolation boundary
                failure = exc
        raise failure

    def _detect_one(self, session: TruckSession, snapshot, notes):
        """One session's detection under retry; raises after the budget."""
        key = self._chaos_key(session)
        failure: BaseException | None = None
        for attempt in range(self.config.detect_attempts):
            if attempt:
                self.counters.detect_retries += 1
            try:
                fault = chaos_point("detector.forward", key=key)
                if fault is not None:
                    raise InjectedFault(
                        f"chaos: injected detector failure for {key}")
                result = self.detector.detect_many([snapshot], [notes])[0]
                self.counters.detect_calls += 1
                return result
            except Exception as exc:   # noqa: BLE001 - isolation boundary
                failure = exc
        raise failure

    def _quarantine_session(self, session: TruckSession, stage: str,
                            exc: BaseException) -> None:
        """Dead-letter one poison session; the fleet moves on.

        The entry carries the session's full checkpoint ``state()`` —
        enough to rebuild it with :meth:`TruckSession.from_state` and
        replay the failure offline — plus the provenance notes and the
        tick it died on.
        """
        key = (session.truck_id, session.day)
        obs_event("fleet.quarantined", truck_id=session.truck_id,
                  day=session.day, stage=stage, error=str(exc),
                  tick=self._tick_index)
        self.quarantine.record(
            self._chaos_key(session), stage, exc,
            attempts=self.config.detect_attempts,
            metadata={
                "truck_id": session.truck_id,
                "day": session.day,
                "tick": self._tick_index,
                "state": session.state(),
                "sanitize_notes": session.sanitize_notes(),
            })
        self._sessions.pop(key, None)
        self._known.pop(key, None)
        path = self._checkpoint_path(key)
        if path is not None:
            path.unlink(missing_ok=True)
        self._aggregate.add(session.counters)
        self.counters.sessions_quarantined += 1

    def _detect(self, sessions: list[TruckSession],
                final: bool) -> list[ProvisionalVerdict]:
        """Supervised batched detector pass over ``sessions`` (in order).

        Healthy path: one fused ``detect_many`` over every session with
        a candidate snapshot.  A batch failure (or an open detector
        breaker probe) falls back to per-session isolation; sessions
        that fail their own retry budget are quarantined.  On non-final
        ticks an *open* breaker skips detection entirely — affected
        sessions keep their previous verdict and stay eligible for
        re-detection — while final flushes always attempt detection.
        """
        snapshots: dict[int, object] = {}
        failures: dict[int, BaseException] = {}
        for i, session in enumerate(sessions):
            try:
                snapshots[i] = self._safe_snapshot(session)
            except Exception as exc:   # noqa: BLE001 - isolation boundary
                failures[i] = exc
        ready = [i for i, snapshot in snapshots.items()
                 if snapshot is not None and self.detector is not None]
        results, skipped = self._detect_ready(sessions, snapshots, ready,
                                              failures, final)
        verdicts: list[ProvisionalVerdict] = []
        for i, session in enumerate(sessions):
            if i in failures:
                self._quarantine_session(
                    session, "flush-detect" if final else "tick-detect",
                    failures[i])
                verdicts.append(self._empty_verdict(session, final))
                continue
            if i in skipped:
                # Breaker open: serve the stale verdict (or none) and
                # leave the session marked dirty for the next tick.
                verdicts.append(session.last_verdict
                                if session.last_verdict is not None
                                else self._empty_verdict(session, final))
                continue
            result = results.get(i)
            if result is None:
                verdict = self._empty_verdict(session, final)
            else:
                snapshot = snapshots[i]
                probability = float(result.distribution[
                    snapshot.candidate_index(result.pair)])
                verdict = ProvisionalVerdict(
                    truck_id=session.truck_id, day=session.day,
                    pair=result.pair, probability=probability,
                    confidence=confidence_tier(
                        probability, self.config.high_confidence,
                        self.config.medium_confidence),
                    final=final,
                    num_stay_points=snapshot.num_stay_points,
                    num_candidates=snapshot.num_candidates,
                    tick=self._tick_index,
                    provenance=result.provenance,
                    distribution=result.distribution)
            session.last_verdict = verdict
            session.last_verdict_version = session.version
            verdicts.append(verdict)
        return verdicts

    def _detect_ready(self, sessions, snapshots, ready, failures,
                      final) -> tuple[dict, set[int]]:
        """Run the detector over the ready set; returns (results, skipped).

        ``results`` maps session position → DetectionResult; positions
        that fail move into ``failures``; ``skipped`` positions were not
        attempted because the breaker is open (non-final only).
        """
        if not ready:
            return {}, set()
        if not final and not self.detector_breaker.allow():
            self.counters.detect_skipped_breaker += len(ready)
            return {}, set(ready)
        batch = [snapshots[i] for i in ready]
        notes = [sessions[i].sanitize_notes() for i in ready]
        try:
            fault = chaos_point("detector.batch")
            if fault is not None:
                raise InjectedFault(
                    "chaos: injected batched-detector failure")
            for i in ready:   # per-session poison surfaces in the batch
                fault = chaos_point("detector.forward",
                                    key=self._chaos_key(sessions[i]))
                if fault is not None:
                    raise InjectedFault(
                        "chaos: injected detector failure for "
                        f"{self._chaos_key(sessions[i])}")
            raw = self.detector.detect_many(batch, notes)
        except Exception:  # noqa: BLE001 - isolate below
            self.detector_breaker.record_failure()
            self.counters.detect_batch_failures += 1
            results: dict[int, object] = {}
            for i in ready:
                try:
                    results[i] = self._detect_one(
                        sessions[i], snapshots[i], notes[ready.index(i)])
                except Exception as exc:  # noqa: BLE001
                    failures[i] = exc
            return results, set()
        self.detector_breaker.record_success()
        self.counters.detect_calls += len(ready)
        return dict(zip(ready, raw)), set()

    def _empty_verdict(self, session: TruckSession,
                       final: bool) -> ProvisionalVerdict:
        return ProvisionalVerdict(
            truck_id=session.truck_id, day=session.day,
            pair=None, probability=None,
            confidence=confidence_tier(None), final=final,
            num_stay_points=session.num_closed_stay_points,
            num_candidates=0, tick=self._tick_index)

    # ------------------------------------------------------------------
    # Flush (end of day)
    # ------------------------------------------------------------------
    def flush(self, truck_id: str, *args, day: str = "") -> ProvisionalVerdict:
        """Finalize one session and return its *final* verdict.

        ``day`` is keyword-only; the historical positional form still
        works behind a :class:`DeprecationWarning` shim.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    "flush() takes truck_id plus the keyword day only")
            warnings.warn(
                "passing day positionally to FleetSessionManager.flush is "
                "deprecated; use flush(truck_id, day=...)",
                DeprecationWarning, stacklevel=2)
            day = args[0]
        return self._flush_keys([(truck_id, day)])[0]

    def flush_all(self) -> list[ProvisionalVerdict]:
        """Finalize every known session (resident and evicted alike).

        Processes in chunks bounded by ``max_sessions`` so restoring
        evicted sessions never blows the memory budget, and each chunk
        shares one batched detector pass.
        """
        keys = list(self._known)
        chunk_size = max(1, self.config.max_sessions)
        verdicts: list[ProvisionalVerdict] = []
        for start in range(0, len(keys), chunk_size):
            verdicts.extend(self._flush_keys(keys[start:start + chunk_size]))
        return verdicts

    def _flush_keys(self, keys: list[SessionKey]
                    ) -> list[ProvisionalVerdict]:
        ob = active_obs()
        if ob is None:
            return self._flush_keys_impl(keys)
        start = time.perf_counter()
        with ob.tracer.span("fleet.flush", sessions=len(keys)):
            verdicts = self._flush_keys_impl(keys)
        ob.registry.histogram(
            "fleet_flush_seconds",
            help="wall time of fleet flush chunks").observe(
                time.perf_counter() - start)
        self._publish_metrics(ob)
        return verdicts

    def _flush_keys_impl(self, keys: list[SessionKey]
                         ) -> list[ProvisionalVerdict]:
        sessions = []
        for key in keys:
            session = self._session(key)
            session.finalize()
            sessions.append(session)
        verdicts = self._detect(sessions, final=True)
        for key, session in zip(keys, sessions):
            if key not in self._known and key not in self._sessions:
                continue   # quarantined during the final detect
            self._sessions.pop(key, None)
            self._known.pop(key, None)
            path = self._checkpoint_path(key)
            if path is not None:
                path.unlink(missing_ok=True)
            self._aggregate.add(session.counters)
            self.counters.sessions_flushed += 1
        self.counters.verdicts_emitted += len(verdicts)
        return verdicts

    # ------------------------------------------------------------------
    # Barrier snapshots (serve-layer restart protocol)
    # ------------------------------------------------------------------
    def checkpoint_all(self, *, directory: str | Path | None = None) -> int:
        """Snapshot every known session's state into ``directory``.

        Resident sessions are written fresh from ``state()``; evicted
        sessions' existing spill files are copied verbatim — exact,
        because an evicted session receives no pings while evicted.
        The manager's own state is untouched: this is a read-only
        barrier snapshot used by :mod:`repro.serve`'s restart protocol.
        Returns the number of sessions captured.
        """
        if directory is None:
            directory = self.config.checkpoint_dir
        if directory is None:
            raise ValueError(
                "checkpoint_all needs a directory when the manager has "
                "no checkpoint_dir")
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        captured = 0
        for key, session in self._sessions.items():
            self.config.io_retry.call(
                atomic_write_json, target / self._spill_name(key),
                session.state())
            captured += 1
        source = (Path(self.config.checkpoint_dir)
                  if self.config.checkpoint_dir is not None else None)
        if source is not None and source != target:
            for key in self._known:
                if key in self._sessions:
                    continue
                spill = source / self._spill_name(key)
                if spill.exists():
                    self.config.io_retry.call(
                        atomic_write_bytes, target / self._spill_name(key),
                        spill.read_bytes())
                    captured += 1
        return captured

    def adopt_spills(self) -> int:
        """Register every on-disk spill as a known session.

        After a restart a fresh manager's known set is empty, so a
        checkpointed truck that never pings again would be invisible to
        :meth:`flush_all`.  Scanning ``checkpoint_dir`` re-registers
        those keys (sessions restore lazily on first touch).  Returns
        the number of keys adopted.
        """
        if self.config.checkpoint_dir is None:
            return 0
        adopted = 0
        for path in sorted(Path(self.config.checkpoint_dir).glob("*.json")):
            truck_id, sep, day = unquote(path.stem).partition("|")
            if not sep:
                continue
            key = (truck_id, day)
            if key not in self._known:
                self._known[key] = None
                adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _publish_metrics(self, ob) -> None:
        """Mirror the manager's counters onto the active registry.

        Gauges are *set* from the authoritative counter structs (rather
        than incremented in line) so one publish after each tick/flush
        is both cheap and always consistent with ``stats()``.
        """
        registry = ob.registry
        registry.gauge("fleet_resident_sessions",
                       help="sessions currently in memory").set(
                           len(self._sessions))
        registry.gauge("fleet_known_sessions",
                       help="unflushed sessions ever seen").set(
                           len(self._known))
        for name, value in self.counters.as_dict().items():
            registry.gauge(f"fleet_{name}",
                           help="FleetCounters mirror").set(value)
        for name, value in self.session_totals().as_dict().items():
            registry.gauge(f"fleet_sessions_{name}",
                           help="aggregate SessionCounters mirror").set(
                               value)

    def session_totals(self) -> SessionCounters:
        """Aggregated session counters (flushed + resident sessions)."""
        totals = SessionCounters()
        totals.add(self._aggregate)
        for session in self._sessions.values():
            totals.add(session.counters)
        return totals

    def stats(self) -> dict:
        """One JSON-safe dict of everything worth printing."""
        payload = {
            "resident_sessions": len(self._sessions),
            "known_sessions": len(self._known),
            "fleet": self.counters.as_dict(),
            "sessions": self.session_totals().as_dict(),
            "quarantine": self.quarantine.summary(),
            "breakers": {
                "detector": self.detector_breaker.stats(),
                "session_spill": self.spill_breaker.stats(),
            },
            "io_retry": self.config.io_retry.counters.as_dict(),
        }
        cache = getattr(self.detector, "feature_cache", None)
        if cache is not None:
            payload["feature_cache"] = cache.stats.as_dict()
            counts = getattr(cache, "dtype_key_counts", None)
            if counts is not None:
                payload["feature_cache"]["dtype_keys"] = counts()
        return payload
