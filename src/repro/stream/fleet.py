"""Fleet-scale session multiplexing with bounded memory.

A regulator's feed interleaves pings from thousands of trucks; the
:class:`FleetSessionManager` owns one :class:`~repro.stream.TruckSession`
per ``(truck_id, day)`` and keeps the resident set bounded: least
recently active sessions are evicted, and — when a ``checkpoint_dir`` is
configured — written to disk through :mod:`repro.io`'s atomic writer so
the next ping for that truck restores them bit-for-bit.  Without a
checkpoint directory an evicted session is simply dropped (counted), and
a later ping starts a fresh session: degraded, never wrong about what it
has seen.

Detection runs on a *tick*: the manager snapshots every live session
that changed since its last verdict, hands the batch to the detector's
degradation-aware ``detect_many`` (one fused pass over the whole fleet,
PR-2 batching), and emits a :class:`~repro.stream.ProvisionalVerdict`
per session.  ``flush`` finalizes a session (drains its reorder buffer,
closes the trailing stay-point run) and produces the *final* verdict —
the one that equals offline ``LEAD.detect`` on the completed trajectory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import quote

from ..io import atomic_write_json, load_checked_json
from ..processing import RawTrajectoryProcessor
from .session import SessionCounters, TruckSession
from .verdict import ProvisionalVerdict, confidence_tier

__all__ = ["FleetConfig", "FleetCounters", "FleetSessionManager"]

SessionKey = tuple[str, str]  # (truck_id, day)


@dataclass
class FleetConfig:
    """Serving knobs of the fleet session manager."""

    #: Resident session bound; LRU sessions beyond it are evicted
    #: (checkpointed to disk when ``checkpoint_dir`` is set).
    max_sessions: int = 1024
    #: Per-session reorder tolerance (see processing.ReorderBuffer).
    reorder_capacity: int = 16
    reorder_policy: str = "reorder"
    #: Directory for evicted-session checkpoints; ``None`` disables
    #: persistence (evictions then lose state, counted).
    checkpoint_dir: str | Path | None = None
    #: Confidence-tier thresholds on the leading candidate probability.
    high_confidence: float = 0.75
    medium_confidence: float = 0.4

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if not 0.0 <= self.medium_confidence <= self.high_confidence <= 1.0:
            raise ValueError("need 0 <= medium <= high <= 1")


@dataclass
class FleetCounters:
    """Manager-level counters (session counters aggregate separately)."""

    sessions_opened: int = 0
    sessions_restored: int = 0
    sessions_evicted: int = 0
    sessions_dropped: int = 0     # evicted with no checkpoint dir
    sessions_flushed: int = 0
    ticks: int = 0
    verdicts_emitted: int = 0
    detect_calls: int = 0         # sessions actually re-detected

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class FleetSessionManager:
    """Multiplex thousands of concurrent truck sessions.

    ``detector`` is anything exposing the :meth:`repro.pipeline.LEAD.
    detect_many` contract (and optionally ``processor`` /
    ``feature_cache``); pass ``None`` for an ingest-only manager (soak
    tests, pure extraction services) — ticks then report stay-point
    progress with ``confidence="none"``.
    """

    def __init__(self, detector=None, config: FleetConfig | None = None,
                 processor: RawTrajectoryProcessor | None = None) -> None:
        self.detector = detector
        self.config = config or FleetConfig()
        if processor is None:
            processor = getattr(detector, "processor", None) \
                or RawTrajectoryProcessor()
        self.processor = processor
        self.counters = FleetCounters()
        self._sessions: OrderedDict[SessionKey, TruckSession] = OrderedDict()
        self._known: dict[SessionKey, None] = {}   # insertion-ordered set
        self._aggregate = SessionCounters()        # of flushed sessions
        self._tick_index = 0
        if self.config.checkpoint_dir is not None:
            Path(self.config.checkpoint_dir).mkdir(parents=True,
                                                   exist_ok=True)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Resident (in-memory) session count."""
        return len(self._sessions)

    @property
    def known_sessions(self) -> list[SessionKey]:
        """Every unflushed session key ever seen (resident or evicted)."""
        return list(self._known)

    def _checkpoint_path(self, key: SessionKey) -> Path | None:
        if self.config.checkpoint_dir is None:
            return None
        name = quote(f"{key[0]}|{key[1]}", safe="")
        return Path(self.config.checkpoint_dir) / f"{name}.json"

    def session(self, truck_id: str, day: str = "") -> TruckSession:
        """The resident session for a truck-day (restored or created)."""
        return self._session((truck_id, day))

    def _session(self, key: SessionKey) -> TruckSession:
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            return session
        session = self._restore(key)
        if session is None:
            session = TruckSession(
                key[0], key[1], processor=self.processor,
                reorder_capacity=self.config.reorder_capacity,
                reorder_policy=self.config.reorder_policy)
            self.counters.sessions_opened += 1
        self._sessions[key] = session
        self._known[key] = None
        self._evict_over_capacity()
        return session

    def _restore(self, key: SessionKey) -> TruckSession | None:
        path = self._checkpoint_path(key)
        if path is None or not path.exists():
            return None
        state = load_checked_json(path)
        session = TruckSession.from_state(state, processor=self.processor)
        self.counters.sessions_restored += 1
        return session

    def _evict_over_capacity(self) -> None:
        while len(self._sessions) > self.config.max_sessions:
            key, session = self._sessions.popitem(last=False)
            path = self._checkpoint_path(key)
            if path is not None:
                atomic_write_json(path, session.state())
            else:
                # State is gone; a later ping reopens from scratch.
                self._aggregate.add(session.counters)
                self._known.pop(key, None)
                self.counters.sessions_dropped += 1
            self.counters.sessions_evicted += 1

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, truck_id: str, lat: float, lng: float, t: float,
               day: str = "") -> int:
        """Route one raw ping to its session; returns stay points closed."""
        return self._session((truck_id, day)).ingest(lat, lng, t)

    # ------------------------------------------------------------------
    # Detection ticks
    # ------------------------------------------------------------------
    def tick(self) -> list[ProvisionalVerdict]:
        """Provisional verdicts for every *resident* session.

        Sessions untouched since their last verdict are served from
        that verdict (no re-detection); everything else goes through
        one batched, degradation-aware detector pass.
        """
        self._tick_index += 1
        self.counters.ticks += 1
        verdicts: list[ProvisionalVerdict] = []
        pending: list[TruckSession] = []
        for session in self._sessions.values():
            if (session.last_verdict is not None
                    and session.last_verdict_version == session.version):
                verdicts.append(session.last_verdict)
            else:
                pending.append(session)
        verdicts.extend(self._detect(pending, final=False))
        self.counters.verdicts_emitted += len(verdicts)
        return verdicts

    def _detect(self, sessions: list[TruckSession],
                final: bool) -> list[ProvisionalVerdict]:
        """One batched detector pass over ``sessions`` (in order)."""
        snapshots, notes, index = [], [], []
        for i, session in enumerate(sessions):
            snapshot = session.snapshot()
            if snapshot is not None and self.detector is not None:
                snapshots.append(snapshot)
                notes.append(session.sanitize_notes())
                index.append(i)
        results = (self.detector.detect_many(snapshots, notes)
                   if snapshots else [])
        self.counters.detect_calls += len(snapshots)
        verdicts: list[ProvisionalVerdict] = []
        by_index = dict(zip(index, results))
        for i, session in enumerate(sessions):
            result = by_index.get(i)
            if result is None:
                verdict = ProvisionalVerdict(
                    truck_id=session.truck_id, day=session.day,
                    pair=None, probability=None,
                    confidence=confidence_tier(None),
                    final=final,
                    num_stay_points=session.num_closed_stay_points,
                    num_candidates=0, tick=self._tick_index)
            else:
                snapshot = session.snapshot()
                probability = float(result.distribution[
                    snapshot.candidate_index(result.pair)])
                verdict = ProvisionalVerdict(
                    truck_id=session.truck_id, day=session.day,
                    pair=result.pair, probability=probability,
                    confidence=confidence_tier(
                        probability, self.config.high_confidence,
                        self.config.medium_confidence),
                    final=final,
                    num_stay_points=snapshot.num_stay_points,
                    num_candidates=snapshot.num_candidates,
                    tick=self._tick_index,
                    provenance=result.provenance,
                    distribution=result.distribution)
            session.last_verdict = verdict
            session.last_verdict_version = session.version
            verdicts.append(verdict)
        return verdicts

    # ------------------------------------------------------------------
    # Flush (end of day)
    # ------------------------------------------------------------------
    def flush(self, truck_id: str, day: str = "") -> ProvisionalVerdict:
        """Finalize one session and return its *final* verdict."""
        return self._flush_keys([(truck_id, day)])[0]

    def flush_all(self) -> list[ProvisionalVerdict]:
        """Finalize every known session (resident and evicted alike).

        Processes in chunks bounded by ``max_sessions`` so restoring
        evicted sessions never blows the memory budget, and each chunk
        shares one batched detector pass.
        """
        keys = list(self._known)
        chunk_size = max(1, self.config.max_sessions)
        verdicts: list[ProvisionalVerdict] = []
        for start in range(0, len(keys), chunk_size):
            verdicts.extend(self._flush_keys(keys[start:start + chunk_size]))
        return verdicts

    def _flush_keys(self, keys: list[SessionKey]
                    ) -> list[ProvisionalVerdict]:
        sessions = []
        for key in keys:
            session = self._session(key)
            session.finalize()
            sessions.append(session)
        verdicts = self._detect(sessions, final=True)
        for key, session in zip(keys, sessions):
            self._sessions.pop(key, None)
            self._known.pop(key, None)
            path = self._checkpoint_path(key)
            if path is not None:
                path.unlink(missing_ok=True)
            self._aggregate.add(session.counters)
            self.counters.sessions_flushed += 1
        self.counters.verdicts_emitted += len(verdicts)
        return verdicts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def session_totals(self) -> SessionCounters:
        """Aggregated session counters (flushed + resident sessions)."""
        totals = SessionCounters()
        totals.add(self._aggregate)
        for session in self._sessions.values():
            totals.add(session.counters)
        return totals

    def stats(self) -> dict:
        """One JSON-safe dict of everything worth printing."""
        payload = {
            "resident_sessions": len(self._sessions),
            "known_sessions": len(self._known),
            "fleet": self.counters.as_dict(),
            "sessions": self.session_totals().as_dict(),
        }
        cache = getattr(self.detector, "feature_cache", None)
        if cache is not None:
            payload["feature_cache"] = cache.stats.as_dict()
        return payload
