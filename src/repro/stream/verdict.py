"""Provisional verdicts: what the streaming detector knows *so far*.

An offline :class:`~repro.pipeline.DetectionResult` is the answer for a
finished truck-day; a :class:`ProvisionalVerdict` is the same answer
computed mid-day over the stay points that have *closed* by the current
tick, tagged with how much trust it deserves: the probability mass
behind the leading candidate buckets into coarse confidence tiers, the
PR-1 :class:`~repro.pipeline.DetectionProvenance` still records which
inference tier answered and what repairs were applied, and ``final``
says whether the session has been flushed (at which point the verdict
converges to the offline ``LEAD.detect`` answer — see
``tests/test_stream.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CONFIDENCE_TIERS", "confidence_tier", "ProvisionalVerdict"]

#: Confidence tiers in decreasing order of trust.
CONFIDENCE_TIERS = ("high", "medium", "low", "none")


def confidence_tier(probability: float | None, high: float = 0.75,
                    medium: float = 0.4) -> str:
    """Bucket a leading-candidate probability into a confidence tier.

    ``None`` (no candidate yet — fewer than two closed stay points)
    maps to ``"none"``.  The thresholds are serving knobs, not learned
    quantities; see :class:`~repro.stream.fleet.FleetConfig`.
    """
    if probability is None:
        return "none"
    if not 0.0 <= high <= 1.0 or not 0.0 <= medium <= high:
        raise ValueError("need 0 <= medium <= high <= 1")
    if probability >= high:
        return "high"
    if probability >= medium:
        return "medium"
    return "low"


@dataclass(frozen=True)
class ProvisionalVerdict:
    """One session's current best answer.

    ``pair`` / ``probability`` / ``distribution`` / ``provenance`` are
    ``None`` while the session has no candidate yet (fewer than two
    closed stay points, or the stay-point cap was exceeded so the
    offline pipeline would also abstain).  ``tick`` is the fleet
    manager's tick counter at emission time (-1 for verdicts produced
    by an explicit flush outside any tick).
    """

    truck_id: str
    day: str
    pair: tuple[int, int] | None
    probability: float | None
    confidence: str                       # one of CONFIDENCE_TIERS
    final: bool
    num_stay_points: int
    num_candidates: int
    tick: int
    provenance: object | None = None      # DetectionProvenance | None
    distribution: np.ndarray | None = None

    @property
    def detected(self) -> bool:
        """True when the session has a candidate answer at all."""
        return self.pair is not None

    def summary(self) -> str:
        """One line for logs and the ``repro stream`` CLI."""
        state = "final" if self.final else f"tick {self.tick}"
        if self.pair is None:
            return (f"{self.truck_id} {self.day}: no candidate yet "
                    f"({self.num_stay_points} stay points, {state})")
        tier = self.provenance.tier if self.provenance is not None else "?"
        return (f"{self.truck_id} {self.day}: <sp_{self.pair[0]} --> "
                f"sp_{self.pair[1]}> p={self.probability:.3f} "
                f"[{self.confidence}] tier={tier} "
                f"({self.num_stay_points} sps, {state})")
