"""Online detection: ping-at-a-time ingest over the offline LEAD core.

The offline reproduction answers "which part of yesterday's trajectory
was loaded?"; regulators watching a live HCT fleet want that answer
while the truck is still driving.  This package turns the batch pipeline
into a streaming service without forking any of its logic:

* :class:`~repro.stream.session.TruckSession` ingests GPS pings one at
  a time — per-ping sanitization, a bounded reorder buffer
  (:class:`repro.processing.ReorderBuffer`), the incremental noise
  filter, and the resumable stay-point scanner
  (:class:`repro.processing.StayPointScanner`) that the offline
  extractor *replays*, so streamed stay points are bit-identical to
  offline ones by construction;
* a rolling candidate set grows as stay points close; snapshots are
  ordinary :class:`~repro.processing.ProcessedTrajectory` objects, so
  the slice-keyed segment-feature cache re-featurizes only the newly
  extended suffix on every tick;
* :class:`~repro.stream.fleet.FleetSessionManager` multiplexes
  thousands of concurrent sessions with bounded memory (LRU eviction +
  checkpointed session state via :mod:`repro.io`), runs the provisional
  detector over all live sessions on a tick, and emits
  :class:`~repro.stream.verdict.ProvisionalVerdict` objects that
  converge to the offline ``LEAD.detect`` answer at end-of-day.

Drive it from the command line with ``python -m repro.cli stream``.
"""

from .fleet import FleetConfig, FleetSessionManager
from .replay import Ping, dataset_ping_stream, scramble_stream
from .session import SessionCounters, TruckSession
from .verdict import CONFIDENCE_TIERS, ProvisionalVerdict, confidence_tier

__all__ = [
    "CONFIDENCE_TIERS", "ProvisionalVerdict", "confidence_tier",
    "SessionCounters", "TruckSession",
    "FleetConfig", "FleetSessionManager",
    "Ping", "dataset_ping_stream", "scramble_stream",
]
