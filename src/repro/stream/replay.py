"""Replay harnesses: turn offline datasets into interleaved ping feeds.

Tests, benchmarks and the ``repro stream`` CLI all need the same thing:
a realistic regulator's-eye view of a fleet — thousands of pings from
many trucks interleaved in time order, optionally with the bounded
out-of-order arrival that real feeds exhibit.  :func:`dataset_ping_stream`
flattens a dataset's trajectories into one time-sorted list of
:class:`Ping` records; :func:`scramble_stream` perturbs per-truck ping
order within a bounded window, which a session's
:class:`~repro.processing.ReorderBuffer` of at least that capacity
recovers exactly (the property tests lean on this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Ping", "dataset_ping_stream", "scramble_stream"]


@dataclass(frozen=True)
class Ping:
    """One raw GPS fix as it arrives on the wire."""

    truck_id: str
    day: str
    lat: float
    lng: float
    t: float


def _trajectory_of(sample):
    """Accept raw trajectories, processed samples, or (sample, label)."""
    if isinstance(sample, tuple):
        sample = sample[0]
    trajectory = getattr(sample, "raw", None)
    if trajectory is not None:
        return trajectory
    trajectory = getattr(sample, "trajectory", None)
    if trajectory is not None:
        return trajectory
    return sample


def dataset_ping_stream(samples: Iterable) -> list[Ping]:
    """Flatten trajectories into one fleet-interleaved ping stream.

    Accepts anything with per-point ``lats`` / ``lngs`` / ``ts`` arrays
    — raw :class:`~repro.model.Trajectory` objects, processed samples
    (their ``raw`` trajectory is used), or ``(sample, label)`` tuples
    from an experiment test set.  The result is sorted by
    ``(day, t, truck_id)``: within a day, pings from different trucks
    interleave exactly as a shared feed would deliver them.
    """
    pings: list[Ping] = []
    for k, sample in enumerate(samples):
        trajectory = _trajectory_of(sample)
        truck_id = str(getattr(trajectory, "truck_id", None) or f"truck-{k}")
        day = str(getattr(trajectory, "day", None) or "")
        for lat, lng, t in zip(trajectory.lats, trajectory.lngs,
                               trajectory.ts):
            pings.append(Ping(truck_id, day, float(lat), float(lng),
                              float(t)))
    pings.sort(key=lambda p: (p.day, p.t, p.truck_id))
    return pings


def scramble_stream(pings: Sequence[Ping], window: int = 4,
                    seed: int = 0) -> list[Ping]:
    """Shuffle each truck's pings within consecutive bounded windows.

    Models the bounded reordering of real feeds: every ping stays within
    ``window`` positions of its in-order slot *for its own truck*, so a
    per-session :class:`~repro.processing.ReorderBuffer` with capacity
    ``>= window`` restores the exact original order (and the streamed
    answer stays bit-identical to the in-order replay).  ``window <= 1``
    returns the input unchanged.
    """
    if window <= 1:
        return list(pings)
    rng = random.Random(seed)
    # Scramble per truck-day: cross-truck interleaving is irrelevant to
    # per-session order, and keeping it stable makes diffs readable.
    by_session: dict[tuple[str, str], list[int]] = {}
    for i, ping in enumerate(pings):
        by_session.setdefault((ping.truck_id, ping.day), []).append(i)
    out = list(pings)
    for positions in by_session.values():
        ordered = [pings[i] for i in positions]
        scrambled: list[Ping] = []
        for start in range(0, len(ordered), window):
            block = ordered[start:start + window]
            rng.shuffle(block)
            scrambled.extend(block)
        for slot, ping in zip(positions, scrambled):
            out[slot] = ping
    return out
