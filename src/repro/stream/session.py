"""Per-truck streaming session: one ping in, incremental state forward.

A :class:`TruckSession` is the online mirror of
:meth:`repro.processing.RawTrajectoryProcessor.process` plus the
``sanitize_trajectory`` front door of :meth:`repro.pipeline.LEAD.detect`,
decomposed into per-ping steps:

1. **sanitize** — non-finite / out-of-range fixes are dropped and
   counted (the same predicate, and at flush time the same provenance
   note, as the offline ``sanitize_trajectory``);
2. **reorder** — a bounded :class:`~repro.processing.ReorderBuffer`
   restores timestamp monotonicity; too-late pings are dropped, never
   raised on;
3. **noise filter** — the incremental form of
   :class:`~repro.processing.NoiseFilter`: a fix is kept iff its speed
   relative to the *last kept* fix is plausible (identical rule,
   identical state, therefore an identical kept set);
4. **stay points** — kept fixes feed the resumable
   :class:`~repro.processing.StayPointScanner`; spans that close are
   final, the open trailing run waits for more pings or the flush.

Because each step is the same code (or the same state machine) the
offline path runs, the session's post-flush snapshot is exactly what the
offline pipeline computes on the completed trajectory — the convergence
guarantee the provisional detector builds on.

Sessions are checkpointable: :meth:`state` captures the whole thing as
a JSON-safe dict (floats round-trip exactly through ``repr``), and
:meth:`from_state` resumes bit-for-bit — the fleet manager uses this to
evict cold sessions to disk under memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import haversine_m, speed_kmh
from ..model import StayPoint, Trajectory
from ..obs.core import obs_event
from ..processing import (ProcessedTrajectory, RawTrajectoryProcessor,
                          ReorderBuffer, extract_move_points)

__all__ = ["SessionCounters", "TruckSession"]


@dataclass
class SessionCounters:
    """Lightweight per-session ingest counters."""

    pings_ingested: int = 0          # every ping offered to the session
    pings_dropped_invalid: int = 0   # non-finite / out-of-range fixes
    pings_dropped_late: int = 0      # behind the reorder horizon
    pings_reordered: int = 0         # out of order but recovered
    pings_dropped_noise: int = 0     # implausible speed (noise filter)
    pings_kept: int = 0              # fixes that reached the scanner
    staypoints_opened: int = 0       # runs that reached stay-point status
    staypoints_closed: int = 0       # spans decided and emitted

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, payload: dict) -> "SessionCounters":
        return cls(**{k: int(v) for k, v in payload.items()})

    def add(self, other: "SessionCounters") -> None:
        for key, value in other.__dict__.items():
            setattr(self, key, getattr(self, key) + value)


def _is_valid_fix(lat: float, lng: float, t: float) -> bool:
    """The per-ping form of ``validation._usable_mask``."""
    return bool(np.isfinite(lat) and np.isfinite(lng) and np.isfinite(t)
                and abs(lat) <= 90.0 and abs(lng) <= 180.0)


class TruckSession:
    """Incremental processing state of one truck-day."""

    def __init__(self, truck_id: str, day: str = "",
                 processor: RawTrajectoryProcessor | None = None,
                 reorder_capacity: int = 16,
                 reorder_policy: str = "reorder") -> None:
        self.truck_id = truck_id
        self.day = day
        self.processor = processor or RawTrajectoryProcessor()
        self.counters = SessionCounters()
        self._reorder = ReorderBuffer(reorder_capacity, reorder_policy)
        self._scanner = self.processor.extractor.scanner()
        self._spans: list[tuple[int, int]] = []
        self._last_kept: tuple[float, float, float] | None = None
        self._open_qualified = False
        self._finalized = False
        #: Monotone revision counter: bumped whenever the cleaned
        #: trajectory or the span set changes; lets the fleet manager
        #: (and the snapshot memo) skip untouched sessions on a tick.
        self.version = 0
        self._snapshot_memo: tuple[int, ProcessedTrajectory | None] | None \
            = None
        #: Most recent verdict the fleet manager emitted and the session
        #: revision it was computed at (bookkeeping only; the session
        #: itself never reads them — the manager uses the pair to skip
        #: re-detection of untouched sessions on a tick).
        self.last_verdict = None
        self.last_verdict_version = -1

    # ------------------------------------------------------------------
    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def num_cleaned_points(self) -> int:
        """Fixes kept so far (the cleaned trajectory length)."""
        return len(self._scanner)

    @property
    def num_closed_stay_points(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    def ingest(self, lat: float, lng: float, t: float) -> int:
        """Offer one raw ping; returns how many stay points closed.

        Never raises on hostile input: invalid fixes and too-late pings
        are dropped and counted.  Raises ``ValueError`` only on API
        misuse (ingesting into a finalized session).
        """
        if self._finalized:
            raise ValueError(
                f"session {self.truck_id}/{self.day} is finalized")
        self.counters.pings_ingested += 1
        lat, lng, t = float(lat), float(lng), float(t)
        if not _is_valid_fix(lat, lng, t):
            self.counters.pings_dropped_invalid += 1
            self._emit_drop("invalid", 1)
            return 0
        stats = self._reorder.stats
        dropped, reordered = stats.dropped, stats.reordered
        released = self._reorder.push(lat, lng, t)
        late = stats.dropped - dropped
        if late:
            # Reorder-buffer loss was previously visible only in local
            # counters; the event makes it auditable fleet-wide.
            self.counters.pings_dropped_late += late
            self._emit_drop("late", late)
        self.counters.pings_reordered += stats.reordered - reordered
        if len(released) == 1:
            # The common in-order case: one fix in, one fix out.  The
            # scalar lane beats array setup overhead at batch size 1.
            return self._accept(*released[0])
        return self._accept_batch(released)

    def ingest_batch(self, lats, lngs, ts) -> int:
        """Offer many raw pings at once; returns stay points closed.

        Semantically identical to calling :meth:`ingest` per ping — the
        sanitize predicate, reorder buffer, noise filter, and scanner
        see the same fixes in the same order and end in the same state
        (checkpoints match bit for bit).  The heavy stages run
        array-at-a-time: one vectorized sanitize mask, one noise-filter
        pass, one :meth:`~repro.processing.StayPointScanner.feed_batch`
        call for the whole released stretch.
        """
        if self._finalized:
            raise ValueError(
                f"session {self.truck_id}/{self.day} is finalized")
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        ts = np.asarray(ts, dtype=np.float64)
        if not (lats.shape == lngs.shape == ts.shape) or lats.ndim != 1:
            raise ValueError("ingest_batch needs equal-length 1-D arrays")
        count = int(ts.size)
        self.counters.pings_ingested += count
        if count == 0:
            return 0
        valid = (np.isfinite(lats) & np.isfinite(lngs) & np.isfinite(ts)
                 & (np.abs(lats) <= 90.0) & (np.abs(lngs) <= 180.0))
        invalid = count - int(valid.sum())
        if invalid:
            self.counters.pings_dropped_invalid += invalid
            self._emit_drop("invalid", invalid)
        stats = self._reorder.stats
        dropped, reordered = stats.dropped, stats.reordered
        released: list[tuple[float, float, float]] = []
        push = self._reorder.push
        for i in np.flatnonzero(valid):
            released.extend(push(float(lats[i]), float(lngs[i]),
                                 float(ts[i])))
        late = stats.dropped - dropped
        if late:
            self.counters.pings_dropped_late += late
            self._emit_drop("late", late)
        self.counters.pings_reordered += stats.reordered - reordered
        return self._accept_batch(released)

    def _emit_drop(self, reason: str, count: int) -> None:
        """Structured audit trail for data loss (no-op without telemetry).

        ``invalid`` = non-finite/out-of-range fixes, ``late`` = behind
        the reorder horizon (ReorderBuffer drops).  Noise-filter
        rejections are intentional cleaning, not loss, and stay
        counters-only.
        """
        obs_event("stream.ping_dropped", truck_id=self.truck_id,
                  day=self.day, reason=reason, count=count)

    def _accept(self, lat: float, lng: float, t: float) -> int:
        """One sanitized, in-order fix: noise filter then scanner."""
        kept = self._last_kept
        if kept is not None:
            distance = haversine_m(kept[0], kept[1], lat, lng)
            if (speed_kmh(distance, t - kept[2])
                    > self.processor.noise_filter.max_speed_kmh):
                self.counters.pings_dropped_noise += 1
                return 0
        self._last_kept = (lat, lng, t)
        self.counters.pings_kept += 1
        spans = self._scanner.feed(lat, lng, t)
        self._record_spans(spans)
        self.version += 1
        return len(spans)

    def _accept_batch(self, fixes: list[tuple[float, float, float]]) -> int:
        """Batched :meth:`_accept`: same kept set, same spans, same
        counters and version — the noise filter and scanner just see
        the whole released stretch as arrays instead of one fix at a
        time."""
        if not fixes:
            return 0
        lats = np.fromiter((f[0] for f in fixes), dtype=np.float64,
                           count=len(fixes))
        lngs = np.fromiter((f[1] for f in fixes), dtype=np.float64,
                           count=len(fixes))
        ts = np.fromiter((f[2] for f in fixes), dtype=np.float64,
                         count=len(fixes))
        kept = self.processor.noise_filter.kept_indices(
            lats, lngs, ts, prev=self._last_kept)
        self.counters.pings_dropped_noise += len(fixes) - int(kept.size)
        if kept.size == 0:
            return 0
        kept_lats = lats[kept]
        kept_lngs = lngs[kept]
        kept_ts = ts[kept]
        self._last_kept = (float(kept_lats[-1]), float(kept_lngs[-1]),
                           float(kept_ts[-1]))
        self.counters.pings_kept += int(kept.size)
        spans = self._scanner.feed_batch(kept_lats, kept_lngs, kept_ts)
        self._record_spans(spans)
        # One bump per kept fix, exactly like the per-ping lane, so a
        # checkpoint taken after a bulk ingest equals the per-ping one.
        self.version += int(kept.size)
        return len(spans)

    def _record_spans(self, spans: list[tuple[int, int]]) -> None:
        if spans:
            # The first closed span is the tracked open run when that
            # run had already qualified; any further spans in the same
            # burst opened and closed within it.
            newly_opened = len(spans) - (1 if self._open_qualified else 0)
            self.counters.staypoints_opened += max(0, newly_opened)
            self.counters.staypoints_closed += len(spans)
            self._spans.extend(spans)
            self._open_qualified = False
        if not self._open_qualified and self._scanner.open_run_qualifies():
            self._open_qualified = True
            self.counters.staypoints_opened += 1

    def finalize(self) -> int:
        """End of day: drain the reorder buffer, close the open run.

        Idempotent.  Returns how many stay points the flush closed.
        """
        if self._finalized:
            return 0
        closed = self._accept_batch(self._reorder.flush())
        spans = self._scanner.finish()
        self._record_spans(spans)
        closed += len(spans)
        self._finalized = True
        self.version += 1
        return closed

    # ------------------------------------------------------------------
    def sanitize_notes(self) -> list[str]:
        """Provenance notes matching the offline ``sanitize_trajectory``."""
        dropped = self.counters.pings_dropped_invalid
        if dropped:
            return [f"dropped {dropped} non-finite/out-of-range fixes"]
        return []

    def cleaned_trajectory(self) -> Trajectory:
        """The cleaned trajectory accumulated so far (a copy)."""
        return Trajectory(np.asarray(self._scanner.lats, dtype=np.float64),
                          np.asarray(self._scanner.lngs, dtype=np.float64),
                          np.asarray(self._scanner.ts, dtype=np.float64),
                          truck_id=self.truck_id, day=self.day)

    def snapshot(self) -> ProcessedTrajectory | None:
        """Processed view over the stay points that have *closed*.

        Returns ``None`` while no candidate exists — fewer than the
        processor's ``min_stay_points`` closed stay points, or more
        than the candidate generator's cap (the cases where the offline
        path abstains too).  Memoized per session revision, so repeated
        ticks without new pings reuse one object (and with it, the
        slice-fingerprint memo of the feature cache).
        """
        memo = self._snapshot_memo
        if memo is not None and memo[0] == self.version:
            return memo[1]
        snapshot = self._build_snapshot()
        self._snapshot_memo = (self.version, snapshot)
        return snapshot

    def _build_snapshot(self) -> ProcessedTrajectory | None:
        if len(self._spans) < self.processor.min_stay_points:
            return None
        trajectory = self.cleaned_trajectory()
        stay_points = [StayPoint(trajectory, start, end, ordinal=k + 1)
                       for k, (start, end) in enumerate(self._spans)]
        move_points = extract_move_points(trajectory, stay_points)
        try:
            candidates = self.processor.generator.generate(stay_points,
                                                           move_points)
        except ValueError:
            return None  # over the stay-point cap; offline abstains too
        return ProcessedTrajectory(
            raw=trajectory, cleaned=trajectory,
            stay_points=tuple(stay_points),
            move_points=tuple(move_points),
            candidates=tuple(candidates),
            label_pair=None)

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpointable state (JSON-safe; exact resume)."""
        return {
            "schema": 1,
            "truck_id": self.truck_id,
            "day": self.day,
            "scanner": self._scanner.state(),
            "reorder": self._reorder.state(),
            "spans": [list(span) for span in self._spans],
            "last_kept": (None if self._last_kept is None
                          else list(self._last_kept)),
            "open_qualified": self._open_qualified,
            "finalized": self._finalized,
            "version": self.version,
            "counters": self.counters.as_dict(),
        }

    @classmethod
    def from_state(cls, state: dict,
                   processor: RawTrajectoryProcessor | None = None
                   ) -> "TruckSession":
        """Resume a session from :meth:`state` output.

        The processor (thresholds) is configuration, not state — the
        caller passes the same one it always uses.
        """
        from ..processing import StayPointScanner
        session = cls(str(state["truck_id"]), str(state["day"]),
                      processor=processor)
        session._scanner = StayPointScanner.from_state(state["scanner"])
        session._reorder = ReorderBuffer.from_state(state["reorder"])
        session._spans = [(int(a), int(b)) for a, b in state["spans"]]
        kept = state["last_kept"]
        session._last_kept = None if kept is None else (
            float(kept[0]), float(kept[1]), float(kept[2]))
        session._open_qualified = bool(state["open_qualified"])
        session._finalized = bool(state["finalized"])
        session.version = int(state["version"])
        session.counters = SessionCounters.from_dict(state["counters"])
        return session
