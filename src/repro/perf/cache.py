"""Content-keyed caches for the featurization hot path.

Featurization is LEAD's most-repeated computation: every candidate of a
trajectory shares stay/move segments with its neighbours (candidate
``(i', j')`` covers stays ``i'..j'``), the autoencoder's training loop
featurizes the same candidates once per epoch, and the online stage
featurizes a trajectory again on every ``detect`` call.  The z-scored
feature matrix of a segment is a pure function of

* the cleaned trajectory's coordinates (content, not object identity),
* the segment's ``[start, end]`` index range and kind, and
* the featurization context (normalizer statistics, feature scale,
  subsampling cap, POI configuration),

so it can be cached under a key derived from exactly those inputs.  A
content key — rather than ``id()``-based memoization — means a reloaded
or re-deserialized trajectory with identical bytes hits the same entry,
and a refitted normalizer silently invalidates every stale entry because
the context fingerprint changes.

The cache is bounded (LRU) and purely additive: with ``maxsize=0`` every
lookup misses and behaviour is bit-for-bit the uncached code path.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable

import numpy as np

from ..obs.core import obs_event
from ..obs.metrics import default_registry, next_instance_id

__all__ = ["CacheStats", "LRUCache", "TrajectoryFingerprinter",
           "SegmentFeatureCache"]


class CacheStats:
    """Hit/miss/eviction counters of one cache instance.

    Since the observability subsystem landed, this is a *view*: the
    counts live in :func:`repro.obs.metrics.default_registry` as
    ``cache_{hits,misses,evictions}_total`` counters labelled with the
    cache name and a per-instance id, so Prometheus exposition and the
    legacy ``stats`` attribute read the same numbers.  The attribute
    surface (``hits`` / ``misses`` / ``evictions`` / ``hit_rate`` /
    ``as_dict``) is unchanged, and ``as_dict`` payloads stay
    byte-compatible with the pre-registry dataclass.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "cache_name")

    def __init__(self, name: str = "cache", registry=None) -> None:
        reg = registry if registry is not None else default_registry()
        labels = {"cache": name, "instance": str(next_instance_id())}
        self.cache_name = name
        self._hits = reg.counter(
            "cache_hits_total", help="cache lookups served from cache",
            labels=labels)
        self._misses = reg.counter(
            "cache_misses_total", help="cache lookups that missed",
            labels=labels)
        self._evictions = reg.counter(
            "cache_evictions_total", help="entries evicted by LRU",
            labels=labels)

    # -- recording (cache-internal) ------------------------------------
    def record_hit(self) -> None:
        self._hits.inc()

    def record_miss(self) -> None:
        self._misses.inc()

    def record_eviction(self) -> None:
        self._evictions.inc()
        # Visible to operators only while telemetry is active; the
        # counter above is unconditional.
        obs_event("cache.evicted", cache=self.cache_name)

    # -- legacy read surface -------------------------------------------
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``maxsize=0`` disables storage entirely (every ``get`` is a miss);
    ``maxsize=None`` means unbounded.  Not thread-safe by design — the
    repository's hot paths are single-threaded, and process-parallel
    stages (:mod:`repro.perf.parallel`) ship work to subprocesses whose
    caches are independent.
    """

    def __init__(self, maxsize: int | None = 65536,
                 name: str = "lru") -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be >= 0 or None")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.stats = CacheStats(name=name)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: object = None) -> object:
        try:
            value = self._data[key]
        except KeyError:
            self.stats.record_miss()
            return default
        self._data.move_to_end(key)
        self.stats.record_hit()
        return value

    def put(self, key: Hashable, value: object) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.maxsize is not None:
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.record_eviction()

    def clear(self) -> None:
        self._data.clear()


def _digest(*parts) -> bytes:
    """Blake2b over byte strings or C-contiguous arrays (zero-copy)."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part)
    return hasher.digest()


class TrajectoryFingerprinter:
    """Content fingerprints of trajectories, memoized per live object.

    Hashing a trajectory's coordinate arrays costs microseconds but would
    still dominate a per-segment lookup if repeated for every segment;
    the fingerprint is therefore memoized by object identity, holding a
    reference to the trajectory so its ``id()`` cannot be recycled (the
    same discipline as :class:`repro.features.FeatureExtractor`).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._memo: OrderedDict[tuple, tuple[object, bytes]] = OrderedDict()
        self._max_entries = max_entries

    def _memoized(self, key: tuple, trajectory, build) -> bytes:
        cached = self._memo.get(key)
        if cached is not None and cached[0] is trajectory:
            self._memo.move_to_end(key)
            return cached[1]
        digest = build()
        self._memo[key] = (trajectory, digest)
        while len(self._memo) > self._max_entries:
            self._memo.popitem(last=False)
        return digest

    def fingerprint(self, trajectory) -> bytes:
        return self._memoized(
            (id(trajectory),), trajectory,
            lambda: _digest(
                np.ascontiguousarray(trajectory.lats,
                                     dtype=np.float64).tobytes(),
                np.ascontiguousarray(trajectory.lngs,
                                     dtype=np.float64).tobytes(),
                np.ascontiguousarray(trajectory.ts,
                                     dtype=np.float64).tobytes(),
                repr((getattr(trajectory, "truck_id", None),
                      getattr(trajectory, "day", None))).encode()))

    def fingerprint_slice(self, trajectory, start: int, end: int) -> bytes:
        """Content digest of points ``[start, end]`` (inclusive) only.

        Segment features are a pure function of the fixes *inside* the
        segment, so keying on the slice content (rather than the whole
        trajectory) lets a growing streamed trajectory keep hitting the
        entries of its stable prefix: appending pings changes the full
        fingerprint but not the bytes of any closed segment.  Memoized
        per ``(object, start, end)`` so a tick's snapshot hashes each
        segment at most once.
        """
        return self._memoized(
            (id(trajectory), start, end), trajectory,
            lambda: _digest(
                np.ascontiguousarray(trajectory.lats[start:end + 1],
                                     dtype=np.float64),
                np.ascontiguousarray(trajectory.lngs[start:end + 1],
                                     dtype=np.float64),
                np.ascontiguousarray(trajectory.ts[start:end + 1],
                                     dtype=np.float64)))


class SegmentFeatureCache:
    """Content-keyed cache of per-segment feature matrices.

    Keys combine the trajectory's content fingerprint, the segment's
    ``(kind, start, end)`` coordinates, and a caller-supplied *context
    fingerprint* covering everything else the featurization depends on
    (normalizer statistics, feature scale, subsampling cap, POI config).
    Values are the final z-scored, rescaled ``(L, F)`` matrices; callers
    must treat them as read-only (the hot paths already do).
    """

    def __init__(self, maxsize: int | None = 65536) -> None:
        self._lru = LRUCache(maxsize, name="segment_features")
        self._fingerprinter = TrajectoryFingerprinter()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def key_for(self, segment, context: bytes,
                dtype: str = "float64") -> tuple:
        """The cache key of one stay/move segment under a context.

        The trajectory contributes only the *slice* the segment covers:
        features depend on nothing outside ``[start, end]``, and slice
        keying is what makes streaming ingest suffix-cheap — every tick
        snapshot of a growing trajectory is a new object with a new full
        fingerprint, but its closed segments carry identical slices at
        identical indices and keep hitting the same entries.  ``start``/
        ``end`` stay in the key because the subsampling grid is anchored
        at absolute indices.  ``dtype`` names the *stored matrix* dtype:
        float32 inference entries must never be served to a float64
        caller (or vice versa), so each precision tier owns a disjoint
        key space.
        """
        return (self._fingerprinter.fingerprint_slice(
                    segment.trajectory, segment.start, segment.end),
                type(segment).__name__, segment.start, segment.end, context,
                dtype)

    def get(self, segment, context: bytes,
            dtype: str = "float64") -> np.ndarray | None:
        return self._lru.get(self.key_for(segment, context, dtype))

    def put(self, segment, context: bytes, value: np.ndarray,
            dtype: str = "float64") -> None:
        self._lru.put(self.key_for(segment, context, dtype), value)

    def dtype_key_counts(self) -> dict[str, int]:
        """Live entry count per dtype key component (introspection)."""
        counts: dict[str, int] = {}
        for key in self._lru._data:
            name = key[-1]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def clear(self) -> None:
        self._lru.clear()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle as an *empty* cache of the same size.

        Process-parallel stages pickle the featurizer (which owns a
        cache) into worker processes; shipping megabytes of cached
        matrices along would defeat the point, and entries rebuilt in a
        worker are content-identical anyway.
        """
        return {"maxsize": self._lru.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.__init__(maxsize=state["maxsize"])
