"""Perf benchmark harness behind ``repro bench``.

Measures, at a named experiment scale:

* featurization wall-clock, cold cache vs warm cache;
* preprocessing front-end throughput — stay-point extraction, noise
  filtering, and bulk POI counting through the vectorized lanes, each
  against a pinned legacy per-fix scalar reference — with equivalence
  evidence (bit-identical spans and kept sets, POI counts at
  ``rtol=1e-9``);
* encoding throughput (trajectories/sec), per-trajectory loop vs one
  batched cross-trajectory pass;
* detection throughput, per-trajectory :meth:`LEAD.detect_processed`
  loop vs :meth:`LEAD.detect_processed_batch`;
* batched-vs-unbatched equivalence (``allclose`` at ``rtol=1e-9`` over
  the full test set, plus the observed max abs deviation);
* autoencoder training throughput (optimizer steps/sec) on the scale's
  own featurized candidates: the fused default path
  (:mod:`repro.nn.fused` single-node kernels + length-bucketed
  batching) versus the legacy per-step tape with the historical batch
  stream (``fused=False, bucket_batches=False``);
* wall-clock of a full tiny-scale offline ``fit`` (always tiny,
  whatever the bench scale — it is the trend line, not a rate).

The result dictionary is written to ``BENCH_lead.json`` so every future
change has a perf trajectory to compare against;
:func:`compare_to_baseline` implements the CI regression gate (fail when
throughput falls more than ``max_regression``× below a committed
baseline — machine-to-machine noise is real, order-of-magnitude cliffs
are not).
"""

from __future__ import annotations

import gc
import os
import platform
import time
from typing import Callable

import numpy as np

from ..nn.precision import inference_dtype as nn_inference_dtype

__all__ = ["run_bench", "run_stream_bench", "compare_to_baseline",
           "format_bench_table", "format_stream_bench_table",
           "GATED_METRICS", "STREAM_GATED_METRICS",
           "TELEMETRY_OVERHEAD_BUDGET_PCT"]

#: Metrics covered by the CI gate.  All are higher-is-better throughput
#: ratios gated against the committed baseline, except
#: ``telemetry_overhead_pct``, which is gated on an absolute <= 5%
#: budget (see :func:`compare_to_baseline`).
GATED_METRICS = ("encode_single_tps", "encode_batch_tps",
                 "encode_batch_f32_tps", "detect_single_tps",
                 "detect_batch_tps", "detect_batch_f32_tps",
                 "train_steps_fused_sps", "preprocess_extract_tps",
                 "preprocess_filter_tps", "preprocess_poi_pps",
                 "telemetry_overhead_pct")

#: Allowed slowdown (percent) of batched detection when telemetry is on.
TELEMETRY_OVERHEAD_BUDGET_PCT = 5.0

#: Streaming throughput metrics (higher is better) gated by
#: ``benchmarks/bench_stream.py`` against its committed baseline.
STREAM_GATED_METRICS = ("stream_ingest_pps", "stream_ingest_batch_pps",
                        "stream_tick_sps", "stream_flush_sps",
                        "serve_ingest_pps")

#: Candidates used for the training throughput measurement (keeps the
#: default-scale bench to a few seconds; tiny scales have fewer anyway).
_TRAIN_BENCH_CANDIDATES = 256


def _blas_vendor() -> str:
    """Best-effort BLAS vendor/version out of numpy's build metadata.

    Bench numbers are only comparable across machines when the GEMM
    backend is the same; recording the vendor next to the numbers makes
    an OpenBLAS-vs-MKL (or netlib fallback) delta diagnosable from the
    JSON alone.
    """
    try:
        info = np.show_config(mode="dicts")
        blas = (info.get("Build Dependencies") or {}).get("blas") or {}
        name = blas.get("name") or "unknown"
        version = blas.get("version")
        return f"{name} {version}" if version else str(name)
    except Exception:
        return "unknown"


def _environment() -> dict:
    """The reproducibility block stamped into every bench payload."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_vendor(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "omp_num_threads": os.environ.get("OMP_NUM_THREADS"),
        "openblas_num_threads": os.environ.get("OPENBLAS_NUM_THREADS"),
    }


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn()`` (min, the
    standard noise-robust estimator for CPU microbenchmarks).  Garbage
    collection is paused around each timed run so collection pauses
    triggered by *earlier* bench sections can't leak into this one."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            gc.enable()
    return best


def _clear_feature_caches(lead) -> None:
    if lead.feature_cache is not None:
        lead.feature_cache.clear()
    lead.extractor.clear_cache()
    lead.featurizer.clear_memos()


# -- pinned legacy preprocessing references -----------------------------------
# The geospatial front-end used to route every per-fix distance through
# numpy's scalar ufunc machinery.  These reimplementations pin that
# behaviour (like the unfused tape pins the legacy training path) so
# ``preprocess_*_speedup`` keeps measuring against a fixed reference
# rather than whatever the current scalar lane happens to cost.

def _legacy_haversine_m(lat1, lng1, lat2, lng2) -> float:
    lat1, lng1, lat2, lng2 = map(np.radians, (lat1, lng1, lat2, lng2))
    dlat = lat2 - lat1
    dlng = lng2 - lng1
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlng / 2.0) ** 2)
    return float(2.0 * 6_371_008.8 * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0))))


def _legacy_extract_spans(trajectory, max_distance_m: float,
                          min_duration_s: float) -> list[tuple[int, int]]:
    """Stay-point spans via the historical per-fix scalar rule loop."""
    lats, lngs, ts = trajectory.lats, trajectory.lngs, trajectory.ts
    n = len(ts)
    spans: list[tuple[int, int]] = []
    anchor, last, scan = 0, 0, 1
    while True:
        broke = False
        while scan < n:
            if (_legacy_haversine_m(lats[anchor], lngs[anchor],
                                    lats[scan], lngs[scan])
                    > max_distance_m):
                broke = True
                break
            last = scan
            scan += 1
        if not broke and anchor >= n - 1:
            return spans
        if last > anchor and ts[last] - ts[anchor] >= min_duration_s:
            spans.append((anchor, last))
            anchor = last + 1
        else:
            anchor += 1
        last = anchor
        scan = anchor + 1


def _legacy_filter_keep(trajectory, max_speed_kmh: float) -> list[int]:
    """Kept indices via the historical per-point noise-filter loop."""
    n = len(trajectory)
    if n <= 1:
        return list(range(n))
    keep = [0]
    for i in range(1, n):
        j = keep[-1]
        distance = _legacy_haversine_m(
            trajectory.lats[j], trajectory.lngs[j],
            trajectory.lats[i], trajectory.lngs[i])
        dt = float(trajectory.ts[i] - trajectory.ts[j])
        speed = distance / dt * 3.6 if dt > 0 else float("inf")
        if speed <= max_speed_kmh:
            keep.append(i)
    return keep


def _legacy_count_categories(pois, lat: float, lng: float,
                             radius_m: float) -> np.ndarray:
    """Per-point POI counting through the scalar query plane."""
    return pois.count_categories(lat, lng, radius_m=radius_m)


def _preprocess_metrics(lead, processed, repeats: int) -> tuple[dict, dict]:
    """Vectorized front-end throughput plus its equivalence evidence.

    Returns ``(metrics, equivalence)``: extraction and noise-filter
    trajectory throughput and bulk POI counting points/sec, each next to
    a pinned legacy-scalar reference, plus proof that the vectorized
    lanes reproduce the scalar results (bit-identical spans and kept
    sets, POI counts compared at ``rtol=1e-9``).
    """
    raw = [item.raw for item in processed]
    cleaned = [item.cleaned for item in processed]
    noise_filter = lead.processor.noise_filter
    extractor = lead.processor.extractor
    pois = lead.extractor.pois
    radius = lead.extractor.config.poi_radius_m
    n = len(processed)
    metrics: dict[str, float] = {}

    # -- stay-point extraction: chunked feed_batch vs legacy loop ------
    vector_s = _best_time(
        lambda: [extractor.extract(t) for t in cleaned], repeats)
    legacy_s = _best_time(
        lambda: [_legacy_extract_spans(t, extractor.max_distance_m,
                                       extractor.min_duration_s)
                 for t in cleaned], 1)
    metrics["preprocess_extract_tps"] = n / vector_s
    metrics["preprocess_extract_legacy_tps"] = n / legacy_s
    metrics["preprocess_extract_speedup"] = legacy_s / vector_s

    # -- noise filter: restart-on-drop bulk pass vs legacy loop --------
    vector_s = _best_time(
        lambda: [noise_filter.filter(t) for t in raw], repeats)
    legacy_s = _best_time(
        lambda: [_legacy_filter_keep(t, noise_filter.max_speed_kmh)
                 for t in raw], 1)
    metrics["preprocess_filter_tps"] = n / vector_s
    metrics["preprocess_filter_legacy_tps"] = n / legacy_s
    metrics["preprocess_filter_speedup"] = legacy_s / vector_s

    # -- POI counting: CSR grid batch vs per-point scalar queries ------
    points = int(sum(len(t) for t in cleaned))
    vector_s = _best_time(
        lambda: [pois.count_categories_batch(t.lats, t.lngs,
                                             radius_m=radius)
                 for t in cleaned], repeats)
    legacy_s = _best_time(
        lambda: [np.stack([_legacy_count_categories(
            pois, float(la), float(lo), radius)
            for la, lo in zip(t.lats, t.lngs)])
            for t in cleaned], 1)
    metrics["preprocess_poi_pps"] = points / vector_s
    metrics["preprocess_poi_legacy_pps"] = points / legacy_s
    metrics["preprocess_poi_speedup"] = legacy_s / vector_s

    # -- equivalence: the vectorized lanes ARE the scalar results ------
    spans_identical = all(
        [(sp.start, sp.end) for sp in extractor.extract(t)]
        == _legacy_extract_spans(t, extractor.max_distance_m,
                                 extractor.min_duration_s)
        for t in cleaned)
    filter_identical = all(
        np.array_equal(noise_filter.filter(t).ts,
                       t.ts[np.asarray(_legacy_filter_keep(
                           t, noise_filter.max_speed_kmh))])
        for t in raw)
    poi_max_diff = 0.0
    poi_allclose = True
    for t in cleaned:
        batch = pois.count_categories_batch(t.lats, t.lngs, radius_m=radius)
        scalar = np.stack([_legacy_count_categories(
            pois, float(la), float(lo), radius)
            for la, lo in zip(t.lats, t.lngs)])
        poi_allclose &= bool(np.allclose(batch, scalar, rtol=1e-9, atol=0.0))
        poi_max_diff = max(poi_max_diff,
                           float(np.abs(batch - scalar).max(initial=0.0)))
    equivalence = {
        "rtol": 1e-9,
        "spans_identical": bool(spans_identical),
        "filter_identical": bool(filter_identical),
        "poi_allclose": poi_allclose,
        "poi_max_abs_diff": poi_max_diff,
    }
    return metrics, equivalence


def run_bench(scale: str | None = None, repeats: int = 3,
              train_wall: bool = True, verbose: bool = False) -> dict:
    """Run the full benchmark suite at one experiment scale.

    Uses the same cached artifacts as the tables/benchmarks harness
    (training the model first if the scale has never been run), so a
    bench run after a ``repro tables`` run measures pure inference.
    """
    from ..experiments import Experiment, get_experiment_config
    config = get_experiment_config(scale)
    experiment = Experiment(config, retrain_if_corrupt=True)
    lead = experiment.lead_variant("LEAD", verbose=verbose)
    test_set = experiment.test_set()
    processed = [p for p, _ in test_set]
    if not processed:
        raise ValueError(f"scale {config.name!r} has an empty test set")
    n = len(processed)
    metrics: dict[str, float] = {}

    # -- featurization: cold vs warm cache ---------------------------------
    def featurize_all() -> None:
        for item in processed:
            lead._segments(item)

    _clear_feature_caches(lead)
    start = time.perf_counter()
    featurize_all()
    metrics["featurize_cold_s"] = time.perf_counter() - start
    metrics["featurize_warm_s"] = _best_time(featurize_all, repeats)
    metrics["featurize_cache_speedup"] = (
        metrics["featurize_cold_s"] / max(metrics["featurize_warm_s"], 1e-12))

    # -- preprocessing front-end ------------------------------------------
    preprocess_metrics, preprocess_equivalence = _preprocess_metrics(
        lead, processed, repeats)
    metrics.update(preprocess_metrics)

    # -- encoding throughput ----------------------------------------------
    single_s = _best_time(
        lambda: [lead.encode_candidates(item) for item in processed], repeats)
    batch_s = _best_time(
        lambda: lead.encode_candidates_batch(processed), repeats)
    metrics["encode_single_tps"] = n / single_s
    metrics["encode_batch_tps"] = n / batch_s
    metrics["encode_batch_speedup"] = single_s / batch_s

    # -- detection throughput ---------------------------------------------
    single_s = _best_time(
        lambda: [lead.detect_processed(item) for item in processed], repeats)
    batch_s = _best_time(
        lambda: lead.detect_processed_batch(processed), repeats)
    metrics["detect_single_tps"] = n / single_s
    metrics["detect_batch_tps"] = n / batch_s
    metrics["detect_batch_speedup"] = single_s / batch_s

    # -- telemetry overhead -------------------------------------------------
    # The same batched detection with the observability subsystem active
    # (spans + per-stage histograms recorded).  The gate budget is an
    # *absolute* 5% slowdown, checked in compare_to_baseline — telemetry
    # must stay near-free even when someone turns it on.
    from ..obs import Observability, observe
    with observe(Observability(seed=0)):
        telemetry_s = _best_time(
            lambda: lead.detect_processed_batch(processed), repeats)
    metrics["telemetry_overhead_pct"] = max(
        0.0, (telemetry_s / batch_s - 1.0) * 100.0)

    # -- float32 hot path ---------------------------------------------------
    # The same batched entry points under an active float32 inference
    # context; the *_f32_speedup ratios are against the float64 batched
    # numbers above (same warm caches, same batch shapes).
    with nn_inference_dtype("float32"):
        encode_f32_s = _best_time(
            lambda: lead.encode_candidates_batch(processed), repeats)
        detect_f32_s = _best_time(
            lambda: lead.detect_processed_batch(processed), repeats)
    metrics["encode_batch_f32_tps"] = n / encode_f32_s
    metrics["encode_batch_f32_speedup"] = (
        metrics["encode_batch_f32_tps"] / metrics["encode_batch_tps"])
    metrics["detect_batch_f32_tps"] = n / detect_f32_s
    metrics["detect_batch_f32_speedup"] = (
        metrics["detect_batch_f32_tps"] / metrics["detect_batch_tps"])

    # -- float32 parity gate ------------------------------------------------
    parity = lead.run_parity_gate(processed)
    precision_parity = {
        "verdict_agreement": parity["verdict_agreement"],
        "max_abs_divergence": parity["max_abs_divergence"],
        "margin": parity["margin"],
        "num_calibration": parity["num_calibration"],
        "passed": parity["passed"],
    }

    # -- batched == unbatched ---------------------------------------------
    singles = [lead.predict_distribution(item) for item in processed]
    batched = lead.predict_distribution_batch(processed)
    max_diff = max(float(np.abs(a - b).max())
                   for a, b in zip(singles, batched))
    equivalence = {
        "rtol": 1e-9,
        "allclose": bool(all(np.allclose(a, b, rtol=1e-9, atol=0.0)
                             for a, b in zip(singles, batched))),
        "max_abs_diff": max_diff,
    }

    # -- training throughput: fused default vs legacy tape ----------------
    metrics.update(_training_metrics(lead, processed, repeats))

    # -- tiny-scale train wall-clock --------------------------------------
    if train_wall:
        metrics["train_tiny_wall_s"] = _tiny_train_wall(verbose)

    cache_stats = (lead.feature_cache.stats.as_dict()
                   if lead.feature_cache is not None else None)
    if lead.feature_cache is not None:
        cache_stats["dtype_keys"] = lead.feature_cache.dtype_key_counts()
    return {
        "schema": 1,
        "scale": config.name,
        "generated_unix": time.time(),
        "environment": _environment(),
        "num_test_trajectories": n,
        "num_candidates": int(sum(p.num_candidates for p in processed)),
        "metrics": metrics,
        "equivalence": equivalence,
        "preprocess_equivalence": preprocess_equivalence,
        "precision_parity": precision_parity,
        "feature_cache": cache_stats,
    }


def _training_metrics(lead, processed, repeats: int,
                      max_candidates: int = _TRAIN_BENCH_CANDIDATES) -> dict:
    """Autoencoder training steps/sec: fused default path vs legacy tape.

    Both runs train a freshly initialized model (same seed) on the same
    candidates for one epoch at the default batch size; the *fused* run
    uses this release's default trainer configuration (fused kernels +
    length-bucketed batching), the *unfused* reference uses the legacy
    per-step tape over the historical unbucketed batch stream, i.e. the
    training path as it existed before the fused kernels landed.  The
    step count is identical in both (bucketing reorders batch contents,
    it does not change the number of optimizer steps).
    """
    from ..encoding import (AutoencoderTrainer, AutoencoderTrainingConfig,
                            HierarchicalAutoencoder)
    samples = []
    for item in processed:
        samples.extend(lead.featurizer.featurize_all(item.candidates))
        if len(samples) >= max_candidates:
            break
    samples = samples[:max_candidates]
    if not samples:
        return {}
    configs = {
        "fused": AutoencoderTrainingConfig(epochs=1, seed=0),
        "unfused": AutoencoderTrainingConfig(epochs=1, seed=0, fused=False,
                                             bucket_batches=False),
    }
    batch_size = configs["fused"].batch_size
    steps = int(np.ceil(len(samples) / batch_size))
    metrics: dict[str, float] = {"train_bench_candidates": len(samples),
                                 "train_bench_steps": steps}

    def timed_fit(cfg) -> float:
        """Wall-clock of ``fit`` alone (model init excluded)."""
        model = HierarchicalAutoencoder(lead.config.encoder)
        trainer = AutoencoderTrainer(model, cfg)
        start = time.perf_counter()
        trainer.fit(samples)
        return time.perf_counter() - start

    # Interleave the two measurements so slow drift on shared CI
    # machines hits both paths equally; training runs are short, so a
    # higher repeat floor is affordable and tames the ratio's noise.
    rounds = max(repeats, 5)
    walls = {name: float("inf") for name in configs}
    timed_fit(configs["fused"])  # warm-up (allocator, BLAS threads)
    for _ in range(rounds):
        for name, cfg in configs.items():
            walls[name] = min(walls[name], timed_fit(cfg))
    for name in configs:
        metrics[f"train_epoch_{name}_s"] = walls[name]
        metrics[f"train_steps_{name}_sps"] = steps / walls[name]
    metrics["train_fused_speedup"] = walls["unfused"] / walls["fused"]
    return metrics


def _tiny_train_wall(verbose: bool) -> float:
    """Wall-clock of a fresh tiny-scale offline stage (data gen excluded)."""
    from ..data import SyntheticWorld, generate_dataset
    from ..experiments import get_experiment_config
    from ..pipeline import LEAD
    config = get_experiment_config("tiny")
    world = SyntheticWorld(config.dataset.world)
    dataset = generate_dataset(config.dataset, world=world)
    train, _, _ = dataset.split_by_truck((8, 1, 1), seed=config.seed)
    model = LEAD(world.pois, config.lead)
    start = time.perf_counter()
    model.fit(train.samples, verbose=verbose)
    return time.perf_counter() - start


def compare_to_baseline(current: dict, baseline: dict,
                        max_regression: float = 2.0,
                        metrics: tuple[str, ...] = GATED_METRICS
                        ) -> list[str]:
    """CI regression gate: list of human-readable failures (empty = pass).

    A gated throughput metric fails when it drops more than
    ``max_regression``× below the committed baseline.  Scales must
    match — comparing tiny CI numbers against a default-scale baseline
    would gate on noise.  A baseline missing a metric never fails (new
    metrics phase in without flag days).  ``metrics`` selects the gated
    set: :data:`GATED_METRICS` for the offline bench,
    :data:`STREAM_GATED_METRICS` for the streaming bench.
    """
    if max_regression < 1.0:
        raise ValueError("max_regression must be >= 1.0")
    failures: list[str] = []
    if current.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: bench ran at {current.get('scale')!r} but "
            f"baseline is {baseline.get('scale')!r}")
        return failures
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    if "telemetry_overhead_pct" in metrics:
        overhead = cur_metrics.get("telemetry_overhead_pct")
        if overhead is not None and overhead > TELEMETRY_OVERHEAD_BUDGET_PCT:
            failures.append(
                f"telemetry_overhead_pct: telemetry slows batched "
                f"detection by {overhead:.2f}% (budget "
                f"{TELEMETRY_OVERHEAD_BUDGET_PCT:g}%)")
    for key in metrics:
        if key == "telemetry_overhead_pct":
            continue     # absolute budget above, not a baseline ratio
        base = base_metrics.get(key)
        cur = cur_metrics.get(key)
        if base is None or cur is None:
            continue
        floor = base / max_regression
        if cur < floor:
            if key.startswith("train_"):
                unit = "steps/s"
            elif key.startswith("stream_ingest"):
                unit = "pings/s"
            elif key.startswith("stream_"):
                unit = "sessions/s"
            elif key.endswith("_pps"):
                unit = "points/s"
            else:
                unit = "traj/s"
            failures.append(
                f"{key}: {cur:.2f} {unit} is more than "
                f"{max_regression:g}x below the baseline {base:.2f} "
                f"(floor {floor:.2f})")
    if not current.get("equivalence", {}).get("allclose", False):
        failures.append(
            "batched detection no longer matches per-trajectory results "
            f"(max abs diff "
            f"{current.get('equivalence', {}).get('max_abs_diff')})")
    parity = current.get("precision_parity")
    if parity is not None:
        if parity.get("verdict_agreement") != 1.0:
            failures.append(
                "float32 inference verdicts diverged from float64 "
                f"(agreement {parity.get('verdict_agreement')}, must be 1.0)")
        if not parity.get("passed", False):
            failures.append(
                "float32 parity gate failed (max abs divergence "
                f"{parity.get('max_abs_divergence')} vs margin "
                f"{parity.get('margin')})")
    preprocess = current.get("preprocess_equivalence")
    if preprocess is not None:
        if not preprocess.get("spans_identical", False):
            failures.append("vectorized stay-point extraction no longer "
                            "emits the scalar spans")
        if not preprocess.get("filter_identical", False):
            failures.append("vectorized noise filter no longer keeps the "
                            "scalar point set")
        if not preprocess.get("poi_allclose", False):
            failures.append(
                "bulk POI counting diverged from scalar queries (max abs "
                f"diff {preprocess.get('poi_max_abs_diff')})")
    return failures


def run_stream_bench(scale: str | None = None, repeats: int = 3,
                     num_ticks: int = 8, serve_shards: int = 4,
                     verbose: bool = False) -> dict:
    """Benchmark the online detection layer at one experiment scale.

    Reuses the cached offline artifacts, replays the scale's test set as
    an interleaved fleet ping feed, and measures

    * raw ingest throughput (pings/sec through sanitize → reorder →
      noise filter → stay-point scanner, no detector attached);
    * sharded serve ingest throughput: the same feed submitted through a
      ``serve_shards``-worker :class:`~repro.serve.FleetService`
      (``serve_ingest_pps``; the CI gate expects >= 2x the
      single-process number at 4 shards);
    * per-tick detection latency (mean and p95 over ``num_ticks`` ticks
      spread across the feed) and tick throughput in sessions/sec;
    * flush throughput (final verdicts/sec over the whole fleet);
    * suffix-refeaturization evidence: per-tick feature-cache misses on
      the longest trajectory — late ticks must not miss more than early
      ones, because closed segments keep hitting the slice-keyed cache
      (this is what makes amortized per-ping cost sublinear in the
      trajectory length);
    * streamed-vs-offline equivalence: every final verdict must carry
      the same candidate pair as offline ``LEAD.detect`` with an
      ``allclose`` distribution at ``rtol=1e-9``.
    """
    from ..experiments import Experiment, get_experiment_config
    from ..stream import FleetConfig, FleetSessionManager, \
        dataset_ping_stream
    config = get_experiment_config(scale)
    experiment = Experiment(config, retrain_if_corrupt=True)
    lead = experiment.lead_variant("LEAD", verbose=verbose)
    raw = [p.raw for p, _ in experiment.test_set()]
    if not raw:
        raise ValueError(f"scale {config.name!r} has an empty test set")
    pings = dataset_ping_stream(raw)
    n_sessions = len(raw)
    metrics: dict[str, float] = {}

    # -- ingest throughput (no detector) -----------------------------------
    def replay_ingest() -> None:
        manager = FleetSessionManager(None, FleetConfig(
            max_sessions=n_sessions + 1))
        for ping in pings:
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
    metrics["stream_ingest_pps"] = (
        len(pings) / _best_time(replay_ingest, repeats))

    # -- bulk ingest throughput (array-at-a-time session lane) --------------
    def replay_ingest_batch() -> None:
        from ..stream import TruckSession
        for trajectory in raw:
            session = TruckSession(str(trajectory.truck_id),
                                   str(trajectory.day))
            session.ingest_batch(trajectory.lats, trajectory.lngs,
                                 trajectory.ts)
            session.finalize()
    metrics["stream_ingest_batch_pps"] = (
        len(pings) / _best_time(replay_ingest_batch, repeats))

    # -- sharded serve ingest throughput (no detector) ----------------------
    # Same ingest work as replay_ingest, spread over ``serve_shards``
    # worker processes by repro.serve.  A huge high-water mark keeps
    # admission control out of the timing and the clock covers only
    # submit -> wait() on an already-started fleet (steady-state
    # capacity; worker fork/teardown is cold-start, not throughput —
    # each repeat still gets a fresh service so sessions never carry
    # over).  The gate: at 4 shards this must stay >= 2x the
    # single-process stream_ingest_pps number.
    def replay_serve() -> float:
        from ..serve import FleetService, ServeConfig
        serve_config = ServeConfig(
            num_shards=serve_shards, queue_high_water=1 << 20,
            fleet=FleetConfig(max_sessions=n_sessions + 1))
        # One submit per replay, mirroring replay_ingest_batch's full
        # day per session: both batch lanes see the same chunk sizes.
        with FleetService(None, config=serve_config) as service:
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                service.submit(pings)
                service.wait()
                return time.perf_counter() - t0
            finally:
                gc.enable()
    metrics["serve_ingest_pps"] = (
        len(pings) / min(replay_serve() for _ in range(max(1, repeats))))
    metrics["serve_shards"] = float(serve_shards)
    metrics["serve_scaling"] = (
        metrics["serve_ingest_pps"] / metrics["stream_ingest_pps"])

    # -- tick latency / throughput -----------------------------------------
    _clear_feature_caches(lead)
    manager = FleetSessionManager(lead, FleetConfig(
        max_sessions=n_sessions + 1))
    chunk = max(1, len(pings) // num_ticks)
    tick_walls: list[float] = []
    tick_verdicts = 0
    for start in range(0, len(pings), chunk):
        for ping in pings[start:start + chunk]:
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        t0 = time.perf_counter()
        tick_verdicts += len(manager.tick())
        tick_walls.append(time.perf_counter() - t0)
    metrics["stream_tick_mean_s"] = float(np.mean(tick_walls))
    metrics["stream_tick_p95_s"] = float(np.percentile(tick_walls, 95))
    metrics["stream_tick_sps"] = tick_verdicts / sum(tick_walls)

    # -- flush throughput ---------------------------------------------------
    t0 = time.perf_counter()
    finals = manager.flush_all()
    metrics["stream_flush_sps"] = len(finals) / (time.perf_counter() - t0)
    cache_stats = (lead.feature_cache.stats.as_dict()
                   if lead.feature_cache is not None else None)
    if lead.feature_cache is not None:
        cache_stats["dtype_keys"] = lead.feature_cache.dtype_key_counts()

    # -- suffix-only refeaturization on the longest trajectory --------------
    sublinear = None
    if lead.feature_cache is not None:
        longest = max(raw, key=len)
        lead.feature_cache.clear()
        solo = FleetSessionManager(lead, FleetConfig())
        step = max(1, len(longest) // 10)
        miss_per_tick: list[int] = []
        for i, (lat, lng, t) in enumerate(zip(longest.lats, longest.lngs,
                                              longest.ts)):
            solo.ingest(str(longest.truck_id), float(lat), float(lng),
                        float(t), day=str(longest.day))
            if (i + 1) % step == 0:
                before = lead.feature_cache.stats.misses
                solo.tick()
                miss_per_tick.append(
                    lead.feature_cache.stats.misses - before)
        solo.flush_all()
        busy = [m for m in miss_per_tick if m]
        sublinear = {
            "trajectory_pings": len(longest),
            "misses_per_tick": miss_per_tick,
            "hit_rate": lead.feature_cache.stats.hit_rate,
            # Late ticks re-featurize no more than early ones: the
            # closed prefix is served from the slice-keyed cache.
            "suffix_only": bool(not busy or busy[-1] <= max(busy[0], 4)),
        }

    # -- streamed == offline -----------------------------------------------
    by_key = {(v.truck_id, v.day): v for v in finals}
    max_diff, allclose, compared = 0.0, True, 0
    for trajectory in raw:
        offline = lead.detect(trajectory)
        verdict = by_key[(str(trajectory.truck_id), str(trajectory.day))]
        if offline is None:
            allclose &= verdict.pair is None
            continue
        compared += 1
        if (verdict.pair != offline.pair
                or not np.allclose(verdict.distribution,
                                   offline.distribution,
                                   rtol=1e-9, atol=0.0)):
            allclose = False
            continue
        max_diff = max(max_diff, float(np.abs(
            verdict.distribution - offline.distribution).max()))
    equivalence = {"rtol": 1e-9, "allclose": bool(allclose),
                   "max_abs_diff": max_diff,
                   "trajectories_compared": compared}

    return {
        "schema": 1,
        "kind": "stream",
        "scale": config.name,
        "generated_unix": time.time(),
        "environment": _environment(),
        "num_sessions": n_sessions,
        "num_pings": len(pings),
        "num_ticks": len(tick_walls),
        "metrics": metrics,
        "equivalence": equivalence,
        "sublinear": sublinear,
        "feature_cache": cache_stats,
    }


def format_stream_bench_table(payload: dict) -> str:
    """Render a streaming bench payload as a readable table."""
    metrics = payload["metrics"]
    lines = [
        f"scale={payload['scale']}  sessions={payload['num_sessions']}  "
        f"pings={payload['num_pings']}  ticks={payload['num_ticks']}",
        f"  ingest            {metrics['stream_ingest_pps']:10.0f} pings/s",
        f"  ingest (bulk)     "
        f"{metrics.get('stream_ingest_batch_pps', 0.0):10.0f} pings/s",
        f"  ingest (served)   "
        f"{metrics.get('serve_ingest_pps', 0.0):10.0f} pings/s"
        f"  ({metrics.get('serve_shards', 0.0):.0f} shards, "
        f"{metrics.get('serve_scaling', 0.0):.1f}x)",
        f"  tick (mean)       {metrics['stream_tick_mean_s'] * 1e3:10.2f} ms",
        f"  tick (p95)        {metrics['stream_tick_p95_s'] * 1e3:10.2f} ms",
        f"  tick throughput   {metrics['stream_tick_sps']:10.1f} sessions/s",
        f"  flush             {metrics['stream_flush_sps']:10.1f} sessions/s",
    ]
    sublinear = payload.get("sublinear")
    if sublinear:
        lines.append(
            f"  refeaturization   suffix_only={sublinear['suffix_only']}  "
            f"cache_hit_rate={sublinear['hit_rate']:.2f}")
    return "\n".join(lines)


def format_bench_table(payload: dict) -> str:
    """Render a bench payload as the README's throughput table."""
    metrics = payload["metrics"]
    rows = [
        ("encode (per-trajectory loop)",
         f"{metrics['encode_single_tps']:8.2f} traj/s", ""),
        ("encode (batched)",
         f"{metrics['encode_batch_tps']:8.2f} traj/s",
         f"{metrics['encode_batch_speedup']:.1f}x"),
        ("detect (per-trajectory loop)",
         f"{metrics['detect_single_tps']:8.2f} traj/s", ""),
        ("detect (batched)",
         f"{metrics['detect_batch_tps']:8.2f} traj/s",
         f"{metrics['detect_batch_speedup']:.1f}x"),
        ("featurize (cold cache)",
         f"{metrics['featurize_cold_s']:8.3f} s", ""),
        ("featurize (warm cache)",
         f"{metrics['featurize_warm_s']:8.3f} s",
         f"{metrics['featurize_cache_speedup']:.0f}x"),
    ]
    if "encode_batch_f32_tps" in metrics:
        rows.insert(2, ("encode (batched, float32)",
                        f"{metrics['encode_batch_f32_tps']:8.2f} traj/s",
                        f"{metrics['encode_batch_f32_speedup']:.1f}x"))
        rows.insert(5, ("detect (batched, float32)",
                        f"{metrics['detect_batch_f32_tps']:8.2f} traj/s",
                        f"{metrics['detect_batch_f32_speedup']:.1f}x"))
    if "telemetry_overhead_pct" in metrics:
        rows.append(("telemetry overhead (detect)",
                     f"{metrics['telemetry_overhead_pct']:8.2f} %", ""))
    if "preprocess_extract_tps" in metrics:
        rows.append(("stay points (legacy loop)",
                     f"{metrics['preprocess_extract_legacy_tps']:8.2f}"
                     f" traj/s", ""))
        rows.append(("stay points (chunked scan)",
                     f"{metrics['preprocess_extract_tps']:8.2f} traj/s",
                     f"{metrics['preprocess_extract_speedup']:.1f}x"))
        rows.append(("noise filter (legacy loop)",
                     f"{metrics['preprocess_filter_legacy_tps']:8.2f}"
                     f" traj/s", ""))
        rows.append(("noise filter (bulk pass)",
                     f"{metrics['preprocess_filter_tps']:8.2f} traj/s",
                     f"{metrics['preprocess_filter_speedup']:.1f}x"))
        rows.append(("POI counts (scalar queries)",
                     f"{metrics['preprocess_poi_legacy_pps']:8.0f} pts/s",
                     ""))
        rows.append(("POI counts (CSR grid batch)",
                     f"{metrics['preprocess_poi_pps']:8.0f} pts/s",
                     f"{metrics['preprocess_poi_speedup']:.1f}x"))
    if "train_steps_fused_sps" in metrics:
        rows.append(("train (legacy per-step tape)",
                     f"{metrics['train_steps_unfused_sps']:8.2f} steps/s",
                     ""))
        rows.append(("train (fused + bucketed)",
                     f"{metrics['train_steps_fused_sps']:8.2f} steps/s",
                     f"{metrics['train_fused_speedup']:.1f}x"))
    if "train_tiny_wall_s" in metrics:
        rows.append(("offline fit (tiny scale)",
                     f"{metrics['train_tiny_wall_s']:8.2f} s", ""))
    lines = [f"scale={payload['scale']}  "
             f"trajectories={payload['num_test_trajectories']}  "
             f"candidates={payload['num_candidates']}"]
    lines.append(f"{'stage':<30} {'rate':>16} {'speedup':>8}")
    for name, rate, speedup in rows:
        lines.append(f"{name:<30} {rate:>16} {speedup:>8}")
    eq = payload["equivalence"]
    lines.append(f"batched == unbatched: allclose(rtol={eq['rtol']:g}) -> "
                 f"{eq['allclose']} (max abs diff {eq['max_abs_diff']:.3g})")
    parity = payload.get("precision_parity")
    if parity:
        lines.append(
            f"float32 parity gate: agreement="
            f"{parity['verdict_agreement']:.3f}  max divergence="
            f"{parity['max_abs_divergence']:.3g} (margin "
            f"{parity['margin']:g})  passed={parity['passed']}")
    pre = payload.get("preprocess_equivalence")
    if pre:
        lines.append(
            f"vectorized == scalar preprocessing: spans_identical="
            f"{pre['spans_identical']}  filter_identical="
            f"{pre['filter_identical']}  poi_allclose={pre['poi_allclose']} "
            f"(max abs diff {pre['poi_max_abs_diff']:.3g})")
    return "\n".join(lines)
