"""Process-parallel map with a deterministic seeding discipline.

The offline stages (truck-day simulation, raw-trajectory processing,
candidate featurization) are embarrassingly parallel: each task is a pure
function of its inputs, or — for the simulator — of its inputs plus a
random stream.  Two rules make them safe to parallelize:

1. **Order is part of the contract.**  ``parallel_map`` always returns
   results in input order, regardless of completion order.
2. **Randomness is keyed by task, never by schedule.**  A stochastic task
   never shares a generator with its siblings; it derives its own stream
   from ``(seed, task_index)`` via :func:`spawn_rng`, so the output is a
   function of the seed and the task's position — bit-for-bit identical
   whether the map runs serially, with 2 workers, or with 32.

``workers=None`` / ``0`` / ``1`` run serially in-process (the default —
reproducible, no pickling, no pool startup).  ``workers >= 2`` uses a
``ProcessPoolExecutor``; if the platform refuses to give us a pool (no
fork support, sandboxed semaphores, dead workers), the map degrades to
serial execution instead of crashing — the results are identical by rule
2, only slower.

**Failure semantics** are identical on every path: a task that raises
surfaces as :class:`~repro.errors.TaskFailedError` carrying the failing
item's index, with the original exception chained.  Passing a
:class:`~repro.supervise.RetryPolicy` turns the map *supervised*:
crashed tasks are retried up to the attempt budget, attempts that
exceed the policy's ``timeout_s`` are abandoned (hung worker), and any
task the pool cannot complete is re-executed serially in the parent —
order and determinism preserved by rule 2 — before the map gives up.

Chaos (:mod:`repro.chaos`) instruments dispatch at fault site
``"parallel.task"``: decisions are drawn *in the parent*, keyed by task
index so the ledger is schedule-independent, and applied wherever the
task runs — ``crash`` raises, ``hang`` sleeps ``param`` seconds,
``wrong`` returns :data:`CHAOS_WRONG_RESULT` (catchable only via the
``verify`` callback — silent corruption is the failure mode it models).
A decision is drawn once per task, so the retry / serial re-execution
path runs the task clean: exactly the recovery being tested.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, TypeVar

import numpy as np

from ..chaos.core import Fault, chaos_point
from ..errors import TaskFailedError
from ..obs.core import obs_span

__all__ = ["spawn_rng", "parallel_map", "effective_workers",
           "CHAOS_WRONG_RESULT"]

T = TypeVar("T")
R = TypeVar("R")

#: Sentinel returned by a task hit with a ``wrong``-kind chaos fault.
CHAOS_WRONG_RESULT = "__repro_chaos_wrong_result__"


def spawn_rng(seed: int, index: int) -> np.random.Generator:
    """An independent generator for task ``index`` of a seeded stage.

    Uses :class:`numpy.random.SeedSequence` spawn keys, the supported way
    to derive statistically independent child streams: the stream depends
    only on ``(seed, index)``, never on how many sibling tasks exist or
    which worker runs them.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,)))


def effective_workers(workers: int | None) -> int:
    """Normalize a worker-count request to an actual process count.

    ``None``/``0``/``1`` mean serial; negative values mean "one per CPU".
    """
    if workers is None:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return max(int(workers), 1)


class _InjectedWorkerCrash(RuntimeError):
    """Raised inside a task hit by a ``crash`` chaos fault."""


class _ChaoticTask:
    """Apply a parent-drawn chaos decision around one task call.

    Picklable (function + frozen Fault), so the decision made in the
    parent is enforced wherever the task runs.
    """

    def __init__(self, fn: Callable, fault: Fault) -> None:
        self.fn = fn
        self.fault = fault

    def __call__(self, item):
        fault = self.fault
        if fault.kind == "crash":
            raise _InjectedWorkerCrash(
                f"chaos: injected worker crash (seq {fault.seq})")
        if fault.kind == "hang":
            time.sleep(fault.param if fault.param is not None else 0.25)
        elif fault.kind == "wrong":
            return CHAOS_WRONG_RESULT
        return self.fn(item)


def _clean(call: Callable) -> Callable:
    """The fault-free form of a dispatched call (for recovery paths)."""
    return call.fn if isinstance(call, _ChaoticTask) else call


def _dispatch_plan(fn: Callable[[T], R],
                   count: int) -> list[Callable[[T], R]]:
    """Per-item callables with chaos decisions pre-drawn in the parent."""
    calls: list[Callable[[T], R]] = []
    for index in range(count):
        fault = chaos_point("parallel.task", key=str(index))
        calls.append(fn if fault is None else _ChaoticTask(fn, fault))
    return calls


def _fail(index: int, exc: BaseException) -> TaskFailedError:
    error = TaskFailedError(index, f"{type(exc).__name__}: {exc}")
    error.__cause__ = exc
    return error


def _bump(counters: dict | None, key: str, by: int = 1) -> None:
    if counters is not None:
        counters[key] = counters.get(key, 0) + by


def _run_serial(calls: list[Callable[[T], R]], items: list[T],
                retry=None, verify=None,
                counters: dict | None = None) -> list[R]:
    """In-process execution with the shared failure/retry semantics."""
    results: list[R] = []
    for index, (call, item) in enumerate(zip(calls, items)):
        attempts = 1 if retry is None else retry.max_attempts
        failure: BaseException | None = None
        # In-process tasks inherit the ambient telemetry context, so each
        # gets a real child span; pool workers run detached (no-op).
        with obs_span("parallel.task", child_key=str(index), index=index):
            for attempt in range(attempts):
                # The drawn chaos fault applies to the first attempt only;
                # retries run the task clean (recovery under test).
                run = call if attempt == 0 else _clean(call)
                if attempt > 0:
                    _bump(counters, "retries")
                try:
                    value = run(item)
                except Exception as exc:
                    failure = exc
                    continue
                if verify is not None and not verify(value):
                    failure = ValueError("result rejected by verify()")
                    continue
                failure = None
                results.append(value)
                break
            if failure is not None:
                raise _fail(index, failure) from failure
    return results


def _run_task_remote(call: Callable, item):
    """Module-level worker entry (picklable) for the supervised pool."""
    return call(item)


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 workers: int | None = None,
                 chunksize: int | None = None,
                 retry=None,
                 verify: Callable[[R], bool] | None = None,
                 counters: dict | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results are returned in input order.  ``fn`` and the items must be
    picklable when ``workers >= 2`` (module-level functions, bound
    methods of picklable objects, or ``functools.partial`` of either).
    A task that raises surfaces as :class:`~repro.errors.TaskFailedError`
    with the failing item's index attached, identically on the serial
    and pool paths; *pool-level* failures (platform refuses to fork,
    workers killed by the OS) fall back to computing serially, because
    every task is pure or deterministically seeded — see the module
    docstring.

    ``retry`` (a :class:`~repro.supervise.RetryPolicy`) enables
    supervision: per-task resubmission on crash, abandonment of attempts
    exceeding ``retry.timeout_s``, and a final serial re-execution in
    the parent before a task is declared failed.  ``verify`` rejects
    wrong results (``False`` → treated as a task failure); ``counters``
    (any dict) accumulates ``retries`` / ``timeouts`` /
    ``serial_fallbacks`` / ``pool_failures`` for recovery ledgers.
    """
    items = list(items)
    count = effective_workers(workers)
    with obs_span("parallel.map", tasks=len(items), workers=count):
        return _map_impl(fn, items, count, chunksize, retry, verify,
                         counters)


def _map_impl(fn, items, count, chunksize, retry, verify,
              counters) -> list:
    calls = _dispatch_plan(fn, len(items))
    chaotic = any(isinstance(call, _ChaoticTask) for call in calls)
    if count <= 1 or len(items) <= 1:
        return _run_serial(calls, items, retry=retry, verify=verify,
                           counters=counters)
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:                                 # pragma: no cover
        return _run_serial(calls, items, retry=retry, verify=verify,
                           counters=counters)
    if retry is not None:
        return _supervised_pool_map(calls, items, count, retry, verify,
                                    counters, ProcessPoolExecutor,
                                    BrokenProcessPool)
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * count))
    try:
        with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
            if chaotic:
                # Rare (chaos installed): ship each pre-drawn decision.
                raw = pool.map(_run_task_remote, calls, items,
                               chunksize=chunksize)
            else:
                raw = pool.map(fn, items, chunksize=chunksize)
            results = list(raw)
    except (OSError, PermissionError, BrokenProcessPool):
        # The pool itself failed (sandbox without semaphores, OOM-killed
        # worker, missing fork support).  The tasks are schedule-
        # independent by contract, so a serial rerun is bit-identical.
        _bump(counters, "pool_failures")
        return _run_serial(calls, items, counters=counters)
    except Exception:
        # A task raised.  pool.map cannot say which, so re-run serially:
        # the tasks are deterministic, so the same input fails again and
        # the serial path attaches its index to the TaskFailedError.
        return _run_serial(calls, items, counters=counters)
    if verify is not None:
        for index, value in enumerate(results):
            if not verify(value):
                raise _fail(index, ValueError(
                    "result rejected by verify()"))
    return results


def _supervised_pool_map(calls, items, count, retry, verify, counters,
                         pool_cls, broken_pool_exc) -> list:
    """Submit per task, enforce timeouts, retry, fall back serially."""
    from concurrent.futures import TimeoutError as FutureTimeout
    results: list = [None] * len(items)
    needs_serial: list[int] = []
    try:
        pool = pool_cls(max_workers=min(count, len(items)))
    except (OSError, PermissionError):
        _bump(counters, "pool_failures")
        return _run_serial(calls, items, retry=retry, verify=verify,
                           counters=counters)
    try:
        active = {index: (pool.submit(_run_task_remote, calls[index],
                                      items[index]), 1)
                  for index in range(len(items))}
        while active:
            pool_broken = False
            for index in sorted(active):
                future, attempt = active.pop(index)
                failed = False
                try:
                    value = future.result(timeout=retry.timeout_s)
                except FutureTimeout:
                    _bump(counters, "timeouts")
                    future.cancel()
                    failed = True
                except broken_pool_exc:
                    pool_broken = True
                    needs_serial.append(index)
                    continue
                except Exception:
                    failed = True    # the task crashed in the worker
                if not failed and verify is not None \
                        and not verify(value):
                    failed = True
                if not failed:
                    results[index] = value
                    continue
                if pool_broken:
                    needs_serial.append(index)
                elif attempt < retry.max_attempts:
                    _bump(counters, "retries")
                    # Retries run the task clean: the drawn chaos fault
                    # fired on the first attempt (see _ChaoticTask).
                    active[index] = (
                        pool.submit(_run_task_remote, _clean(calls[index]),
                                    items[index]), attempt + 1)
                else:
                    needs_serial.append(index)
            if pool_broken:
                _bump(counters, "pool_failures")
                needs_serial.extend(active)
                active.clear()
    finally:
        # A hung worker's injected sleep is bounded (see _ChaoticTask);
        # wait=False returns now and the interpreter reaps at exit.
        pool.shutdown(wait=False, cancel_futures=True)
    for index in sorted(set(needs_serial)):
        _bump(counters, "serial_fallbacks")
        try:
            value = _clean(calls[index])(items[index])
        except Exception as exc:
            raise _fail(index, exc) from exc
        if verify is not None and not verify(value):
            raise _fail(index, ValueError(
                "result rejected by verify() after serial re-execution"))
        results[index] = value
    return results
