"""Process-parallel map with a deterministic seeding discipline.

The offline stages (truck-day simulation, raw-trajectory processing,
candidate featurization) are embarrassingly parallel: each task is a pure
function of its inputs, or — for the simulator — of its inputs plus a
random stream.  Two rules make them safe to parallelize:

1. **Order is part of the contract.**  ``parallel_map`` always returns
   results in input order, regardless of completion order.
2. **Randomness is keyed by task, never by schedule.**  A stochastic task
   never shares a generator with its siblings; it derives its own stream
   from ``(seed, task_index)`` via :func:`spawn_rng`, so the output is a
   function of the seed and the task's position — bit-for-bit identical
   whether the map runs serially, with 2 workers, or with 32.

``workers=None`` / ``0`` / ``1`` run serially in-process (the default —
reproducible, no pickling, no pool startup).  ``workers >= 2`` uses a
``ProcessPoolExecutor``; if the platform refuses to give us a pool (no
fork support, sandboxed semaphores, dead workers), the map degrades to
serial execution instead of crashing — the results are identical by rule
2, only slower.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, TypeVar

import numpy as np

__all__ = ["spawn_rng", "parallel_map", "effective_workers"]

T = TypeVar("T")
R = TypeVar("R")


def spawn_rng(seed: int, index: int) -> np.random.Generator:
    """An independent generator for task ``index`` of a seeded stage.

    Uses :class:`numpy.random.SeedSequence` spawn keys, the supported way
    to derive statistically independent child streams: the stream depends
    only on ``(seed, index)``, never on how many sibling tasks exist or
    which worker runs them.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,)))


def effective_workers(workers: int | None) -> int:
    """Normalize a worker-count request to an actual process count.

    ``None``/``0``/``1`` mean serial; negative values mean "one per CPU".
    """
    if workers is None:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return max(int(workers), 1)


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 workers: int | None = None,
                 chunksize: int | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Results are returned in input order.  ``fn`` and the items must be
    picklable when ``workers >= 2`` (module-level functions, bound
    methods of picklable objects, or ``functools.partial`` of either).
    Exceptions raised by ``fn`` propagate unchanged; *pool-level*
    failures (platform refuses to fork, workers killed by the OS) fall
    back to computing serially, because every task is pure or
    deterministically seeded — see the module docstring.
    """
    items = list(items)
    count = effective_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:                                 # pragma: no cover
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * count))
    try:
        with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError, BrokenProcessPool):
        # The pool itself failed (sandbox without semaphores, OOM-killed
        # worker, missing fork support).  The tasks are schedule-
        # independent by contract, so a serial rerun is bit-identical.
        return [fn(item) for item in items]
