"""Throughput layer: caching, deterministic parallelism, benchmarks.

This package holds the machinery that makes LEAD fast without changing
what it computes:

* :mod:`repro.perf.cache` — content-keyed LRU caches for featurization;
* :mod:`repro.perf.parallel` — order-preserving, deterministically
  seeded process-parallel map for the offline stages;
* :mod:`repro.perf.bench` — the ``repro bench`` harness that measures
  trajectories/sec and writes ``BENCH_lead.json``.
"""

from .bench import (STREAM_GATED_METRICS, compare_to_baseline,
                    format_bench_table, format_stream_bench_table,
                    run_bench, run_stream_bench)
from .cache import CacheStats, LRUCache, SegmentFeatureCache, \
    TrajectoryFingerprinter
from .parallel import effective_workers, parallel_map, spawn_rng

__all__ = [
    "CacheStats", "LRUCache", "SegmentFeatureCache",
    "TrajectoryFingerprinter",
    "effective_workers", "parallel_map", "spawn_rng",
    "run_bench", "run_stream_bench", "compare_to_baseline",
    "format_bench_table", "format_stream_bench_table",
    "STREAM_GATED_METRICS",
]
