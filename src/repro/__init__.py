"""LEAD: Detecting Loaded Trajectories for Hazardous Chemicals Transportation.

A full reproduction of Liu et al., ICDE 2022, including the neural
substrate, a synthetic Nantong-like data substrate, the LEAD framework and
its six ablation variants, the three stay-point baselines, and the
evaluation harness that regenerates every table and figure of the paper.

Quickstart::

    from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                       WorldConfig, generate_dataset)

    world = SyntheticWorld(WorldConfig(seed=1))
    dataset = generate_dataset(DatasetConfig(num_trajectories=200), world=world)
    train, val, test = dataset.split_by_truck()
    lead = LEAD(world.pois, LEADConfig())
    lead.fit(train.samples)
    result = lead.detect(test[0].trajectory)
    print(result.pair)

The stable public surface lives in :mod:`repro.api`; this package
lazily forwards to it (PEP 562), so ``import repro`` stays cheap and
``from repro import LEAD`` only pays for the subsystems it touches.
Legacy names outside the covenant keep resolving through the table
below for backward compatibility.
"""

from importlib import import_module

__version__ = "1.0.0"

#: Names outside the :mod:`repro.api` covenant that remain importable
#: from ``repro`` for backward compatibility, keyed to their home
#: submodule.  New code should import from ``repro`` (covenant names)
#: or from the owning subpackage directly.
_LEGACY = {
    # model substrate
    "GPSPoint": "model", "Trajectory": "model", "StayPoint": "model",
    "MovePoint": "model", "CandidateTrajectory": "model",
    "TimeInterval": "model", "LoadedLabel": "model",
    # data
    "SimulatorConfig": "data", "TruckDaySimulator": "data",
    "make_fleet": "data",
    # processing
    "NoiseFilter": "processing", "StayPointExtractor": "processing",
    "CandidateGenerator": "processing",
    "RawTrajectoryProcessor": "processing",
    "ProcessedTrajectory": "processing",
    "sanitize_trajectory": "processing",
    "trajectory_from_raw": "processing",
    # features / encoding / detection
    "FeatureConfig": "features", "FeatureExtractor": "features",
    "CandidateFeaturizer": "features", "ZScoreNormalizer": "features",
    "EncoderConfig": "encoding", "HierarchicalAutoencoder": "encoding",
    "AutoencoderTrainer": "encoding",
    "AutoencoderTrainingConfig": "encoding",
    "GroupDetector": "detection", "IndependentDetector": "detection",
    "DetectorSample": "detection", "DetectorTrainer": "detection",
    "DetectorTrainingConfig": "detection",
    # baselines / eval / analysis
    "SPRDetector": "baselines", "SPNNDetector": "baselines",
    "DetectionRecord": "eval", "accuracy": "eval",
    "accuracy_by_bucket": "eval", "evaluate_detector": "eval",
    "prepare_test_set": "eval",
    "Waybill": "analysis", "waybill_from_detection": "analysis",
    "audit_detection": "analysis", "find_unregistered_sites": "analysis",
    # errors
    "ArtifactCorruptedError": "errors",
    "CheckpointCorruptedError": "errors", "CircuitOpenError": "errors",
    "DetectorUnavailableError": "errors",
    "InvalidTrajectoryError": "errors", "NotFittedError": "errors",
    "NumericalInstabilityError": "errors", "TaskFailedError": "errors",
    # perf / supervise / chaos
    "LRUCache": "perf", "SegmentFeatureCache": "perf",
    "parallel_map": "perf", "spawn_rng": "perf", "run_bench": "perf",
    "Quarantine": "supervise", "QuarantineEntry": "supervise",
    "InjectedFault": "chaos",
}

#: Covenant names (resolved through :mod:`repro.api`).
_API_NAMES = frozenset((
    "DatasetConfig", "HCTDataset", "LabeledSample", "POIDatabase",
    "SyntheticWorld", "WorldConfig", "generate_dataset",
    "LEAD", "LEADConfig", "DetectionResult", "DetectionProvenance",
    "FitReport", "VARIANT_NAMES", "variant_config",
    "FleetConfig", "FleetSessionManager", "Ping", "ProvisionalVerdict",
    "TruckSession", "dataset_ping_stream",
    "FleetService", "ServeConfig", "ServeError", "SubmitResult",
    "shard_for",
    "ChaosEngine", "FaultSpec", "CircuitBreaker", "RetryPolicy",
    "ConfigMixin", "config_from_dict", "config_to_dict",
    "Observability", "observe", "ReproError",
    "inference_dtype", "use_fused",
))

__all__ = sorted(_API_NAMES | set(_LEGACY) | {"__version__"})


def __getattr__(name: str):
    if name in _API_NAMES:
        value = getattr(import_module("repro.api"), name)
    elif name in _LEGACY:
        value = getattr(import_module(f"repro.{_LEGACY[name]}"), name)
    else:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value   # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
