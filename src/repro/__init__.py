"""LEAD: Detecting Loaded Trajectories for Hazardous Chemicals Transportation.

A full reproduction of Liu et al., ICDE 2022, including the neural
substrate, a synthetic Nantong-like data substrate, the LEAD framework and
its six ablation variants, the three stay-point baselines, and the
evaluation harness that regenerates every table and figure of the paper.

Quickstart::

    from repro import (DatasetConfig, LEAD, LEADConfig, SyntheticWorld,
                       WorldConfig, generate_dataset)

    world = SyntheticWorld(WorldConfig(seed=1))
    dataset = generate_dataset(DatasetConfig(num_trajectories=200), world=world)
    train, val, test = dataset.split_by_truck()
    lead = LEAD(world.pois, LEADConfig())
    lead.fit(train.samples)
    result = lead.detect(test[0].trajectory)
    print(result.pair)
"""

from .errors import (ArtifactCorruptedError, CheckpointCorruptedError,
                     CircuitOpenError, DetectorUnavailableError,
                     InvalidTrajectoryError, NotFittedError,
                     NumericalInstabilityError, ReproError,
                     TaskFailedError)
from .model import (CandidateTrajectory, GPSPoint, LoadedLabel, MovePoint,
                    StayPoint, TimeInterval, Trajectory)
from .data import (DatasetConfig, HCTDataset, LabeledSample, POIDatabase,
                   SimulatorConfig, SyntheticWorld, TruckDaySimulator,
                   WorldConfig, generate_dataset, make_fleet)
from .processing import (CandidateGenerator, NoiseFilter,
                         ProcessedTrajectory, RawTrajectoryProcessor,
                         StayPointExtractor, sanitize_trajectory,
                         trajectory_from_raw)
from .features import (CandidateFeaturizer, FeatureConfig, FeatureExtractor,
                       ZScoreNormalizer)
from .encoding import (AutoencoderTrainer, AutoencoderTrainingConfig,
                       EncoderConfig, HierarchicalAutoencoder)
from .detection import (DetectorSample, DetectorTrainer,
                        DetectorTrainingConfig, GroupDetector,
                        IndependentDetector)
from .baselines import SPNNDetector, SPRDetector
from .pipeline import (DetectionProvenance, DetectionResult, FitReport,
                       LEAD, LEADConfig, VARIANT_NAMES, variant_config)
from .eval import (DetectionRecord, accuracy, accuracy_by_bucket,
                   evaluate_detector, prepare_test_set)
from .analysis import (Waybill, audit_detection, find_unregistered_sites,
                       waybill_from_detection)
from .perf import (LRUCache, SegmentFeatureCache, parallel_map, run_bench,
                   spawn_rng)
from .stream import (FleetConfig, FleetSessionManager, ProvisionalVerdict,
                     TruckSession)
from .supervise import (CircuitBreaker, Quarantine, QuarantineEntry,
                        RetryPolicy)
from .chaos import ChaosEngine, FaultSpec, InjectedFault

__version__ = "1.0.0"

__all__ = [
    "GPSPoint", "Trajectory", "StayPoint", "MovePoint",
    "CandidateTrajectory", "TimeInterval", "LoadedLabel",
    "POIDatabase", "SyntheticWorld", "WorldConfig", "SimulatorConfig",
    "TruckDaySimulator", "make_fleet", "DatasetConfig", "HCTDataset",
    "LabeledSample", "generate_dataset",
    "NoiseFilter", "StayPointExtractor", "CandidateGenerator",
    "RawTrajectoryProcessor", "ProcessedTrajectory",
    "FeatureConfig", "FeatureExtractor", "CandidateFeaturizer",
    "ZScoreNormalizer",
    "EncoderConfig", "HierarchicalAutoencoder", "AutoencoderTrainer",
    "AutoencoderTrainingConfig",
    "GroupDetector", "IndependentDetector", "DetectorSample",
    "DetectorTrainer", "DetectorTrainingConfig",
    "SPRDetector", "SPNNDetector",
    "LEAD", "LEADConfig", "DetectionResult", "DetectionProvenance",
    "FitReport", "VARIANT_NAMES", "variant_config",
    "ReproError", "ArtifactCorruptedError", "CheckpointCorruptedError",
    "NotFittedError", "InvalidTrajectoryError", "DetectorUnavailableError",
    "NumericalInstabilityError", "TaskFailedError", "CircuitOpenError",
    "sanitize_trajectory", "trajectory_from_raw",
    "DetectionRecord", "accuracy", "accuracy_by_bucket",
    "evaluate_detector", "prepare_test_set",
    "Waybill", "waybill_from_detection", "audit_detection",
    "find_unregistered_sites",
    "LRUCache", "SegmentFeatureCache", "parallel_map", "spawn_rng",
    "run_bench",
    "TruckSession", "FleetConfig", "FleetSessionManager",
    "ProvisionalVerdict",
    "RetryPolicy", "CircuitBreaker", "Quarantine", "QuarantineEntry",
    "ChaosEngine", "FaultSpec", "InjectedFault",
    "__version__",
]
