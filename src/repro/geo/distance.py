"""Great-circle distance and speed computations on the WGS84 sphere."""

from __future__ import annotations

import numpy as np

__all__ = ["EARTH_RADIUS_M", "haversine_m", "pairwise_haversine_m", "speed_kmh"]

EARTH_RADIUS_M = 6_371_008.8  # mean Earth radius in meters


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance in meters between two (lat, lng) points.

    Accepts scalars or numpy arrays (broadcast elementwise).
    """
    lat1, lng1, lat2, lng2 = map(np.radians, (lat1, lng1, lat2, lng2))
    dlat = lat2 - lat1
    dlng = lng2 - lng1
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlng / 2.0) ** 2)
    result = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if np.isscalar(result) or result.ndim == 0:
        return float(result)
    return result


def pairwise_haversine_m(lats: np.ndarray, lngs: np.ndarray) -> np.ndarray:
    """Distances between consecutive points of a polyline, shape ``(n-1,)``."""
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    if lats.shape != lngs.shape or lats.ndim != 1:
        raise ValueError("lats and lngs must be equal-length 1-D arrays")
    if lats.size < 2:
        return np.zeros(0)
    return haversine_m(lats[:-1], lngs[:-1], lats[1:], lngs[1:])


def speed_kmh(distance_m: float, seconds: float) -> float:
    """Convert a distance/duration pair into km/h.

    Zero or negative durations yield ``inf`` so that the noise filter
    (paper §III) treats timestamp glitches as outliers rather than
    dividing by zero.
    """
    if seconds <= 0:
        return float("inf")
    return distance_m / seconds * 3.6
