"""Great-circle distance and speed computations on the WGS84 sphere.

Two lanes, one formula:

* the **scalar lane** (:func:`haversine_m` on plain floats,
  :func:`speed_kmh`) goes through the :mod:`math` module — a single
  haversine costs ~0.3 µs instead of the ~15 µs of routing four Python
  floats through numpy's scalar ufunc machinery;
* the **array lane** (:func:`haversine_m` on arrays,
  :func:`pairwise_haversine_m`, :func:`haversine_rad_m`) stays in numpy
  and processes whole coordinate arrays per call.

Both lanes multiply by the same ``pi / 180`` constant and evaluate the
same expression tree, so they agree to the last few ulps; every
consumer that needs *decisions* (threshold comparisons in the noise
filter and the stay-point scanner) uses tolerances far above that.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["EARTH_RADIUS_M", "haversine_m", "haversine_rad_m",
           "pairwise_haversine_m", "speed_kmh"]

EARTH_RADIUS_M = 6_371_008.8  # mean Earth radius in meters

#: Types eligible for the scalar fast path.  ``type(x) in`` is the
#: cheapest possible check; ``np.float64`` is listed because trajectory
#: columns hand out ``np.float64`` scalars.
_SCALAR_TYPES = (float, int, np.float64)


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance in meters between two (lat, lng) points.

    Accepts scalars or numpy arrays (broadcast elementwise).  Pure
    scalars take a :mod:`math`-module fast path that avoids numpy's
    per-call ufunc dispatch overhead entirely.
    """
    if (type(lat1) in _SCALAR_TYPES and type(lng1) in _SCALAR_TYPES
            and type(lat2) in _SCALAR_TYPES and type(lng2) in _SCALAR_TYPES):
        lat1r = math.radians(lat1)
        lat2r = math.radians(lat2)
        sin_dlat = math.sin((lat2r - lat1r) / 2.0)
        sin_dlng = math.sin(math.radians(lng2 - lng1) / 2.0)
        a = (sin_dlat * sin_dlat
             + math.cos(lat1r) * math.cos(lat2r) * sin_dlng * sin_dlng)
        if a > 1.0:
            a = 1.0
        elif a < 0.0:
            a = 0.0
        return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))
    lat1, lng1, lat2, lng2 = map(np.radians, (lat1, lng1, lat2, lng2))
    dlat = lat2 - lat1
    dlng = lng2 - lng1
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlng / 2.0) ** 2)
    result = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if np.isscalar(result) or result.ndim == 0:
        return float(result)
    return result


def haversine_rad_m(lat1: np.ndarray, lng1: np.ndarray,
                    lat2: np.ndarray, lng2: np.ndarray) -> np.ndarray:
    """Vectorized haversine over coordinates *already in radians*.

    The hot chunked consumers (stay-point scanning, bulk POI counting)
    precompute radian arrays once per trajectory; this entry skips the
    four ``np.radians`` passes :func:`haversine_m` would re-run on
    every chunk.
    """
    dlat = lat2 - lat1
    dlng = lng2 - lng1
    a = (np.sin(dlat / 2.0) ** 2
         + np.cos(lat1) * np.cos(lat2) * np.sin(dlng / 2.0) ** 2)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def pairwise_haversine_m(lats: np.ndarray, lngs: np.ndarray) -> np.ndarray:
    """Distances between consecutive points of a polyline, shape ``(n-1,)``."""
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    if lats.shape != lngs.shape or lats.ndim != 1:
        raise ValueError("lats and lngs must be equal-length 1-D arrays")
    if lats.size < 2:
        return np.zeros(0)
    lats = np.radians(lats)
    lngs = np.radians(lngs)
    return haversine_rad_m(lats[:-1], lngs[:-1], lats[1:], lngs[1:])


def speed_kmh(distance_m: float, seconds: float) -> float:
    """Convert a distance/duration pair into km/h.

    Zero or negative durations yield ``inf`` so that the noise filter
    (paper §III) treats timestamp glitches as outliers rather than
    dividing by zero.
    """
    if seconds <= 0:
        return float("inf")
    return distance_m / seconds * 3.6
