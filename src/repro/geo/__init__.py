"""Geodesy utilities for WGS84 coordinates (DESIGN.md S5)."""

from .distance import (EARTH_RADIUS_M, haversine_m, haversine_rad_m,
                       pairwise_haversine_m, speed_kmh)
from .bbox import BoundingBox, NANTONG_BBOX
from .projection import LocalProjection

__all__ = [
    "EARTH_RADIUS_M", "haversine_m", "haversine_rad_m",
    "pairwise_haversine_m", "speed_kmh",
    "BoundingBox", "NANTONG_BBOX", "LocalProjection",
]
