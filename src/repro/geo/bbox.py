"""Geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundingBox", "NANTONG_BBOX"]


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lng rectangle."""

    min_lat: float
    min_lng: float
    max_lat: float
    max_lng: float

    def __post_init__(self) -> None:
        if self.min_lat >= self.max_lat or self.min_lng >= self.max_lng:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def center(self) -> tuple[float, float]:
        return ((self.min_lat + self.max_lat) / 2.0,
                (self.min_lng + self.max_lng) / 2.0)

    @property
    def lat_span(self) -> float:
        return self.max_lat - self.min_lat

    @property
    def lng_span(self) -> float:
        return self.max_lng - self.min_lng

    def contains(self, lat: float, lng: float) -> bool:
        return (self.min_lat <= lat <= self.max_lat
                and self.min_lng <= lng <= self.max_lng)

    def clamp(self, lat: float, lng: float) -> tuple[float, float]:
        """Project a point onto the box."""
        return (float(np.clip(lat, self.min_lat, self.max_lat)),
                float(np.clip(lng, self.min_lng, self.max_lng)))

    def sample(self, rng: np.random.Generator,
               n: int | None = None) -> np.ndarray:
        """Uniformly sample ``n`` (lat, lng) points (one point if ``n=None``)."""
        count = 1 if n is None else n
        lats = rng.uniform(self.min_lat, self.max_lat, size=count)
        lngs = rng.uniform(self.min_lng, self.max_lng, size=count)
        points = np.column_stack([lats, lngs])
        return points[0] if n is None else points

    def shrink(self, fraction: float) -> "BoundingBox":
        """Return a concentric box scaled by ``fraction`` on each axis."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        lat_margin = self.lat_span * (1.0 - fraction) / 2.0
        lng_margin = self.lng_span * (1.0 - fraction) / 2.0
        return BoundingBox(self.min_lat + lat_margin, self.min_lng + lng_margin,
                           self.max_lat - lat_margin, self.max_lng - lng_margin)


#: Approximate extent of Nantong, China — the city of the paper's dataset.
NANTONG_BBOX = BoundingBox(min_lat=31.80, min_lng=120.50,
                           max_lat=32.30, max_lng=121.20)
