"""Equirectangular local projection.

For city-scale geometry (tens of kilometers) an equirectangular projection
around a reference latitude is accurate to well under 0.1% and lets the
spatial index and the road-network router work in planar meters.
"""

from __future__ import annotations

import numpy as np

from .distance import EARTH_RADIUS_M

__all__ = ["LocalProjection"]


class LocalProjection:
    """Project WGS84 (lat, lng) to local planar meters and back."""

    def __init__(self, ref_lat: float, ref_lng: float) -> None:
        self.ref_lat = float(ref_lat)
        self.ref_lng = float(ref_lng)
        self._cos_ref = np.cos(np.radians(ref_lat))
        if self._cos_ref <= 1e-9:
            raise ValueError("reference latitude too close to a pole")

    def to_xy(self, lat: float | np.ndarray, lng: float | np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """Return (x_east_m, y_north_m) relative to the reference point."""
        lat = np.asarray(lat, dtype=np.float64)
        lng = np.asarray(lng, dtype=np.float64)
        x = np.radians(lng - self.ref_lng) * EARTH_RADIUS_M * self._cos_ref
        y = np.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def to_latlng(self, x: float | np.ndarray, y: float | np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`to_xy`."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        lat = self.ref_lat + np.degrees(y / EARTH_RADIUS_M)
        lng = self.ref_lng + np.degrees(x / (EARTH_RADIUS_M * self._cos_ref))
        return lat, lng

    def meters_per_degree(self) -> tuple[float, float]:
        """(meters per degree latitude, meters per degree longitude here)."""
        per_lat = np.radians(1.0) * EARTH_RADIUS_M
        return float(per_lat), float(per_lat * self._cos_ref)
