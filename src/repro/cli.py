"""Command-line interface.

Subcommands::

    python -m repro.cli generate --out data.json.gz --trajectories 100
    python -m repro.cli train    --data data.json.gz --out model/
    python -m repro.cli detect   --data data.json.gz --model model/ --index 0
    python -m repro.cli evaluate --data data.json.gz --model model/
    python -m repro.cli verify   --model model/
    python -m repro.cli tables   --scale small
    python -m repro.cli bench    --scale tiny --out BENCH_lead.json
    python -m repro.cli stream   --data data.json.gz --model model/
    python -m repro.cli serve    --data data.json.gz --model model/ --shards 4
    python -m repro.cli serve    --soak --shards 4 --kill-shard 1
    python -m repro.cli obs      telemetry.jsonl

``generate``/``train``/``detect``/``evaluate`` operate on explicit files;
``detect``/``train``/``stream``/``serve``/``chaos`` accept ``--telemetry
PATH`` to record a JSONL trace (spans, structured events, metrics) that
``obs`` renders; telemetry is off by default and costs nothing when off.
``verify`` integrity-checks a saved model directory against its
manifest; ``tables`` drives the cached experiment harness (the same
artifacts the benchmarks use); ``serve`` replays a dataset through the
sharded multi-process :class:`~repro.serve.FleetService` (or, with
``--soak``, runs the self-contained sharded-vs-serial convergence
drill).

Model/fleet/serve configuration flows through **one** loader
(:func:`_load_config`): every subcommand accepts ``--config PATH``, a
JSON file with optional ``"lead"`` / ``"fleet"`` / ``"serve"``
sections, built via the uniform ``from_dict`` surface — unknown keys
fail loudly — with explicit CLI flags layered on top.

Typed failures (:mod:`repro.errors`) are rendered as one-line messages
with exit code 2 instead of tracebacks; ``--traceback`` restores the
raw exception for debugging.
"""

from __future__ import annotations

import argparse
import contextlib
import sys


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace):
    """Activate the observability subsystem when ``--telemetry`` was given.

    Yields the :class:`~repro.obs.Observability` instance (or ``None``
    when telemetry is off) and flushes the JSONL sink on exit — even
    when the command fails, so a crashing run still leaves its trace.
    """
    path = getattr(args, "telemetry", None)
    if path is None:
        yield None
        return
    from .obs import Observability, observe
    ob = Observability(seed=getattr(args, "seed", 0))
    try:
        with observe(ob):
            yield ob
    finally:
        ob.flush(path)
        print(f"telemetry: {len(ob.tracer.finished)} spans, "
              f"{len(ob.events)} events -> {path}")


def _load_config(args: argparse.Namespace, section: str, cls,
                 **overrides):
    """Build a config object through the uniform ``from_dict`` loader.

    Reads the optional ``--config`` JSON file, takes its ``section``
    block (missing section = empty), layers the non-``None``
    ``overrides`` from explicit CLI flags on top, and lets the config
    class reject unknown keys.  Every subcommand builds every config
    through this one path.
    """
    import json
    data: dict = {}
    path = getattr(args, "config", None)
    if path is not None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"--config {path} must hold a JSON object")
        data = dict(payload.get(section, {}))
    for key, value in overrides.items():
        if value is not None:
            data[key] = value
    return cls.from_dict(data)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data import DatasetConfig, SyntheticWorld, WorldConfig, \
        generate_dataset
    world = SyntheticWorld(WorldConfig(seed=args.seed))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=args.trajectories,
                      num_trucks=max(1, args.trajectories // 2),
                      seed=args.seed, world=WorldConfig(seed=args.seed)),
        world=world, workers=args.workers)
    path = dataset.save(args.out)
    print(f"wrote {len(dataset)} labelled truck-days to {path}")
    return 0


def _world_for_seed(seed: int):
    from .data import SyntheticWorld, WorldConfig
    return SyntheticWorld(WorldConfig(seed=seed))


def _cmd_train(args: argparse.Namespace) -> int:
    from .data import HCTDataset
    from .pipeline import LEAD, LEADConfig
    dataset = HCTDataset.load(args.data)
    train, _, _ = dataset.split_by_truck((8, 1, 1), seed=args.seed)
    world = _world_for_seed(args.seed)
    lead = LEAD(world.pois,
                _load_config(args, "lead", LEADConfig, seed=args.seed))
    checkpoint_dir = args.checkpoint_dir
    with _telemetry(args):
        report = lead.fit(train.samples, verbose=True,
                          checkpoint_dir=checkpoint_dir,
                          workers=args.workers)
    lead.save(args.out)
    print(f"trained on {report.num_trajectories_used} trajectories; "
          f"weights saved to {args.out}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .errors import ArtifactCorruptedError
    from .io import verify_manifest
    try:
        manifest = verify_manifest(args.model, required=True)
    except ArtifactCorruptedError as exc:
        print(f"CORRUPT  {exc.path}: {exc.reason}")
        return 2
    for name, entry in sorted(manifest.files.items()):
        print(f"ok  {name}  sha256={str(entry['sha256'])[:12]}…  "
              f"{entry['size']} bytes")
    print(f"{len(manifest.files)} artifacts verified ({manifest.kind}, "
          f"schema v{manifest.schema})")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .data import HCTDataset
    from .pipeline import LEAD, LEADConfig
    from .analysis import waybill_from_detection
    dataset = HCTDataset.load(args.data)
    world = _world_for_seed(args.seed)
    lead = LEAD(world.pois,
                _load_config(args, "lead", LEADConfig,
                             seed=args.seed)).load(args.model)
    sample = dataset[args.index]
    with _telemetry(args):
        result = lead.detect(sample.trajectory)
    if result is None:
        print("trajectory has too few stay points")
        return 1
    waybill = waybill_from_detection(result)
    print(f"truck {sample.trajectory.truck_id} {sample.trajectory.day}: "
          f"loaded trajectory <sp_{result.pair[0]} --> sp_{result.pair[1]}>")
    print(f"  loading  {waybill.loading_t / 3600:5.2f}h at "
          f"({waybill.loading_lat:.5f}, {waybill.loading_lng:.5f})")
    print(f"  unloading {waybill.unloading_t / 3600:4.2f}h at "
          f"({waybill.unloading_lat:.5f}, {waybill.unloading_lng:.5f})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .data import HCTDataset
    from .eval import (accuracy_by_bucket, endpoint_accuracy,
                       evaluate_detector, overlap_score, prepare_test_set)
    from .pipeline import LEAD, LEADConfig
    dataset = HCTDataset.load(args.data)
    _, val, test = dataset.split_by_truck((8, 1, 1), seed=args.seed)
    world = _world_for_seed(args.seed)
    lead = LEAD(world.pois,
                _load_config(args, "lead", LEADConfig,
                             seed=args.seed)).load(args.model)
    test_set = prepare_test_set(list(val) + list(test), lead.processor)
    records = evaluate_detector(
        lambda p: lead.detect_processed(p).pair, test_set)
    for bucket, (acc, count) in accuracy_by_bucket(records).items():
        print(f"  {bucket:>6}: {acc:5.1f}%  (n={count})")
    print(f"  endpoint accuracy: {endpoint_accuracy(records)}")
    print(f"  interval IoU: {overlap_score(records):.3f}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .experiments import Experiment, get_experiment_config
    from .eval import format_accuracy_table, format_timing_table
    experiment = Experiment(get_experiment_config(args.scale),
                            retrain_if_corrupt=args.retrain_if_corrupt)
    print(format_accuracy_table(experiment.table3(), "Table III"))
    print()
    print(format_accuracy_table(experiment.table4(), "Table IV"))
    print()
    print(format_timing_table(experiment.fig8(), "Fig. 8"))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .data import HCTDataset
    from .pipeline import LEAD, LEADConfig
    from .stream import (FleetConfig, FleetSessionManager,
                         dataset_ping_stream, scramble_stream)
    dataset = HCTDataset.load(args.data)
    world = _world_for_seed(args.seed)
    lead = LEAD(world.pois,
                _load_config(args, "lead", LEADConfig,
                             seed=args.seed)).load(args.model)
    manager = FleetSessionManager(lead, _load_config(
        args, "fleet", FleetConfig,
        max_sessions=args.max_sessions,
        reorder_capacity=args.reorder_capacity,
        checkpoint_dir=args.checkpoint_dir))
    samples = dataset.samples
    if args.limit is not None:
        samples = samples[:args.limit]
    pings = dataset_ping_stream(samples)
    if args.scramble > 1:
        pings = scramble_stream(pings, window=args.scramble, seed=args.seed)
    print(f"replaying {len(pings)} pings from {len(samples)} truck-days "
          f"(tick every {args.tick_s:g}s of simulated time)")
    announced: dict[tuple[str, str], tuple] = {}

    def _announce(verdicts) -> None:
        for verdict in verdicts:
            key = (verdict.truck_id, verdict.day)
            state = (verdict.pair, verdict.confidence, verdict.final)
            if announced.get(key) != state:
                announced[key] = state
                print(f"  {verdict.summary()}")

    from .obs import render_tables
    with _telemetry(args) as ob:
        next_tick = None
        for ping in pings:
            if next_tick is None:
                next_tick = ping.t + args.tick_s
            while ping.t >= next_tick:
                _announce(manager.tick())
                next_tick += args.tick_s
            manager.ingest(ping.truck_id, ping.lat, ping.lng, ping.t,
                           day=ping.day)
        print("end of feed; finalizing every session:")
        _announce(manager.flush_all())
        sections = [("fleet stats", manager.stats())]
        if ob is not None:
            sections.append(("telemetry metrics", ob.registry.snapshot()))
        print(render_tables(sections), end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.soak:
        from .serve import format_serve_soak, run_serve_soak
        with _telemetry(args):
            report = run_serve_soak(
                seed=args.seed, num_trajectories=args.trajectories,
                num_trucks=args.trucks, num_shards=args.shards or 4,
                backend="inline" if args.inline else "process",
                fit_detector=not args.no_detector,
                kill_shard=args.kill_shard)
        print(format_serve_soak(report))
        return 0 if report["ok"] else 2
    if args.data is None or args.model is None:
        print("error: serve replay needs --data and --model "
              "(or use --soak for the self-contained drill)",
              file=sys.stderr)
        return 2
    from .data import HCTDataset
    from .obs import render_tables
    from .pipeline import LEAD, LEADConfig
    from .serve import FleetService, ServeConfig
    from .stream import dataset_ping_stream
    dataset = HCTDataset.load(args.data)
    world = _world_for_seed(args.seed)
    lead = LEAD(world.pois,
                _load_config(args, "lead", LEADConfig,
                             seed=args.seed)).load(args.model)
    config = _load_config(
        args, "serve", ServeConfig,
        num_shards=args.shards,
        queue_high_water=args.queue_high_water,
        checkpoint_dir=args.checkpoint_dir,
        backend="inline" if args.inline else None)
    samples = dataset.samples
    if args.limit is not None:
        samples = samples[:args.limit]
    pings = dataset_ping_stream(samples)
    batches = [pings[i:i + args.batch_pings]
               for i in range(0, len(pings), args.batch_pings)]
    midpoint = len(batches) // 2
    print(f"serving {len(pings)} pings from {len(samples)} truck-days "
          f"across {config.num_shards} shards ({config.backend}), "
          f"{args.batch_pings} pings per submit")
    rejected_total = 0
    with _telemetry(args) as ob:
        with FleetService(lead, config=config) as service:
            next_tick = None
            for index, batch in enumerate(batches):
                if args.kill_shard is not None and index == midpoint:
                    if service.kill_worker(shard=args.kill_shard):
                        print(f"  killed shard {args.kill_shard} worker "
                              f"at batch {index} (restarting from the "
                              f"last barrier + journal replay)")
                if next_tick is None:
                    next_tick = batch[0].t + args.tick_s
                result = service.submit(batch)
                while result.rejected:
                    # Backpressure: drain the overloaded shards, then
                    # resubmit exactly the rejected pings (order within
                    # a truck is preserved because rejection is
                    # all-or-nothing per shard per batch).
                    rejected_total += result.rejected
                    service.wait()
                    result = service.submit(result.rejected_pings)
                while batch[-1].t >= next_tick:
                    service.tick()
                    next_tick += args.tick_s
            print("end of feed; draining every shard:")
            for verdict in service.drain():
                print(f"  {verdict.summary()}")
            stats = service.stats()
        sections = [("serve stats", stats)]
        if ob is not None:
            sections.append(("telemetry metrics", ob.registry.snapshot()))
        print(render_tables(sections), end="")
    if rejected_total:
        print(f"backpressure: {rejected_total} pings rejected and "
              f"resubmitted")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from .chaos import format_chaos_ledger, run_chaos_soak
    from .io import atomic_write_json
    with _telemetry(args):
        report = run_chaos_soak(
            seed=args.seed, data_seed=args.data_seed,
            num_trajectories=args.trajectories, num_trucks=args.trucks,
            fit_detector=not args.no_detector,
            max_sessions=args.max_sessions)
        print(format_chaos_ledger(report))
        failed = not report["ok"]
        if args.check_determinism:
            replay = run_chaos_soak(
                seed=args.seed, data_seed=args.data_seed,
                num_trajectories=args.trajectories, num_trucks=args.trucks,
                fit_detector=not args.no_detector,
                max_sessions=args.max_sessions)
            ledger_same = replay["ledger"] == report["ledger"]
            digest_same = replay["verdict_digest"] == report["verdict_digest"]
            print(f"determinism: ledger_match={ledger_same} "
                  f"verdict_match={digest_same}")
            if not (ledger_same and digest_same):
                print("FAIL: the same seed did not reproduce the same "
                      "fault ledger / verdicts", file=sys.stderr)
                failed = True
    if args.out is not None:
        atomic_write_json(args.out, report, indent=2)
        print(f"wrote {args.out}")
    if failed:
        print("FAIL: chaos soak did not recover cleanly "
              "(see ledger above)", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from .io import atomic_write_json
    from .perf import compare_to_baseline, format_bench_table, run_bench
    if args.quick:
        # Smoke mode: tiny scale, one repeat, no train wall-clock, and
        # nothing written — a seconds-long end-to-end sanity pass.
        payload = run_bench(scale="tiny", repeats=1, train_wall=False)
    else:
        payload = run_bench(scale=args.scale, repeats=args.repeats,
                            train_wall=not args.skip_train)
    print(format_bench_table(payload))
    if args.cache_stats:
        print(_format_cache_stats(payload.get("feature_cache")))
    if not args.quick:
        atomic_write_json(args.out, payload)
        print(f"wrote {args.out}")
    if not payload["equivalence"]["allclose"]:
        print("FAIL: batched detection diverges from per-trajectory "
              "results", file=sys.stderr)
        return 2
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(payload, baseline,
                                       max_regression=args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 2
        print(f"no regression vs {args.baseline} "
              f"(threshold {args.max_regression:g}x)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import read_jsonl, render_span_tree, render_tables
    records = read_jsonl(args.path)
    if not records:
        print(f"no telemetry records in {args.path}")
        return 1
    want = args.section
    meta = next((r for r in records if r.get("kind") == "meta"), None)
    if meta is not None and want == "all":
        print(f"telemetry schema v{meta.get('schema', '?')} "
              f"seed={meta.get('seed', '?')}")
    if want in ("all", "metrics"):
        snaps = [r for r in records if r.get("kind") == "metrics"]
        if snaps:
            # One shared width across the counter/gauge/histogram
            # sections, so multi-label rows (e.g. per-shard serve
            # metrics) stay aligned with everything else.
            print(render_tables([("metrics", snaps[-1]["metrics"])]),
                  end="")
    if want in ("all", "spans"):
        spans = [r for r in records if r.get("kind") == "span"]
        if spans:
            print("spans")
            print("-----")
            print(render_span_tree(spans), end="")
    if want in ("all", "events"):
        events = [r for r in records if r.get("kind") == "event"]
        if events:
            print("events")
            print("------")
            for event in events:
                fields = event.get("fields") or {}
                rendered = " ".join(f"{k}={fields[k]}"
                                    for k in sorted(fields))
                print(f"{event['id']}  {event['name']}  {rendered}")
    return 0


def _format_cache_stats(cache: dict | None) -> str:
    """One readable line of feature-cache counters (``--cache-stats``)."""
    if not cache:
        return "feature cache: disabled"
    line = (f"feature cache: hits={cache['hits']}  misses={cache['misses']}  "
            f"evictions={cache['evictions']}  "
            f"hit_rate={cache['hit_rate']:.2f}")
    dtype_keys = cache.get("dtype_keys")
    if dtype_keys:
        per_dtype = "  ".join(f"{name}={count}"
                              for name, count in sorted(dtype_keys.items()))
        line += f"\nfeature cache entries by dtype: {per_dtype}"
    return line


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LEAD reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    workers_help = ("worker processes for the embarrassingly parallel "
                    "stages (default: serial; negative = one per CPU); "
                    "any count >= 1 produces identical results")
    telemetry_help = ("write a JSONL telemetry trace (spans, structured "
                      "events, metrics snapshot) here; inspect it with "
                      "'repro obs <path>'")
    config_help = ("JSON file with optional 'lead' / 'fleet' / 'serve' "
                   "sections, loaded through the uniform from_dict "
                   "surface (unknown keys fail loudly); explicit flags "
                   "override it")

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--out", required=True)
    p.add_argument("--trajectories", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None, help=workers_help)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("train", help="train LEAD on a dataset file")
    p.add_argument("--data", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--checkpoint-dir", default=None,
                   help="checkpoint every epoch here; rerunning the same "
                        "command after a crash resumes training")
    p.add_argument("--workers", type=int, default=None, help=workers_help)
    p.add_argument("--config", default=None, metavar="PATH",
                   help=config_help)
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help=telemetry_help)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("verify",
                       help="integrity-check a saved model directory")
    p.add_argument("--model", required=True)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("detect", help="detect one trajectory's loaded part")
    p.add_argument("--data", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--config", default=None, metavar="PATH",
                   help=config_help)
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help=telemetry_help)
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("evaluate", help="evaluate a trained model")
    p.add_argument("--data", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--config", default=None, metavar="PATH",
                   help=config_help)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("tables", help="print the paper's tables")
    p.add_argument("--scale", default="small",
                   choices=["tiny", "small", "default"])
    p.add_argument("--retrain-if-corrupt", action="store_true",
                   help="discard and retrain artifacts that fail "
                        "integrity checks instead of aborting")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("stream",
                       help="replay a dataset as a live fleet ping feed "
                            "with provisional verdicts")
    p.add_argument("--data", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--tick-s", type=float, default=1800.0,
                   help="simulated seconds between detection ticks")
    p.add_argument("--max-sessions", type=int, default=None,
                   help="resident session bound (LRU beyond it; "
                        "default 1024)")
    p.add_argument("--reorder-capacity", type=int, default=None,
                   help="per-session out-of-order ping tolerance "
                        "(default 16)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="spill evicted sessions here (exact restore); "
                        "omit to drop them")
    p.add_argument("--scramble", type=int, default=1,
                   help="shuffle pings within windows of this size to "
                        "simulate out-of-order arrival")
    p.add_argument("--limit", type=int, default=None,
                   help="replay only the first N truck-days")
    p.add_argument("--config", default=None, metavar="PATH",
                   help=config_help)
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help=telemetry_help)
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("serve",
                       help="replay a dataset through the sharded "
                            "multi-process fleet service (or --soak: "
                            "the sharded-vs-serial convergence drill)")
    p.add_argument("--data", default=None)
    p.add_argument("--model", default=None)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--shards", type=int, default=None,
                   help="worker shards; trucks route by a stable hash "
                        "of the truck id (default 4)")
    p.add_argument("--inline", action="store_true",
                   help="run every shard in-process (no multiprocessing; "
                        "debugging and constrained sandboxes)")
    p.add_argument("--batch-pings", type=int, default=512,
                   help="pings per submit() batch")
    p.add_argument("--queue-high-water", type=int, default=None,
                   help="per-shard inflight bound; submits beyond it "
                        "are rejected with backpressure (default 64)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="barrier snapshots, journals and eviction "
                        "spills live here; enables restart from the "
                        "last barrier")
    p.add_argument("--tick-s", type=float, default=1800.0,
                   help="simulated seconds between detection ticks")
    p.add_argument("--limit", type=int, default=None,
                   help="replay only the first N truck-days")
    p.add_argument("--kill-shard", type=int, default=None,
                   help="SIGKILL this shard's worker at the replay "
                        "midpoint (ops drill; verdicts must still "
                        "converge)")
    p.add_argument("--soak", action="store_true",
                   help="run the self-contained sharded-vs-serial "
                        "convergence soak on synthetic data instead of "
                        "replaying --data")
    p.add_argument("--trajectories", type=int, default=50,
                   help="(--soak) synthetic truck-days")
    p.add_argument("--trucks", type=int, default=20,
                   help="(--soak) distinct trucks")
    p.add_argument("--no-detector", action="store_true",
                   help="(--soak) skip fitting the tiny detector "
                        "(ingest-only; much faster)")
    p.add_argument("--config", default=None, metavar="PATH",
                   help=config_help)
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help=telemetry_help)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("chaos",
                       help="seeded fault-injection soak: corrupted "
                            "pings, torn writes, worker crashes, one "
                            "poisoned session — healthy verdicts must "
                            "match a fault-free run bit for bit")
    p.add_argument("--seed", type=int, default=7,
                   help="drives every injected fault; same seed = same "
                        "ledger, same verdicts")
    p.add_argument("--data-seed", type=int, default=13,
                   help="synthetic world/dataset seed (independent of "
                        "the fault seed)")
    p.add_argument("--trajectories", type=int, default=50)
    p.add_argument("--trucks", type=int, default=20)
    p.add_argument("--max-sessions", type=int, default=12,
                   help="tight resident bound so spill/restore runs "
                        "under fire")
    p.add_argument("--no-detector", action="store_true",
                   help="skip fitting the tiny detector (ingest-only "
                        "soak; much faster)")
    p.add_argument("--check-determinism", action="store_true",
                   help="run the soak twice and fail unless the fault "
                        "ledger and verdicts replay identically")
    p.add_argument("--out", default=None,
                   help="write the full JSON report (ledger included) "
                        "here")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help=telemetry_help)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("bench",
                       help="measure encode/detect throughput and write "
                            "a BENCH json")
    p.add_argument("--scale", default=None,
                   choices=["tiny", "small", "default"],
                   help="experiment scale (default: REPRO_SCALE or "
                        "'default')")
    p.add_argument("--out", default="BENCH_lead.json")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repetitions; best-of wins")
    p.add_argument("--skip-train", action="store_true",
                   help="skip the tiny-scale train wall-clock measurement")
    p.add_argument("--baseline", default=None,
                   help="committed BENCH json to gate against; exits 2 "
                        "when throughput regresses past --max-regression")
    p.add_argument("--max-regression", type=float, default=2.0,
                   help="allowed throughput drop factor vs the baseline")
    p.add_argument("--quick", action="store_true",
                   help="tiny-scale smoke run: one repeat, prints the "
                        "table, writes no BENCH files")
    p.add_argument("--cache-stats", dest="cache_stats", action="store_true",
                   help="print feature-cache hit/miss/eviction counters "
                        "and per-dtype entry counts")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("obs",
                       help="inspect a JSONL telemetry trace written by "
                            "--telemetry (metrics, span tree, events)")
    p.add_argument("path", help="telemetry JSONL file")
    p.add_argument("--section", default="all",
                   choices=["all", "metrics", "spans", "events"],
                   help="print only one section of the trace")
    p.set_defaults(func=_cmd_obs)

    parser.add_argument("--traceback", action="store_true",
                        help="show full tracebacks for typed errors")
    return parser


def main(argv: list[str] | None = None) -> int:
    from .errors import ReproError
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, FileNotFoundError) as exc:
        if getattr(args, "traceback", False):
            raise
        kind = type(exc).__name__
        print(f"error ({kind}): {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
