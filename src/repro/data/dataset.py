"""Dataset container, generation, splitting, and persistence (DESIGN.md S10).

The paper's dataset — 5,968 labelled raw trajectories from 2,734 trucks over
two months, split 8:1:1 with *disjoint trucks* between training and
validation/test — is proprietary; :func:`generate_dataset` produces a
synthetic drop-in with the same structure.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..model import LoadedLabel, Trajectory
from ..perf.parallel import parallel_map, spawn_rng
from .simulator import SimulatorConfig, Truck, TruckDaySimulator, make_fleet
from .world import SyntheticWorld, WorldConfig

__all__ = ["LabeledSample", "HCTDataset", "DatasetConfig", "generate_dataset"]


@dataclass(frozen=True)
class LabeledSample:
    """A raw trajectory with its ground-truth loaded-trajectory label."""

    trajectory: Trajectory
    label: LoadedLabel

    def to_dict(self) -> dict[str, object]:
        return {"trajectory": self.trajectory.to_dict(),
                "label": self.label.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "LabeledSample":
        return cls(trajectory=Trajectory.from_dict(payload["trajectory"]),
                   label=LoadedLabel.from_dict(payload["label"]))


class HCTDataset:
    """An ordered collection of labelled samples."""

    def __init__(self, samples: Sequence[LabeledSample] = ()) -> None:
        self.samples = list(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[LabeledSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> LabeledSample:
        return self.samples[index]

    def add(self, sample: LabeledSample) -> None:
        self.samples.append(sample)

    @property
    def truck_ids(self) -> list[str]:
        """Distinct truck ids, in first-appearance order."""
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.trajectory.truck_id, None)
        return list(seen)

    # ------------------------------------------------------------------
    def split_by_truck(self, ratios: tuple[float, float, float] = (8, 1, 1),
                       seed: int = 0
                       ) -> tuple["HCTDataset", "HCTDataset", "HCTDataset"]:
        """Train/val/test split with truck-disjoint partitions (paper §VI-A).

        Trucks (not trajectories) are partitioned, so no truck in the
        validation or test set appears in training.
        """
        if len(ratios) != 3 or any(r < 0 for r in ratios) or sum(ratios) == 0:
            raise ValueError(f"invalid split ratios: {ratios}")
        rng = np.random.default_rng(seed)
        trucks = self.truck_ids
        order = rng.permutation(len(trucks))
        total = float(sum(ratios))
        n_train = int(round(len(trucks) * ratios[0] / total))
        n_val = int(round(len(trucks) * ratios[1] / total))
        train_ids = {trucks[i] for i in order[:n_train]}
        val_ids = {trucks[i] for i in order[n_train:n_train + n_val]}
        splits = (HCTDataset(), HCTDataset(), HCTDataset())
        for sample in self.samples:
            tid = sample.trajectory.truck_id
            if tid in train_ids:
                splits[0].add(sample)
            elif tid in val_ids:
                splits[1].add(sample)
            else:
                splits[2].add(sample)
        return splits

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist as gzipped JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"samples": [s.to_dict() for s in self.samples]}
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "HCTDataset":
        with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls([LabeledSample.from_dict(s) for s in payload["samples"]])

    def summary(self) -> dict[str, float]:
        lengths = [len(s.trajectory) for s in self.samples]
        return {
            "num_samples": len(self.samples),
            "num_trucks": len(self.truck_ids),
            "mean_points": float(np.mean(lengths)) if lengths else 0.0,
            "max_points": float(np.max(lengths)) if lengths else 0.0,
        }


@dataclass
class DatasetConfig:
    """End-to-end synthetic dataset generation parameters."""

    num_trajectories: int = 600
    num_trucks: int = 260
    seed: int = 7
    start_day: str = "2020-09-01"
    world: WorldConfig = field(default_factory=WorldConfig)
    sim: SimulatorConfig = field(default_factory=SimulatorConfig)

    def __post_init__(self) -> None:
        if self.num_trajectories < 1 or self.num_trucks < 1:
            raise ValueError("need at least one trajectory and truck")
        if self.num_trucks > self.num_trajectories:
            self.num_trucks = self.num_trajectories


def _simulate_task(simulator: TruckDaySimulator, seed: int,
                   task: tuple[int, Truck, str]) -> LabeledSample:
    """One truck-day simulation with its own deterministic stream.

    The stream is derived from ``(seed, task_index)`` — never shared with
    sibling tasks — so the sample is a pure function of the task, not of
    which worker ran it or in what order (see :mod:`repro.perf.parallel`).
    """
    index, truck, day = task
    rng = spawn_rng(seed, index)
    for attempt in range(8):
        try:
            trajectory, label = simulator.simulate(truck, day, rng)
            return LabeledSample(trajectory, label)
        except RuntimeError:
            if attempt == 7:
                raise
    raise AssertionError("unreachable")


def generate_dataset(config: DatasetConfig | None = None,
                     world: SyntheticWorld | None = None,
                     workers: int | None = None) -> HCTDataset:
    """Generate a labelled synthetic dataset.

    Trajectories are assigned to trucks round-robin so every truck has at
    least one day; a truck with several days reuses its company's site pool
    (as real fleets do).

    ``workers`` controls the seeding and scheduling discipline:

    * ``None`` (default) — the legacy serial path: one generator threads
      through every simulation in order, byte-identical to every dataset
      this repository has ever produced;
    * ``>= 1`` — per-task seeding: each truck-day derives its own stream
      from ``(config.seed, task_index)``, so the dataset is bit-for-bit
      identical for *any* worker count (``workers=1`` serial in-process,
      ``workers=2`` and ``workers=32`` included), at the cost of
      differing from the legacy realization.
    """
    config = config or DatasetConfig()
    rng = np.random.default_rng(config.seed)
    world = world or SyntheticWorld(config.world)
    fleet = make_fleet(world, config.num_trucks, rng)
    simulator = TruckDaySimulator(world, config.sim)
    dataset = HCTDataset()
    day_counter: dict[str, int] = {}
    tasks: list[tuple[int, Truck, str]] = []
    for i in range(config.num_trajectories):
        truck = fleet[i % len(fleet)]
        day_index = day_counter.get(truck.truck_id, 0)
        day_counter[truck.truck_id] = day_index + 1
        tasks.append((i, truck, f"{config.start_day}+{day_index}"))
    if workers is None:
        # Legacy path: a single stream threads through all simulations.
        for _, truck, day in tasks:
            for attempt in range(8):
                try:
                    trajectory, label = simulator.simulate(truck, day, rng)
                    dataset.add(LabeledSample(trajectory, label))
                    break
                except RuntimeError:
                    if attempt == 7:
                        raise
        return dataset
    samples = parallel_map(partial(_simulate_task, simulator, config.seed),
                           tasks, workers=workers)
    for sample in samples:
        dataset.add(sample)
    return dataset
