"""Synthetic city generator (DESIGN.md S7-S9 substrate).

Builds a Nantong-like world: an urban core with generic POIs, several
industrial zones (plus a port strip) dense in chemical-type POIs, rest
facilities along the road corridors, and truck depots on the outskirts.

A subset of chemical-type POIs is designated as *l/u sites* — places where
hazardous chemicals are actually loaded or unloaded.  Crucially, fuel
stations appear both as l/u sites (fuel trucks load there) and as ordinary
break locations, reproducing the paper's "complex staying scenarios"
challenge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo import BoundingBox, NANTONG_BBOX
from .poi import (CHEMICAL_CATEGORIES, POI, POI_CATEGORIES, POIDatabase,
                  REST_CATEGORIES)
from .roadnet import RoadNetwork

__all__ = ["WorldConfig", "SyntheticWorld", "Site"]


@dataclass(frozen=True)
class Site:
    """A location where trucks can stay (l/u site, rest stop, or depot)."""

    site_id: int
    lat: float
    lng: float
    category: str
    kind: str  # "lu" | "rest" | "depot"


@dataclass
class WorldConfig:
    """Knobs for the synthetic city."""

    bbox: BoundingBox = NANTONG_BBOX
    seed: int = 0
    num_industrial_zones: int = 5
    pois_per_zone: int = 60
    urban_pois: int = 320
    scattered_pois: int = 160
    num_lu_sites: int = 60
    num_rest_stops: int = 40
    num_depots: int = 12
    road_nx: int = 18
    road_ny: int = 14

    def __post_init__(self) -> None:
        if self.num_lu_sites < 4:
            raise ValueError("need at least 4 l/u sites")
        if self.num_depots < 1 or self.num_rest_stops < 1:
            raise ValueError("need at least one depot and one rest stop")


class SyntheticWorld:
    """The full synthetic substrate: POIs, sites, and the road network."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        rng = np.random.default_rng(self.config.seed)
        bbox = self.config.bbox
        self.urban_core = bbox.shrink(0.30)
        self.roads = RoadNetwork(bbox, self.config.road_nx,
                                 self.config.road_ny,
                                 seed=self.config.seed,
                                 urban_core=self.urban_core)
        self.pois = POIDatabase()
        self.lu_sites: list[Site] = []
        self.rest_stops: list[Site] = []
        self.depots: list[Site] = []
        self._next_poi_id = 0
        self._next_site_id = 0
        self._zone_centers = self._make_zone_centers(rng)
        self._populate_pois(rng)
        self._designate_sites(rng)

    # ------------------------------------------------------------------
    def _make_zone_centers(self, rng: np.random.Generator) -> np.ndarray:
        """Industrial zone centers: ring between the core and the border."""
        centers = []
        bbox = self.config.bbox
        attempts = 0
        while (len(centers) < self.config.num_industrial_zones
               and attempts < 1000):
            attempts += 1
            lat, lng = bbox.shrink(0.85).sample(rng)
            if not self.urban_core.contains(lat, lng):
                centers.append((lat, lng))
        if len(centers) < self.config.num_industrial_zones:
            raise RuntimeError("could not place industrial zones")
        return np.asarray(centers)

    def _add_poi(self, category: str, lat: float, lng: float) -> POI:
        lat, lng = self.config.bbox.clamp(lat, lng)
        poi = POI(self._next_poi_id, category, lat, lng,
                  name=f"{category}-{self._next_poi_id}")
        self._next_poi_id += 1
        self.pois.add(poi)
        return poi

    def _populate_pois(self, rng: np.random.Generator) -> None:
        industrial = [c for c in CHEMICAL_CATEGORIES if c != "hospital"]
        industrial += ["industrial_warehouse", "logistics_center",
                       "truck_depot", "company", "weigh_station"]
        generic = [c for c in POI_CATEGORIES
                   if c not in CHEMICAL_CATEGORIES or c == "hospital"]
        # Industrial zones: chemical-heavy clusters, ~1.2 km radius.
        for center in self._zone_centers:
            for _ in range(self.config.pois_per_zone):
                category = industrial[rng.integers(len(industrial))]
                lat = center[0] + rng.normal(0.0, 0.010)
                lng = center[1] + rng.normal(0.0, 0.012)
                self._add_poi(category, lat, lng)
        # Urban core: generic city POIs.
        for _ in range(self.config.urban_pois):
            category = generic[rng.integers(len(generic))]
            lat, lng = self.urban_core.sample(rng)
            self._add_poi(category, lat, lng)
        # Scattered POIs everywhere (fuel stations, rest areas, villages).
        roadside = list(REST_CATEGORIES) + ["residential_area", "company",
                                            "supermarket"]
        for _ in range(self.config.scattered_pois):
            category = roadside[rng.integers(len(roadside))]
            lat, lng = self.config.bbox.sample(rng)
            self._add_poi(category, lat, lng)

    def _designate_sites(self, rng: np.random.Generator) -> None:
        chemical_pois = [p for p in self.pois
                         if p.category in CHEMICAL_CATEGORIES]
        if len(chemical_pois) < self.config.num_lu_sites:
            raise RuntimeError("not enough chemical POIs for l/u sites")
        order = rng.permutation(len(chemical_pois))
        for idx in order[:self.config.num_lu_sites]:
            poi = chemical_pois[int(idx)]
            self.lu_sites.append(self._make_site(poi, "lu"))
        rest_pois = [p for p in self.pois if p.category in REST_CATEGORIES]
        order = rng.permutation(len(rest_pois))
        for idx in order[:self.config.num_rest_stops]:
            poi = rest_pois[int(idx)]
            self.rest_stops.append(self._make_site(poi, "rest"))
        depot_pois = [p for p in self.pois if p.category == "truck_depot"]
        while len(depot_pois) < self.config.num_depots:
            lat, lng = self.config.bbox.shrink(0.9).sample(rng)
            if self.urban_core.contains(lat, lng):
                continue
            depot_pois.append(self._add_poi("truck_depot", lat, lng))
        order = rng.permutation(len(depot_pois))
        for idx in order[:self.config.num_depots]:
            poi = depot_pois[int(idx)]
            self.depots.append(self._make_site(poi, "depot"))

    def _make_site(self, poi: POI, kind: str) -> Site:
        site = Site(self._next_site_id, poi.lat, poi.lng, poi.category, kind)
        self._next_site_id += 1
        return site

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        return {
            "pois": len(self.pois),
            "lu_sites": len(self.lu_sites),
            "rest_stops": len(self.rest_stops),
            "depots": len(self.depots),
            "road_nodes": self.roads.graph.number_of_nodes(),
            "road_edges": self.roads.graph.number_of_edges(),
        }
