"""HCT truck-day simulator (DESIGN.md S9).

Generates one labelled raw trajectory per truck-day, reproducing the causal
structure of the paper's Nantong data:

* an HCT process has the three ordered phases of the paper's Fig. 1
  (go to loading -> transport -> leave unloading);
* the truck *stays* (>= Tmin) when loading and unloading, near
  chemical-type POIs;
* the driver additionally takes ordinary breaks — before the loading, in
  the middle of the loaded leg, and after unloading — frequently at fuel
  stations, which are also legitimate loading sites for fuel trucks
  (challenge 1 of the paper: complex staying scenarios);
* *loaded* driving is slower (`loaded_speed_factor`) and detours around
  the urban core, a moving-behaviour signal invisible to stay-point-only
  baselines;
* GPS points carry Gaussian noise, and occasional large outliers that the
  Vmax noise filter must remove.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo import haversine_m
from ..model import LoadedLabel, TimeInterval, Trajectory
from .roadnet import Route
from .world import Site, SyntheticWorld

__all__ = ["SimulatorConfig", "Truck", "TruckDaySimulator", "make_fleet"]

#: Stay-count buckets and their shares in the paper's test set (Table III).
STAY_COUNT_BUCKETS: tuple[tuple[int, int, float], ...] = (
    (3, 5, 0.22),
    (6, 8, 0.34),
    (9, 11, 0.25),
    (12, 14, 0.19),
)

#: Planning weights used by the simulator.  They are deliberately shifted
#: toward larger itineraries relative to STAY_COUNT_BUCKETS because some
#: planned breaks are dropped (no separable site, day overrun) and some
#: stays merge during extraction; the *extracted* distribution then lands
#: near the paper's bucket shares.
_PLANNING_BUCKETS: tuple[tuple[int, int, float], ...] = (
    (3, 5, 0.27),
    (6, 8, 0.30),
    (9, 11, 0.23),
    (12, 15, 0.20),
)


@dataclass
class SimulatorConfig:
    """Physics and behaviour knobs of the simulator."""

    sampling_interval_s: float = 120.0   # ~2-minute sampling (paper §VI-A)
    sampling_jitter_s: float = 15.0
    gps_noise_m: float = 8.0
    outlier_probability: float = 0.008
    outlier_jump_m: tuple[float, float] = (6_000.0, 12_000.0)
    loaded_speed_factor: float = 0.72
    speed_noise_rel: float = 0.12
    stay_wander_m: float = 30.0
    ordinary_stay_s: tuple[float, float] = (17.0 * 60, 42.0 * 60)
    lu_stay_s: tuple[float, float] = (20.0 * 60, 70.0 * 60)
    #: Probability that an ordinary break happens at a chemical-type site
    #: (queueing at a factory gate, resting while refuelling) instead of a
    #: rest facility.  These stops are POI-indistinguishable from real
    #: loading/unloading stays — the paper's "complex staying scenarios".
    gate_stop_prob: float = 0.15
    min_leg_m: float = 2_500.0           # keep consecutive stays separable
    day_start_s: tuple[float, float] = (3.5 * 3600, 7.0 * 3600)
    max_day_s: float = 23.5 * 3600
    bucket_probs: tuple[tuple[int, int, float], ...] = _PLANNING_BUCKETS

    def __post_init__(self) -> None:
        if self.sampling_interval_s <= 2 * self.sampling_jitter_s:
            raise ValueError("sampling jitter too large for the interval")
        total = sum(p for _, _, p in self.bucket_probs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError("bucket probabilities must sum to 1")
        if self.ordinary_stay_s[0] < 16 * 60 or self.lu_stay_s[0] < 16 * 60:
            raise ValueError(
                "stays must exceed the Tmin=15min extraction threshold")


@dataclass(frozen=True)
class Truck:
    """An HCT truck: home depot plus its company's l/u site pool."""

    truck_id: str
    depot: Site
    site_pool: tuple[Site, ...]

    def __post_init__(self) -> None:
        if len(self.site_pool) < 2:
            raise ValueError("a truck needs at least two l/u sites")


def make_fleet(world: SyntheticWorld, num_trucks: int,
               rng: np.random.Generator,
               pool_size: tuple[int, int] = (3, 6)) -> list[Truck]:
    """Create a fleet whose companies use Zipf-skewed site pools.

    The skew makes some l/u sites rare, so a white list built from training
    trucks cannot cover every site used by test trucks (challenge 2 of the
    paper: numerous loading and unloading locations).
    """
    sites = world.lu_sites
    ranks = np.arange(1, len(sites) + 1, dtype=np.float64)
    weights = 1.0 / ranks**0.9
    weights /= weights.sum()
    min_pair_m = SimulatorConfig().min_leg_m
    fleet = []
    for i in range(num_trucks):
        depot = world.depots[int(rng.integers(len(world.depots)))]
        size = int(rng.integers(pool_size[0], pool_size[1] + 1))
        size = min(size, len(sites))
        for _ in range(64):
            chosen = rng.choice(len(sites), size=size, replace=False,
                                p=weights)
            pool = tuple(sites[int(c)] for c in chosen)
            if _has_distant_pair(pool, min_pair_m):
                break
        else:
            raise RuntimeError("l/u sites are too clustered for a fleet")
        fleet.append(Truck(truck_id=f"truck-{i:04d}", depot=depot,
                           site_pool=pool))
    return fleet


def _has_distant_pair(pool: tuple[Site, ...], min_m: float) -> bool:
    return any(
        haversine_m(a.lat, a.lng, b.lat, b.lng) >= min_m
        for i, a in enumerate(pool) for b in pool[i + 1:])


@dataclass
class _Visit:
    """One planned stop of the day's itinerary."""

    site: Site
    duration_s: float
    role: str  # "loading" | "unloading" | "ordinary"


class TruckDaySimulator:
    """Generates labelled raw trajectories over a :class:`SyntheticWorld`."""

    def __init__(self, world: SyntheticWorld,
                 config: SimulatorConfig | None = None) -> None:
        self.world = world
        self.config = config or SimulatorConfig()

    # ------------------------------------------------------------------
    # Itinerary planning
    # ------------------------------------------------------------------
    def _target_stay_count(self, rng: np.random.Generator) -> int:
        buckets = self.config.bucket_probs
        probs = np.array([p for _, _, p in buckets])
        lo, hi, _ = buckets[int(rng.choice(len(buckets), p=probs))]
        return int(rng.integers(lo, hi + 1))

    def _pick_lu_sites(self, truck: Truck, rng: np.random.Generator
                       ) -> tuple[Site, Site]:
        pool = truck.site_pool
        for _ in range(64):
            i, j = rng.choice(len(pool), size=2, replace=False)
            a, b = pool[int(i)], pool[int(j)]
            if haversine_m(a.lat, a.lng, b.lat, b.lng) >= self.config.min_leg_m:
                return a, b
        raise RuntimeError(
            f"no sufficiently distant l/u pair in pool of {truck.truck_id}")

    def _pick_ordinary_site(self, previous: Site, nxt: Site,
                            rng: np.random.Generator) -> Site | None:
        """A break location separable from both neighbours."""
        if rng.uniform() < self.config.gate_stop_prob:
            stops = self.world.lu_sites
        else:
            stops = self.world.rest_stops
        for _ in range(48):
            site = stops[int(rng.integers(len(stops)))]
            if (haversine_m(site.lat, site.lng, previous.lat, previous.lng)
                    >= self.config.min_leg_m
                    and haversine_m(site.lat, site.lng, nxt.lat, nxt.lng)
                    >= self.config.min_leg_m):
                return site
        return None

    def _plan(self, truck: Truck, rng: np.random.Generator) -> list[_Visit]:
        target = self._target_stay_count(rng)
        num_ordinary = target - 2
        # Spread ordinary breaks over the three phases; the loaded phase
        # gets the largest share (long hauls need breaks).
        shares = rng.multinomial(num_ordinary, [0.30, 0.40, 0.30])
        loading, unloading = self._pick_lu_sites(truck, rng)
        cfg = self.config

        def stay(role: str, site: Site) -> _Visit:
            lo, hi = cfg.lu_stay_s if role != "ordinary" else cfg.ordinary_stay_s
            return _Visit(site, float(rng.uniform(lo, hi)), role)

        visits: list[_Visit] = []
        anchors = [truck.depot, loading, unloading, truck.depot]
        phase_roles = ("ordinary", "ordinary", "ordinary")
        for phase, count in enumerate(shares):
            previous = anchors[phase]
            nxt = anchors[phase + 1]
            for _ in range(int(count)):
                site = self._pick_ordinary_site(previous, nxt, rng)
                if site is None:
                    continue
                visits.append(stay(phase_roles[phase], site))
                previous = site
            if phase == 0:
                visits.append(stay("loading", loading))
            elif phase == 1:
                visits.append(stay("unloading", unloading))
        return visits

    # ------------------------------------------------------------------
    # Trajectory synthesis
    # ------------------------------------------------------------------
    def simulate(self, truck: Truck, day: str,
                 rng: np.random.Generator) -> tuple[Trajectory, LoadedLabel]:
        """One labelled truck-day."""
        cfg = self.config
        visits = self._plan(truck, rng)
        lats: list[float] = []
        lngs: list[float] = []
        ts: list[float] = []
        cursor = float(rng.uniform(*cfg.day_start_s))
        position = (truck.depot.lat, truck.depot.lng)
        loaded = False
        loading_interval: TimeInterval | None = None
        unloading_interval: TimeInterval | None = None
        loading_site: Site | None = None
        unloading_site: Site | None = None

        def emit(lat: float, lng: float, t: float) -> None:
            lats.append(lat)
            lngs.append(lng)
            ts.append(t)

        # Departure fix at the depot.
        emit(*position, cursor)

        stops = list(visits) + [
            _Visit(truck.depot, 0.0, "return")]
        for visit in stops:
            if cursor > cfg.max_day_s and visit.role == "ordinary":
                continue  # day is running long: skip remaining breaks
            route = self.world.roads.route(
                position, (visit.site.lat, visit.site.lng),
                avoid_urban=loaded)
            cursor = self._drive(route, cursor, loaded, rng, emit)
            position = (visit.site.lat, visit.site.lng)
            if visit.duration_s > 0:
                arrival = cursor
                cursor = self._stay(visit, cursor, rng, emit)
                if visit.role == "loading":
                    loading_interval = TimeInterval(arrival, cursor)
                    loading_site = visit.site
                    loaded = True
                elif visit.role == "unloading":
                    unloading_interval = TimeInterval(arrival, cursor)
                    unloading_site = visit.site
                    loaded = False

        trajectory = self._finalize(lats, lngs, ts, truck, day, rng)
        if loading_interval is None or unloading_interval is None:
            raise RuntimeError("itinerary missing loading/unloading")
        label = LoadedLabel(
            loading=loading_interval, unloading=unloading_interval,
            loading_lat=loading_site.lat, loading_lng=loading_site.lng,
            unloading_lat=unloading_site.lat, unloading_lng=unloading_site.lng)
        return trajectory, label

    # ------------------------------------------------------------------
    def _drive(self, route: Route, cursor: float, loaded: bool,
               rng: np.random.Generator, emit) -> float:
        """Emit samples while driving a route; returns the new time cursor."""
        cfg = self.config
        factor = cfg.loaded_speed_factor if loaded else 1.0
        speeds = route.edge_speeds_kmh(factor)
        speeds = speeds * np.exp(rng.normal(0.0, cfg.speed_noise_rel,
                                            size=speeds.size))
        speeds = np.clip(speeds, 12.0, 105.0)
        # Cumulative time at each waypoint.
        edge_times = route.edge_lengths_m / (speeds / 3.6)
        waypoint_times = cursor + np.concatenate([[0.0],
                                                  np.cumsum(edge_times)])
        end_time = float(waypoint_times[-1])
        t = cursor + self._interval(rng)
        while t < end_time:
            idx = int(np.searchsorted(waypoint_times, t) - 1)
            idx = min(max(idx, 0), route.num_waypoints - 2)
            span = waypoint_times[idx + 1] - waypoint_times[idx]
            alpha = 0.0 if span <= 0 else (t - waypoint_times[idx]) / span
            lat = route.lats[idx] + alpha * (route.lats[idx + 1]
                                             - route.lats[idx])
            lng = route.lngs[idx] + alpha * (route.lngs[idx + 1]
                                             - route.lngs[idx])
            emit(lat, lng, t)
            t += self._interval(rng)
        return end_time

    def _stay(self, visit: _Visit, cursor: float,
              rng: np.random.Generator, emit) -> float:
        """Emit wandering samples during a stay; returns the new cursor."""
        cfg = self.config
        end_time = cursor + visit.duration_s
        lat0, lng0 = visit.site.lat, visit.site.lng
        meters_per_deg = 111_000.0
        t = cursor + self._interval(rng)
        # Arrival fix right at the site keeps the stay anchored.
        emit(lat0, lng0, cursor)
        while t < end_time:
            wander = rng.normal(0.0, cfg.stay_wander_m, size=2)
            emit(lat0 + wander[0] / meters_per_deg,
                 lng0 + wander[1] / meters_per_deg, t)
            t += self._interval(rng)
        return end_time

    def _interval(self, rng: np.random.Generator) -> float:
        cfg = self.config
        return float(max(30.0, rng.normal(cfg.sampling_interval_s,
                                          cfg.sampling_jitter_s)))

    def _finalize(self, lats, lngs, ts, truck: Truck, day: str,
                  rng: np.random.Generator) -> Trajectory:
        """Apply measurement noise, inject outliers, enforce ordering."""
        cfg = self.config
        lats = np.asarray(lats)
        lngs = np.asarray(lngs)
        ts = np.asarray(ts)
        order = np.argsort(ts, kind="stable")
        lats, lngs, ts = lats[order], lngs[order], ts[order]
        keep = np.concatenate([[True], np.diff(ts) > 1.0])
        lats, lngs, ts = lats[keep], lngs[keep], ts[keep]
        meters_per_deg = 111_000.0
        noise = rng.normal(0.0, cfg.gps_noise_m, size=(lats.size, 2))
        lats = lats + noise[:, 0] / meters_per_deg
        lngs = lngs + noise[:, 1] / meters_per_deg
        # Outliers: large jumps the Vmax filter must remove (never the
        # first point — the filter trusts the first fix).
        for i in range(1, lats.size):
            if rng.uniform() < cfg.outlier_probability:
                jump = rng.uniform(*cfg.outlier_jump_m)
                angle = rng.uniform(0.0, 2 * np.pi)
                lats[i] += jump * np.sin(angle) / meters_per_deg
                lngs[i] += jump * np.cos(angle) / meters_per_deg
        return Trajectory(lats, lngs, ts, truck_id=truck.truck_id, day=day)
