"""Synthetic road network and router (DESIGN.md S8).

A jittered grid graph over the city bounding box with three edge classes:

* ``highway`` — the outer ring plus two cross-city expressways (fast),
* ``urban``  — edges inside the urban core (slow; loaded HCT trucks are
  prohibited from the main urban area, see the paper's introduction),
* ``local``  — everything else.

The router minimizes travel time; when routing a *loaded* leg it applies a
heavy penalty to urban edges, producing the detour behaviour the paper
describes, which in turn is a moving-behaviour signal only candidate-level
models (LEAD) can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..geo import BoundingBox, LocalProjection, haversine_m

__all__ = ["RoadNetwork", "Route", "EDGE_SPEEDS_KMH"]

#: Free-flow speed by edge class (km/h).
EDGE_SPEEDS_KMH: dict[str, float] = {
    "highway": 80.0,
    "local": 48.0,
    "urban": 32.0,
}

_URBAN_AVOID_PENALTY = 6.0


@dataclass(frozen=True)
class Route:
    """A routed path: waypoints plus per-edge metadata."""

    lats: np.ndarray            # (k,) waypoint latitudes
    lngs: np.ndarray            # (k,) waypoint longitudes
    edge_kinds: tuple[str, ...]  # (k-1,) class of each hop
    edge_lengths_m: np.ndarray  # (k-1,)

    @property
    def length_m(self) -> float:
        return float(self.edge_lengths_m.sum())

    @property
    def num_waypoints(self) -> int:
        return int(self.lats.size)

    def edge_speeds_kmh(self, speed_factor: float = 1.0) -> np.ndarray:
        """Free-flow speed of each hop scaled by ``speed_factor``."""
        return np.array([EDGE_SPEEDS_KMH[k] for k in self.edge_kinds]) \
            * speed_factor


class RoadNetwork:
    """Grid road network over a bounding box."""

    def __init__(self, bbox: BoundingBox, nx_nodes: int = 18,
                 ny_nodes: int = 14, seed: int = 0,
                 urban_core: BoundingBox | None = None) -> None:
        if nx_nodes < 4 or ny_nodes < 4:
            raise ValueError("need at least a 4x4 grid")
        self.bbox = bbox
        self.urban_core = urban_core or bbox.shrink(0.30)
        self._projection = LocalProjection(*bbox.center)
        rng = np.random.default_rng(seed)
        self.graph = nx.Graph()
        self._build(nx_nodes, ny_nodes, rng)
        self._node_ids = list(self.graph.nodes)
        self._node_latlng = np.array(
            [self.graph.nodes[n]["latlng"] for n in self._node_ids])

    # ------------------------------------------------------------------
    def _build(self, nx_nodes: int, ny_nodes: int,
               rng: np.random.Generator) -> None:
        lat_step = self.bbox.lat_span / (ny_nodes - 1)
        lng_step = self.bbox.lng_span / (nx_nodes - 1)
        for ix in range(nx_nodes):
            for iy in range(ny_nodes):
                lat = self.bbox.min_lat + iy * lat_step
                lng = self.bbox.min_lng + ix * lng_step
                # Jitter interior nodes so roads are not perfectly straight.
                if 0 < ix < nx_nodes - 1:
                    lng += rng.normal(0.0, lng_step * 0.08)
                if 0 < iy < ny_nodes - 1:
                    lat += rng.normal(0.0, lat_step * 0.08)
                self.graph.add_node((ix, iy), latlng=(lat, lng))
        mid_x, mid_y = nx_nodes // 2, ny_nodes // 2
        for ix in range(nx_nodes):
            for iy in range(ny_nodes):
                for dx, dy in ((1, 0), (0, 1)):
                    jx, jy = ix + dx, iy + dy
                    if jx >= nx_nodes or jy >= ny_nodes:
                        continue
                    kind = self._edge_kind(ix, iy, jx, jy, nx_nodes,
                                           ny_nodes, mid_x, mid_y)
                    a = self.graph.nodes[(ix, iy)]["latlng"]
                    b = self.graph.nodes[(jx, jy)]["latlng"]
                    length = haversine_m(a[0], a[1], b[0], b[1])
                    time_s = length / (EDGE_SPEEDS_KMH[kind] / 3.6)
                    self.graph.add_edge((ix, iy), (jx, jy), kind=kind,
                                        length_m=length, time_s=time_s)

    def _edge_kind(self, ix: int, iy: int, jx: int, jy: int,
                   nx_nodes: int, ny_nodes: int,
                   mid_x: int, mid_y: int) -> str:
        on_ring = (min(ix, jx) == 0 or max(ix, jx) == nx_nodes - 1
                   or min(iy, jy) == 0 or max(iy, jy) == ny_nodes - 1)
        on_cross = (ix == jx == mid_x) or (iy == jy == mid_y)
        a = self.graph.nodes[(ix, iy)]["latlng"]
        b = self.graph.nodes[(jx, jy)]["latlng"]
        in_core = (self.urban_core.contains(*a)
                   and self.urban_core.contains(*b))
        if in_core:
            return "urban"
        if on_ring or on_cross:
            return "highway"
        return "local"

    # ------------------------------------------------------------------
    def nearest_node(self, lat: float, lng: float) -> tuple[int, int]:
        x0, y0 = self._projection.to_xy(lat, lng)
        xs, ys = self._projection.to_xy(self._node_latlng[:, 0],
                                        self._node_latlng[:, 1])
        best = int(np.argmin((xs - float(x0)) ** 2 + (ys - float(y0)) ** 2))
        return self._node_ids[best]

    def route(self, origin: tuple[float, float],
              destination: tuple[float, float],
              avoid_urban: bool = False) -> Route:
        """Time-optimal route between two (lat, lng) points.

        With ``avoid_urban=True`` urban-core edges are heavily penalized,
        reproducing the loaded-truck detours around the main urban area.
        """
        start = self.nearest_node(*origin)
        goal = self.nearest_node(*destination)

        if avoid_urban:
            def weight(u, v, attrs):
                factor = _URBAN_AVOID_PENALTY if attrs["kind"] == "urban" else 1.0
                return attrs["time_s"] * factor
        else:
            weight = "time_s"

        nodes = nx.shortest_path(self.graph, start, goal, weight=weight)
        node_latlngs = [self.graph.nodes[n]["latlng"] for n in nodes]
        waypoints = [tuple(origin)] + node_latlngs + [tuple(destination)]
        # Access legs (off-graph connectors to the nearest node) count as
        # local roads; graph hops use the stored edge class.
        kinds: list[str] = ["local"]
        kinds.extend(self.graph.edges[u, v]["kind"]
                     for u, v in zip(nodes[:-1], nodes[1:]))
        kinds.append("local")
        lats = np.array([p[0] for p in waypoints])
        lngs = np.array([p[1] for p in waypoints])
        lengths = np.array([
            haversine_m(lats[i], lngs[i], lats[i + 1], lngs[i + 1])
            for i in range(len(waypoints) - 1)
        ])
        return Route(lats, lngs, tuple(kinds), lengths)

    def urban_fraction(self, route: Route) -> float:
        """Fraction of route length on urban-core edges."""
        if route.length_m == 0:
            return 0.0
        urban = sum(length for kind, length
                    in zip(route.edge_kinds, route.edge_lengths_m)
                    if kind == "urban")
        return float(urban / route.length_m)
