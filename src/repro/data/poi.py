"""POI (point of interest) database with a planar grid index (DESIGN.md S7).

The paper collects 415,639 POIs in Nantong and groups them into 29 typical
categories; feature extraction counts category occurrences within a 100 m
radius of each GPS point.  This module provides the same interface over a
synthetic POI set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..geo import LocalProjection

__all__ = ["POI", "POIDatabase", "POI_CATEGORIES", "CHEMICAL_CATEGORIES",
           "REST_CATEGORIES"]

#: The 29 POI categories (paper §VI-A names "company, hospital, chemical
#: factory, etc." — the full taxonomy is not disclosed, so we use a
#: plausible industrial-city taxonomy of the same cardinality).
POI_CATEGORIES: tuple[str, ...] = (
    "chemical_factory", "fuel_station", "gas_plant", "oil_depot",
    "industrial_warehouse", "port_terminal", "steel_plant", "power_plant",
    "pharmaceutical_factory", "paint_factory", "fertilizer_plant",
    "construction_site", "truck_depot", "logistics_center", "weigh_station",
    "rest_area", "restaurant", "hotel", "hospital", "school", "company",
    "shopping_mall", "residential_area", "government_office", "bank",
    "park", "supermarket", "parking_lot", "bus_station",
)

assert len(POI_CATEGORIES) == 29

#: Categories at which hazardous chemicals are plausibly loaded/unloaded.
CHEMICAL_CATEGORIES: tuple[str, ...] = (
    "chemical_factory", "fuel_station", "gas_plant", "oil_depot",
    "port_terminal", "pharmaceutical_factory", "paint_factory",
    "fertilizer_plant", "steel_plant", "power_plant", "hospital",
    "construction_site",
)

#: Categories at which drivers take ordinary (non-l/u) breaks.
REST_CATEGORIES: tuple[str, ...] = (
    "fuel_station", "rest_area", "restaurant", "parking_lot",
    "logistics_center", "weigh_station",
)

_CATEGORY_INDEX = {name: i for i, name in enumerate(POI_CATEGORIES)}


@dataclass(frozen=True)
class POI:
    """One point of interest."""

    poi_id: int
    category: str
    lat: float
    lng: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.category not in _CATEGORY_INDEX:
            raise ValueError(f"unknown POI category: {self.category!r}")

    @property
    def category_index(self) -> int:
        return _CATEGORY_INDEX[self.category]


class POIDatabase:
    """A spatially indexed collection of POIs.

    The index is a uniform grid in local planar meters; radius queries scan
    only the cells intersecting the query disc, making the 100 m category
    counting used by feature extraction O(1) per point in practice.
    """

    def __init__(self, pois: list[POI] | None = None,
                 cell_size_m: float = 250.0,
                 projection: LocalProjection | None = None) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        self._pois: list[POI] = []
        self._grid: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._xy_list: list[tuple[float, float]] = []
        self._xy_cache: np.ndarray | None = None
        self._projection = projection
        for poi in pois or []:
            self.add(poi)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self):
        return iter(self._pois)

    @property
    def pois(self) -> list[POI]:
        return list(self._pois)

    def _ensure_projection(self, lat: float, lng: float) -> LocalProjection:
        if self._projection is None:
            self._projection = LocalProjection(lat, lng)
        return self._projection

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self.cell_size_m)),
                int(np.floor(y / self.cell_size_m)))

    def add(self, poi: POI) -> None:
        projection = self._ensure_projection(poi.lat, poi.lng)
        x, y = projection.to_xy(poi.lat, poi.lng)
        index = len(self._pois)
        self._pois.append(poi)
        self._grid[self._cell(float(x), float(y))].append(index)
        self._xy_list.append((float(x), float(y)))
        self._xy_cache = None

    @property
    def _xy(self) -> np.ndarray:
        if self._xy_cache is None:
            self._xy_cache = (np.asarray(self._xy_list)
                              if self._xy_list else np.zeros((0, 2)))
        return self._xy_cache

    # ------------------------------------------------------------------
    def query_radius(self, lat: float, lng: float, radius_m: float
                     ) -> list[POI]:
        """All POIs within ``radius_m`` meters of (lat, lng)."""
        indices = self._indices_within(lat, lng, radius_m)
        return [self._pois[i] for i in indices]

    def count_categories(self, lat: float, lng: float,
                         radius_m: float = 100.0) -> np.ndarray:
        """29-vector of per-category POI counts within the radius.

        This is exactly the ``poi`` feature of the paper's §IV-A.
        """
        counts = np.zeros(len(POI_CATEGORIES))
        for i in self._indices_within(lat, lng, radius_m):
            counts[self._pois[i].category_index] += 1.0
        return counts

    def count_categories_batch(self, lats: np.ndarray, lngs: np.ndarray,
                               radius_m: float = 100.0) -> np.ndarray:
        """Category counts for many points at once, shape ``(n, 29)``."""
        return np.stack([self.count_categories(lat, lng, radius_m)
                         for lat, lng in zip(lats, lngs)])

    def nearest(self, lat: float, lng: float,
                category: str | None = None) -> POI | None:
        """The nearest POI (optionally restricted to one category)."""
        if not self._pois:
            return None
        projection = self._ensure_projection(lat, lng)
        x, y = projection.to_xy(lat, lng)
        distances = np.hypot(self._xy[:, 0] - float(x),
                             self._xy[:, 1] - float(y))
        if category is not None:
            eligible = [i for i, p in enumerate(self._pois)
                        if p.category == category]
            if not eligible:
                return None
            best = min(eligible, key=lambda i: distances[i])
        else:
            best = int(np.argmin(distances))
        return self._pois[best]

    def _indices_within(self, lat: float, lng: float,
                        radius_m: float) -> list[int]:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        if not self._pois:
            return []
        projection = self._ensure_projection(lat, lng)
        x, y = projection.to_xy(lat, lng)
        x, y = float(x), float(y)
        reach = int(np.ceil(radius_m / self.cell_size_m))
        cx, cy = self._cell(x, y)
        hits: list[int] = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for i in self._grid.get((gx, gy), ()):
                    px, py = self._xy[i]
                    if (px - x) ** 2 + (py - y) ** 2 <= radius_m**2:
                        hits.append(i)
        return hits
