"""POI (point of interest) database with a planar grid index (DESIGN.md S7).

The paper collects 415,639 POIs in Nantong and groups them into 29 typical
categories; feature extraction counts category occurrences within a 100 m
radius of each GPS point.  This module provides the same interface over a
synthetic POI set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..geo import LocalProjection

__all__ = ["POI", "POIDatabase", "POI_CATEGORIES", "CHEMICAL_CATEGORIES",
           "REST_CATEGORIES"]

#: The 29 POI categories (paper §VI-A names "company, hospital, chemical
#: factory, etc." — the full taxonomy is not disclosed, so we use a
#: plausible industrial-city taxonomy of the same cardinality).
POI_CATEGORIES: tuple[str, ...] = (
    "chemical_factory", "fuel_station", "gas_plant", "oil_depot",
    "industrial_warehouse", "port_terminal", "steel_plant", "power_plant",
    "pharmaceutical_factory", "paint_factory", "fertilizer_plant",
    "construction_site", "truck_depot", "logistics_center", "weigh_station",
    "rest_area", "restaurant", "hotel", "hospital", "school", "company",
    "shopping_mall", "residential_area", "government_office", "bank",
    "park", "supermarket", "parking_lot", "bus_station",
)

assert len(POI_CATEGORIES) == 29

#: Categories at which hazardous chemicals are plausibly loaded/unloaded.
CHEMICAL_CATEGORIES: tuple[str, ...] = (
    "chemical_factory", "fuel_station", "gas_plant", "oil_depot",
    "port_terminal", "pharmaceutical_factory", "paint_factory",
    "fertilizer_plant", "steel_plant", "power_plant", "hospital",
    "construction_site",
)

#: Categories at which drivers take ordinary (non-l/u) breaks.
REST_CATEGORIES: tuple[str, ...] = (
    "fuel_station", "rest_area", "restaurant", "parking_lot",
    "logistics_center", "weigh_station",
)

_CATEGORY_INDEX = {name: i for i, name in enumerate(POI_CATEGORIES)}


@dataclass(frozen=True)
class POI:
    """One point of interest."""

    poi_id: int
    category: str
    lat: float
    lng: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.category not in _CATEGORY_INDEX:
            raise ValueError(f"unknown POI category: {self.category!r}")

    @property
    def category_index(self) -> int:
        return _CATEGORY_INDEX[self.category]


#: Cell-key packing factor for the frozen CSR grid.  City-scale planar
#: coordinates divided by the cell size stay far below 2**31, so
#: ``cx * 2**32 + cy`` is injective over int64.
_CELL_PACK = np.int64(2) ** 32


class _CSRGrid:
    """Frozen, array-only view of the grid index (built lazily).

    ``order`` lists POI indices sorted by packed cell key; ``starts``
    are CSR offsets into it (one slice per occupied cell, keys in
    ``cell_keys`` sorted ascending).  Bulk queries binary-search the
    keys of every (query, neighbor-cell) pair at once, gather the
    candidate slices with one ragged ``np.repeat`` expansion, and never
    touch a Python-level POI object.
    """

    __slots__ = ("cell_keys", "starts", "order", "xy", "categories")

    def __init__(self, xy: np.ndarray, categories: np.ndarray,
                 cell_size_m: float) -> None:
        cells = np.floor(xy / cell_size_m).astype(np.int64)
        keys = cells[:, 0] * _CELL_PACK + cells[:, 1]
        self.order = np.argsort(keys, kind="stable")
        sorted_keys = keys[self.order]
        if sorted_keys.size:
            first = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_keys)) + 1))
            self.cell_keys = sorted_keys[first]
            self.starts = np.concatenate(
                (first, [sorted_keys.size])).astype(np.int64)
        else:
            self.cell_keys = np.zeros(0, dtype=np.int64)
            self.starts = np.zeros(1, dtype=np.int64)
        self.xy = xy
        self.categories = categories


class POIDatabase:
    """A spatially indexed collection of POIs.

    The index is a uniform grid in local planar meters; radius queries scan
    only the cells intersecting the query disc, making the 100 m category
    counting used by feature extraction O(1) per point in practice.

    Two query planes share the same cell geometry: the mutable
    dict-of-lists grid serves the scalar entry points (and stays the
    equivalence oracle), while bulk queries freeze the POIs into a
    CSR-style array grid (:class:`_CSRGrid`) the first time they are
    needed and run entirely in numpy.
    """

    def __init__(self, pois: list[POI] | None = None,
                 cell_size_m: float = 250.0,
                 projection: LocalProjection | None = None) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        self._pois: list[POI] = []
        self._grid: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._xy_list: list[tuple[float, float]] = []
        self._xy_cache: np.ndarray | None = None
        self._categories_cache: np.ndarray | None = None
        self._csr: _CSRGrid | None = None
        self._projection = projection
        for poi in pois or []:
            self.add(poi)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self):
        return iter(self._pois)

    @property
    def pois(self) -> list[POI]:
        return list(self._pois)

    def _ensure_projection(self, lat: float, lng: float) -> LocalProjection:
        if self._projection is None:
            self._projection = LocalProjection(lat, lng)
        return self._projection

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (int(np.floor(x / self.cell_size_m)),
                int(np.floor(y / self.cell_size_m)))

    def add(self, poi: POI) -> None:
        projection = self._ensure_projection(poi.lat, poi.lng)
        x, y = projection.to_xy(poi.lat, poi.lng)
        index = len(self._pois)
        self._pois.append(poi)
        self._grid[self._cell(float(x), float(y))].append(index)
        self._xy_list.append((float(x), float(y)))
        self._xy_cache = None
        self._categories_cache = None
        self._csr = None

    @property
    def _xy(self) -> np.ndarray:
        if self._xy_cache is None:
            self._xy_cache = (np.asarray(self._xy_list)
                              if self._xy_list else np.zeros((0, 2)))
        return self._xy_cache

    @property
    def _category_codes(self) -> np.ndarray:
        """Per-POI category index as one int64 array (cached)."""
        if self._categories_cache is None:
            self._categories_cache = np.asarray(
                [p.category_index for p in self._pois], dtype=np.int64)
        return self._categories_cache

    def _frozen(self) -> _CSRGrid:
        """The CSR grid, rebuilt lazily after any mutation."""
        if self._csr is None:
            self._csr = _CSRGrid(self._xy, self._category_codes,
                                 self.cell_size_m)
        return self._csr

    # ------------------------------------------------------------------
    def query_radius(self, lat: float, lng: float, radius_m: float
                     ) -> list[POI]:
        """All POIs within ``radius_m`` meters of (lat, lng)."""
        indices = self._indices_within(lat, lng, radius_m)
        return [self._pois[i] for i in indices]

    def count_categories(self, lat: float, lng: float,
                         radius_m: float = 100.0) -> np.ndarray:
        """29-vector of per-category POI counts within the radius.

        This is exactly the ``poi`` feature of the paper's §IV-A.
        """
        counts = np.zeros(len(POI_CATEGORIES))
        for i in self._indices_within(lat, lng, radius_m):
            counts[self._pois[i].category_index] += 1.0
        return counts

    def count_categories_batch(self, lats: np.ndarray, lngs: np.ndarray,
                               radius_m: float = 100.0) -> np.ndarray:
        """Category counts for many points at once, shape ``(n, 29)``.

        One projection pass over all query points, one binary search per
        neighbor-cell offset, one ragged gather of candidate POIs, and a
        single ``np.add.at`` scatter into the count matrix — no Python
        loop over points or POIs.  Exactly equal (not merely close) to
        stacking :meth:`count_categories` per point: both planes test the
        same squared planar distance against the same threshold.
        """
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        if lats.shape != lngs.shape or lats.ndim != 1:
            raise ValueError("lats and lngs must be equal-length 1-D arrays")
        num_categories = len(POI_CATEGORIES)
        if lats.size == 0 or not self._pois:
            return np.zeros((lats.size, num_categories))
        qidx, cand = self._hits_within_batch(lats, lngs, radius_m)
        if not cand.size:
            return np.zeros((lats.size, num_categories))
        # bincount over flattened (query, category) bins: the same
        # integer accumulation as an ``np.add.at`` scatter, minus its
        # per-element dispatch cost.
        flat = np.bincount(qidx * num_categories
                           + self._frozen().categories[cand],
                           minlength=lats.size * num_categories)
        return flat.reshape(lats.size, num_categories).astype(np.float64)

    def _hits_within_batch(self, lats: np.ndarray, lngs: np.ndarray,
                           radius_m: float
                           ) -> tuple[np.ndarray, np.ndarray]:
        """All (query index, POI index) pairs within ``radius_m``.

        Requires a non-empty database and non-empty query arrays.
        """
        grid = self._frozen()
        x, y = self._projection.to_xy(lats, lngs)
        cell = self.cell_size_m
        reach = int(np.ceil(radius_m / cell))
        cx = np.floor(x / cell).astype(np.int64)
        cy = np.floor(y / cell).astype(np.int64)
        last = grid.cell_keys.size - 1
        # All neighbor-cell keys of all queries in one (n, span²) block,
        # resolved by a single binary search — no Python loop over the
        # offset grid.
        offs = np.arange(-reach, reach + 1, dtype=np.int64)
        kx = (cx[:, None] + offs[None, :]) * _CELL_PACK
        ky = cy[:, None] + offs[None, :]
        keys = (kx[:, :, None] + ky[:, None, :]).reshape(lats.size, -1)
        keys = keys.ravel()
        pos = np.minimum(np.searchsorted(grid.cell_keys, keys), last)
        occupied = grid.cell_keys[pos] == keys
        empty = np.zeros(0, dtype=np.int64)
        if not occupied.any():
            return empty, empty
        span_sq = offs.size * offs.size
        q = np.repeat(np.arange(lats.size, dtype=np.int64),
                      span_sq)[occupied]
        pos = pos[occupied]
        begins = grid.starts[pos]
        lengths = grid.starts[pos + 1] - begins
        total = int(lengths.sum())
        if total == 0:
            return empty, empty
        # Ragged expansion: each (query, cell) slice becomes contiguous
        # candidate indices begins[k] .. begins[k] + lengths[k).
        qidx = np.repeat(q, lengths)
        offsets = (np.arange(total, dtype=np.int64)
                   - np.repeat(np.cumsum(lengths) - lengths, lengths))
        cand = grid.order[np.repeat(begins, lengths) + offsets]
        dx_m = grid.xy[cand, 0] - x[qidx]
        dy_m = grid.xy[cand, 1] - y[qidx]
        hit = dx_m ** 2 + dy_m ** 2 <= radius_m ** 2
        return qidx[hit], cand[hit]

    def nearest(self, lat: float, lng: float,
                category: str | None = None) -> POI | None:
        """The nearest POI (optionally restricted to one category)."""
        if not self._pois:
            return None
        projection = self._ensure_projection(lat, lng)
        x, y = projection.to_xy(lat, lng)
        distances = np.hypot(self._xy[:, 0] - float(x),
                             self._xy[:, 1] - float(y))
        if category is not None:
            code = _CATEGORY_INDEX.get(category, -1)
            eligible = np.flatnonzero(self._category_codes == code)
            if eligible.size == 0:
                return None
            best = int(eligible[np.argmin(distances[eligible])])
        else:
            best = int(np.argmin(distances))
        return self._pois[best]

    def _indices_within(self, lat: float, lng: float,
                        radius_m: float) -> list[int]:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        if not self._pois:
            return []
        projection = self._ensure_projection(lat, lng)
        x, y = projection.to_xy(lat, lng)
        x, y = float(x), float(y)
        reach = int(np.ceil(radius_m / self.cell_size_m))
        cx, cy = self._cell(x, y)
        hits: list[int] = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for i in self._grid.get((gx, gy), ()):
                    px, py = self._xy[i]
                    if (px - x) ** 2 + (py - y) ** 2 <= radius_m**2:
                        hits.append(i)
        return hits
