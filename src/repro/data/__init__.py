"""Synthetic Nantong-like world, simulator, and dataset (DESIGN.md S7-S10)."""

from .poi import (CHEMICAL_CATEGORIES, POI, POI_CATEGORIES, POIDatabase,
                  REST_CATEGORIES)
from .roadnet import EDGE_SPEEDS_KMH, RoadNetwork, Route
from .world import Site, SyntheticWorld, WorldConfig
from .simulator import (SimulatorConfig, Truck, TruckDaySimulator,
                        make_fleet, STAY_COUNT_BUCKETS)
from .dataset import (DatasetConfig, HCTDataset, LabeledSample,
                      generate_dataset)

__all__ = [
    "POI", "POIDatabase", "POI_CATEGORIES", "CHEMICAL_CATEGORIES",
    "REST_CATEGORIES",
    "RoadNetwork", "Route", "EDGE_SPEEDS_KMH",
    "Site", "SyntheticWorld", "WorldConfig",
    "SimulatorConfig", "Truck", "TruckDaySimulator", "make_fleet",
    "STAY_COUNT_BUCKETS",
    "DatasetConfig", "HCTDataset", "LabeledSample", "generate_dataset",
]
