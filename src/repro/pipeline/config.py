"""Configuration of the full LEAD pipeline and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..configbase import ConfigMixin
from ..detection import DetectorTrainingConfig
from ..encoding import AutoencoderTrainingConfig, EncoderConfig
from ..features import FeatureConfig
from ..processing import (CandidateGenerator, NoiseFilter,
                          RawTrajectoryProcessor, StayPointExtractor)

__all__ = ["LEADConfig", "VARIANT_NAMES", "variant_config"]

#: The framework plus the six ablations evaluated in the paper's Table IV.
VARIANT_NAMES: tuple[str, ...] = (
    "LEAD", "LEAD-NoPoi", "LEAD-NoSel", "LEAD-NoHie", "LEAD-NoGro",
    "LEAD-NoFor", "LEAD-NoBac",
)


@dataclass
class LEADConfig(ConfigMixin):
    """All knobs of the LEAD framework (paper §VI-A defaults).

    Ablation switches:

    * ``feature.use_poi = False``      -> LEAD-NoPoi
    * ``encoder.use_attention = False`` -> LEAD-NoSel
    * ``encoder.hierarchical = False``  -> LEAD-NoHie
    * ``use_grouping = False``          -> LEAD-NoGro (MLP detector)
    * ``use_forward = False``           -> LEAD-NoFor
    * ``use_backward = False``          -> LEAD-NoBac
    """

    feature: FeatureConfig = field(default_factory=FeatureConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    encoder_training: AutoencoderTrainingConfig = field(
        default_factory=AutoencoderTrainingConfig)
    detector_training: DetectorTrainingConfig = field(
        default_factory=DetectorTrainingConfig)
    detector_hidden: int = 64
    #: Number of stacked BiLSTM layers.  The paper tunes L on its
    #: validation set and lands at 4 for its data scale; tuned the same
    #: way at this repository's CPU scale, L = 1 wins (deeper stacks do
    #: not train on hundreds of trajectories).
    detector_layers: int = 1
    #: Literal per-subgroup softmax (Eq. 10) instead of the flat per-
    #: trajectory normalization; see GroupDetector.subgroup_softmax.
    subgroup_softmax: bool = False
    use_grouping: bool = True
    use_forward: bool = True
    use_backward: bool = True
    #: After the paper's self-supervised pretraining, keep backpropagating
    #: the detector losses through the compressor (see detection.joint for
    #: why this CPU-scale deviation is needed and what it preserves).
    finetune_encoder: bool = True
    max_speed_kmh: float = 130.0      # Vmax
    stay_max_distance_m: float = 500.0   # Dmax
    stay_min_duration_s: float = 15.0 * 60.0  # Tmin
    max_autoencoder_samples: int | None = 3000
    #: Capacity of the content-keyed per-segment feature cache shared by
    #: training epochs and ``detect`` calls.  ``0`` disables caching
    #: entirely (bit-for-bit the uncached code path, just slower).
    feature_cache_size: int = 65536
    #: Inference compute dtype policy: ``"float64"`` (historical,
    #: byte-identical), ``"float32"`` (reduced-precision hot path) or
    #: ``"auto"`` (same as float32 today; both run the parity gate and
    #: fall back to float64, provenance-noted, when it fails).  Training
    #: always runs float64 regardless of this setting.
    inference_dtype: str = "float64"
    #: Parity-gate budget: maximum raw absolute difference allowed
    #: between the float32 and float64 merged distributions on the
    #: calibration slice.  The gate compares the distributions as they
    #: arrive — already min-max rescaled to [0, 1] by
    #: ``merge_distributions`` (Eq. 13) — so this margin is relative to
    #: the decision scale.  Verdict (argmax pair) agreement must
    #: additionally be exact.
    precision_margin: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not (self.use_forward or self.use_backward):
            raise ValueError("at least one detector direction is required")
        if self.detector_layers < 1 or self.detector_hidden < 1:
            raise ValueError("invalid detector size")
        if self.feature_cache_size < 0:
            raise ValueError("feature_cache_size must be >= 0")
        if self.inference_dtype not in ("float64", "float32", "auto"):
            raise ValueError(
                "inference_dtype must be 'float64', 'float32' or 'auto', "
                f"got {self.inference_dtype!r}")
        if not (0.0 < self.precision_margin <= 1.0):
            raise ValueError("precision_margin must be in (0, 1]")

    def build_processor(self) -> RawTrajectoryProcessor:
        return RawTrajectoryProcessor(
            noise_filter=NoiseFilter(self.max_speed_kmh),
            extractor=StayPointExtractor(self.stay_max_distance_m,
                                         self.stay_min_duration_s),
            generator=CandidateGenerator())


def variant_config(name: str, base: LEADConfig | None = None) -> LEADConfig:
    """The configuration of a named paper variant."""
    base = base or LEADConfig()
    if name == "LEAD":
        return base
    if name == "LEAD-NoPoi":
        return replace(base, feature=replace(base.feature, use_poi=False))
    if name == "LEAD-NoSel":
        return replace(base, encoder=replace(base.encoder,
                                             use_attention=False))
    if name == "LEAD-NoHie":
        return replace(base, encoder=replace(base.encoder,
                                             hierarchical=False))
    if name == "LEAD-NoGro":
        return replace(base, use_grouping=False)
    if name == "LEAD-NoFor":
        return replace(base, use_forward=False)
    if name == "LEAD-NoBac":
        return replace(base, use_backward=False)
    raise ValueError(f"unknown variant {name!r}; choose from {VARIANT_NAMES}")
