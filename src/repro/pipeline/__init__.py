"""LEAD framework facade and ablation variants (DESIGN.md S19)."""

from .config import LEADConfig, VARIANT_NAMES, variant_config
from .lead import LEAD, DetectionProvenance, DetectionResult, FitReport

__all__ = ["LEADConfig", "VARIANT_NAMES", "variant_config",
           "LEAD", "DetectionProvenance", "DetectionResult", "FitReport"]
