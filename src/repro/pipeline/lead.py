"""The LEAD framework facade (paper Fig. 2): offline fit, online detect.

Offline stage:

1. process historical raw trajectories (noise filtering, stay point
   extraction, candidate generation);
2. fit the z-score normalizer and train the hierarchical autoencoder on
   the shuffled f-seqs of all candidates (self-supervised);
3. encode every trajectory's candidates with the trained compressor and
   train the forward/backward detectors on the smoothed labels.

Online stage: a single forward computation per component detects the
loaded trajectory of an unseen raw trajectory.

Resilience (beyond the paper): the online stage validates and repairs
hostile input, and degrades through a tier chain instead of crashing
when a component is unavailable or numerically unstable::

    both -> forward-only / backward-only -> SP-R white list -> heuristic

Each :class:`DetectionResult` carries a :class:`DetectionProvenance`
recording which tier answered and what repairs were applied, so a
caller (or an auditor) can distinguish a full-confidence answer from a
degraded one.  Persistence is atomic and checksummed (``manifest.json``
per model directory), and ``fit`` checkpoints every epoch when given a
``checkpoint_dir`` so a killed run resumes deterministically.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Sequence

import numpy as np

from ..data.poi import POIDatabase
from ..data.dataset import LabeledSample
from ..detection import (GroupDetector, IndependentDetector,
                         JointDetectorTrainer, TrajectorySpec,
                         backward_index_maps, build_backward_group,
                         build_forward_group, forward_index_maps,
                         index_to_pair, merge_distributions, pair_to_index)
from ..encoding import (AutoencoderTrainer, HierarchicalAutoencoder)
from ..errors import (ArtifactCorruptedError, DetectorUnavailableError,
                      InvalidTrajectoryError, NotFittedError,
                      NumericalInstabilityError)
from ..features import (CandidateFeaturizer, FeatureExtractor,
                        ZScoreNormalizer)
from ..io import (atomic_write_json, load_checked_json, verify_manifest,
                  write_manifest)
from ..model import Trajectory
from ..nn import (CheckpointManager, Tensor, TrainingHistory, inference_dtype,
                  load_module, no_grad, save_module)
from ..obs.core import active_obs, obs_event, obs_span
from ..perf.cache import SegmentFeatureCache
from ..perf.parallel import parallel_map
from ..processing import ProcessedTrajectory, sanitize_trajectory
from .config import LEADConfig

__all__ = ["LEAD", "DetectionResult", "DetectionProvenance", "FitReport"]

#: Neural inference tiers in preference order, with the detector
#: direction each one needs.
_TIER_DIRECTIONS = (("both", "both"), ("forward-only", "forward"),
                    ("backward-only", "backward"))


def _process_sample(processor, sample: LabeledSample):
    """Module-level worker task: process one labelled raw trajectory."""
    return processor.process(sample.trajectory, sample.label)


def _featurize_candidates(featurizer, processed: ProcessedTrajectory):
    """Module-level worker task: featurize one trajectory's candidates."""
    return featurizer.featurize_all(processed.candidates)


@dataclass(frozen=True)
class DetectionProvenance:
    """Which tier produced a result and what repairs were applied."""

    tier: str                       # "both" | "independent" |
    #                                 "forward-only" | "backward-only" |
    #                                 "sp-r" | "heuristic"
    sanitized: bool = False         # input fixes were dropped/repaired
    notes: tuple[str, ...] = ()     # human-readable repair/failure trail
    #: Dtype the neural tiers computed in ("float64" | "float32").  The
    #: non-neural tiers (sp-r, heuristic) always report float64.  A
    #: float32 request demoted by the parity gate reports float64 here
    #: plus a degradation-style note in ``notes``.
    compute_dtype: str = "float64"

    @property
    def degraded(self) -> bool:
        """True when a lower tier than the full detector pair answered."""
        return self.tier not in ("both", "independent")


_FULL_CONFIDENCE = DetectionProvenance(tier="both")


@dataclass(frozen=True)
class DetectionResult:
    """The outcome of detecting one raw trajectory."""

    pair: tuple[int, int]               # detected (i', j')
    distribution: np.ndarray            # merged probabilities, enum order
    processed: ProcessedTrajectory
    provenance: DetectionProvenance = _FULL_CONFIDENCE

    @property
    def candidate(self):
        """The detected loaded trajectory as a CandidateTrajectory."""
        return self.processed.candidates[
            self.processed.candidate_index(self.pair)]


@dataclass
class FitReport:
    """Training record of one offline stage (feeds Figs. 9 and 10)."""

    autoencoder_history: TrainingHistory
    detector_histories: list[TrainingHistory] = field(default_factory=list)
    num_trajectories_used: int = 0
    num_autoencoder_samples: int = 0


class LEAD:
    """LoadEd trAjectory Detection framework."""

    def __init__(self, pois: POIDatabase,
                 config: LEADConfig | None = None) -> None:
        self.config = config or LEADConfig()
        cfg = self.config
        self.processor = cfg.build_processor()
        self.extractor = FeatureExtractor(pois, cfg.feature)
        self.feature_cache = (SegmentFeatureCache(cfg.feature_cache_size)
                              if cfg.feature_cache_size else None)
        self.featurizer = CandidateFeaturizer(self.extractor,
                                              ZScoreNormalizer(),
                                              cache=self.feature_cache)
        self.autoencoder = HierarchicalAutoencoder(cfg.encoder)
        rng = np.random.default_rng(cfg.seed)
        cvec_dim = cfg.encoder.cvec_dim
        if cfg.use_grouping:
            self.forward_detector = GroupDetector(
                cvec_dim, cfg.detector_hidden, cfg.detector_layers, rng,
                subgroup_softmax=cfg.subgroup_softmax) \
                if cfg.use_forward else None
            self.backward_detector = GroupDetector(
                cvec_dim, cfg.detector_hidden, cfg.detector_layers, rng,
                subgroup_softmax=cfg.subgroup_softmax) \
                if cfg.use_backward else None
            self.independent_detector = None
        else:
            self.forward_detector = None
            self.backward_detector = None
            self.independent_detector = IndependentDetector(cvec_dim, rng)
        #: Optional rule-based fallback (an object with a
        #: ``detect(processed) -> (i', j')`` method, e.g. SPRDetector)
        #: consulted when every neural tier fails.
        self.fallback_detector = None
        self._fitted = False
        self._load_notes: tuple[str, ...] = ()
        # Precision tier state: the effective compute dtype stays
        # unresolved (None) for float32/auto policies until the parity
        # gate has compared float32 against float64 verdicts on a
        # calibration slice — at load time when calibration data is
        # provided, otherwise lazily on the first detect batch.
        self._effective_dtype: str | None = (
            "float64" if cfg.inference_dtype == "float64" else None)
        self._parity_report: dict[str, object] | None = None
        self._precision_notes: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Offline stage
    # ------------------------------------------------------------------
    def fit(self, training: list[LabeledSample],
            verbose: bool = False,
            checkpoint_dir: str | Path | None = None,
            workers: int | None = None) -> FitReport:
        """Run the full offline stage on labelled raw trajectories.

        With ``checkpoint_dir``, both training loops persist their full
        state after every epoch; re-calling ``fit`` with the same
        directory after a crash retrains only the epochs that were never
        completed and yields bit-for-bit the same model.

        ``workers`` parallelizes the embarrassingly parallel offline
        stages (trajectory processing, candidate featurization) across
        processes; the result is identical for any worker count because
        those stages are pure functions of their inputs (see
        :mod:`repro.perf.parallel`).  Training itself stays serial — it
        is a sequential optimization loop.
        """
        processed = self._process_training(training, workers)
        if not processed:
            raise InvalidTrajectoryError("no usable training trajectories")
        self.featurizer.fit_normalizer([p.cleaned for p, _ in processed])
        ae_ckpt, det_ckpt = self._checkpoints(checkpoint_dir)
        report = FitReport(
            autoencoder_history=self._fit_autoencoder(processed, verbose,
                                                      ae_ckpt, workers),
            num_trajectories_used=len(processed))
        report.num_autoencoder_samples = self._last_report_samples
        detector_specs = self._build_detector_specs(processed)
        report.detector_histories = self._fit_detectors(detector_specs,
                                                        verbose, det_ckpt)
        self._fitted = True
        self._reset_precision_state()
        return report

    def fit_detectors_only(self, training: list[LabeledSample],
                           verbose: bool = False,
                           checkpoint_dir: str | Path | None = None
                           ) -> FitReport:
        """Train only the detection component.

        Requires the normalizer and autoencoder weights to be in place
        already (loaded from another variant's artifacts).  Used to build
        LEAD-NoGro cheaply: it shares LEAD's encoding verbatim, only the
        detector differs.
        """
        if not self.featurizer.normalizer.fitted:
            raise NotFittedError("normalizer must be fitted/loaded first")
        processed = self._process_training(training)
        if not processed:
            raise InvalidTrajectoryError("no usable training trajectories")
        _, det_ckpt = self._checkpoints(checkpoint_dir)
        specs = self._build_detector_specs(processed)
        report = FitReport(
            autoencoder_history=TrainingHistory(name="(reused)"),
            num_trajectories_used=len(processed))
        report.detector_histories = self._fit_detectors(specs, verbose,
                                                        det_ckpt)
        self._fitted = True
        self._reset_precision_state()
        return report

    @staticmethod
    def _checkpoints(checkpoint_dir: str | Path | None
                     ) -> tuple[CheckpointManager | None,
                                CheckpointManager | None]:
        if checkpoint_dir is None:
            return None, None
        directory = Path(checkpoint_dir)
        return (CheckpointManager(directory, "autoencoder"),
                CheckpointManager(directory, "detectors"))

    def _process_training(self, training: list[LabeledSample],
                          workers: int | None = None
                          ) -> list[tuple[ProcessedTrajectory,
                                          tuple[int, int]]]:
        results = parallel_map(partial(_process_sample, self.processor),
                               training, workers=workers)
        out = []
        for processed in results:
            if processed is None or processed.label_pair is None:
                continue  # unusable day, as in the paper's data cleaning
            out.append((processed, processed.label_pair))
        return out

    def _fit_autoencoder(self, processed, verbose: bool,
                         checkpoint: CheckpointManager | None = None,
                         workers: int | None = None) -> TrainingHistory:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        features = []
        for per_trajectory in parallel_map(
                partial(_featurize_candidates, self.featurizer),
                [trajectory for trajectory, _ in processed],
                workers=workers):
            features.extend(per_trajectory)
        rng.shuffle(features)
        if cfg.max_autoencoder_samples is not None:
            features = features[:cfg.max_autoencoder_samples]
        trainer = AutoencoderTrainer(self.autoencoder, cfg.encoder_training)
        history = trainer.fit(features, verbose=verbose,
                              checkpoint=checkpoint)
        self._last_report_samples = len(features)
        return history

    def _segments(self, processed: ProcessedTrajectory
                  ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        stay = [self.featurizer.segment_features(sp)
                for sp in processed.stay_points]
        move = [self.featurizer.segment_features(mp)
                for mp in processed.move_points]
        return stay, move

    def encode_candidates(self, processed: ProcessedTrajectory) -> np.ndarray:
        """c-vecs of all candidates in enumeration order, shape (N, 64)."""
        with obs_span("detect.featurize",
                      stays=processed.num_stay_points):
            stay, move = self._segments(processed)
        pairs = [c.pair for c in processed.candidates]
        with obs_span("detect.encode", candidates=len(pairs)):
            return self.autoencoder.encode_trajectory(stay, move, pairs)

    def encode_candidates_batch(self, processed_list:
                                list[ProcessedTrajectory]
                                ) -> list[np.ndarray]:
        """c-vecs of every candidate of many trajectories, batched.

        One phase-1 compressor pass per branch covers every segment of
        every trajectory, and phase 2 runs over the merged candidate set
        in shape buckets — the cross-trajectory analogue of
        :meth:`encode_candidates` (results ``allclose``, and the list
        lines up with the input order).
        """
        stay_lists, move_lists, pairs_lists = [], [], []
        with obs_span("detect.featurize",
                      trajectories=len(processed_list)):
            for processed in processed_list:
                stay, move = self._segments(processed)
                stay_lists.append(stay)
                move_lists.append(move)
                pairs_lists.append([c.pair for c in processed.candidates])
        with obs_span("detect.encode",
                      candidates=sum(len(p) for p in pairs_lists)):
            return self.autoencoder.encode_trajectories(
                stay_lists, move_lists, pairs_lists)

    def _build_detector_specs(self, processed) -> list[TrajectorySpec]:
        specs = []
        for trajectory, pair in processed:
            stay, move = self._segments(trajectory)
            specs.append(TrajectorySpec(
                stay_segments=stay, move_segments=move,
                pairs=[c.pair for c in trajectory.candidates],
                num_stay_points=trajectory.num_stay_points,
                target_index=pair_to_index(trajectory.num_stay_points,
                                           pair)))
        return specs

    def _fit_detectors(self, specs: list[TrajectorySpec], verbose: bool,
                       checkpoint: CheckpointManager | None = None
                       ) -> list[TrainingHistory]:
        cfg = self.config
        trainer = JointDetectorTrainer(
            self.autoencoder, self.forward_detector, self.backward_detector,
            self.independent_detector, cfg.detector_training,
            finetune_encoder=cfg.finetune_encoder)
        return trainer.fit(specs, verbose=verbose, checkpoint=checkpoint)

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------
    def predict_distribution(self, processed: ProcessedTrajectory,
                             direction: str = "both") -> np.ndarray:
        """Merged probability distribution over candidates (Eq. 13).

        ``direction`` restricts inference to one detector ("forward" /
        "backward"), realizing LEAD-NoBac / LEAD-NoFor: the detectors are
        trained separately (paper §V-B), so dropping one at inference is
        exactly the paper's ablation.

        Raises :class:`DetectorUnavailableError` when ``direction``
        selects no live detector and :class:`NumericalInstabilityError`
        when the merged distribution is not finite.
        """
        self._require_fitted()
        cvecs = self.encode_candidates(processed)
        n = processed.num_stay_points
        with no_grad():
            if self.independent_detector is not None:
                with obs_span("detect.score", direction=direction):
                    probs = self.independent_detector(
                        Tensor(cvecs)).numpy()
                with obs_span("detect.merge"):
                    return self._checked(merge_distributions(probs))
            if direction == "both" and (self.forward_detector is None
                                        or self.backward_detector is None):
                missing = ("forward" if self.forward_detector is None
                           else "backward")
                raise DetectorUnavailableError(
                    f"direction 'both' requires both detectors; the "
                    f"{missing} detector is unavailable")
            forward = backward = None
            with obs_span("detect.score", direction=direction):
                if self.forward_detector is not None and direction in (
                        "both", "forward"):
                    forward = self.forward_detector(
                        build_forward_group(cvecs, n)).numpy()
                if self.backward_detector is not None and direction in (
                        "both", "backward"):
                    backward = self.backward_detector(
                        build_backward_group(cvecs, n)).numpy()
        if forward is None and backward is None:
            raise DetectorUnavailableError(
                f"direction {direction!r} selects no available detector")
        with obs_span("detect.merge"):
            if forward is None:
                return self._checked(merge_distributions(backward))
            return self._checked(merge_distributions(forward, backward))

    @staticmethod
    def _checked(distribution: np.ndarray) -> np.ndarray:
        if not np.isfinite(distribution).all():
            raise NumericalInstabilityError(
                "detector produced a non-finite probability distribution")
        return distribution

    def detect_processed(self, processed: ProcessedTrajectory,
                         direction: str = "both") -> DetectionResult:
        """Strict single-tier detection (raises on failure).

        The evaluation harness uses this directly so ablation numbers
        are never silently polluted by fallback answers; the production
        entry point :meth:`detect` wraps it with the degradation chain.
        """
        distribution = self.predict_distribution(processed, direction)
        pair = index_to_pair(processed.num_stay_points,
                             int(np.argmax(distribution)))
        tier = {"both": "both", "forward": "forward-only",
                "backward": "backward-only"}.get(direction, direction)
        if self.independent_detector is not None:
            tier = "independent"
        return DetectionResult(pair, distribution, processed,
                               DetectionProvenance(tier=tier))

    # ------------------------------------------------------------------
    # Precision tiers
    # ------------------------------------------------------------------
    #: Calibration-slice size for the parity gate; enough trajectories
    #: to exercise every detector head without doubling a big batch.
    _PARITY_CALIBRATION = 16
    #: Below this many calibration trajectories a passing gate still
    #: commits float32 (re-gating on every detect call would triple its
    #: cost) but flags the thin evidence in the provenance notes.
    _PARITY_MIN_CALIBRATION = 4

    def run_parity_gate(self, processed_list: list[ProcessedTrajectory],
                        margin: float | None = None) -> dict[str, object]:
        """Compare float32 against float64 verdicts on a calibration slice.

        Runs the full batched inference twice — once per dtype — over up
        to ``_PARITY_CALIBRATION`` trajectories and demands exact
        verdict (argmax pair) agreement plus a merged-distribution
        divergence within ``margin`` (default
        ``config.precision_margin``).  The divergence is the raw maximum
        absolute difference of the merged distributions; those arrive
        min-max rescaled to [0, 1] by ``merge_distributions`` (Eq. 13),
        so the margin is relative to the decision scale without any
        further rescaling here.

        For a ``"float32"``/``"auto"`` policy the outcome is committed:
        a pass enables the float32 hot path for subsequent detect calls,
        a failure pins inference to float64 and records a
        degradation-style note that every later result carries in its
        provenance.  The gate itself degrades rather than raises: if
        batched inference cannot run at all (e.g. a detector is missing
        after ``load(strict=False)``) or produces non-finite
        distributions, the gate fails and pins float64, leaving the
        normal tier walk to serve the request.  Under a ``"float64"``
        policy the gate only reports.
        """
        self._require_fitted()
        if not processed_list:
            raise ValueError("parity gate needs a non-empty calibration "
                             "slice")
        if margin is None:
            margin = self.config.precision_margin
        sample = processed_list[:self._PARITY_CALIBRATION]
        try:
            with inference_dtype("float64"):
                reference = self._predict_many(sample)
            with inference_dtype("float32"):
                candidate = self._predict_many(sample)
        except (DetectorUnavailableError, NumericalInstabilityError) as exc:
            report: dict[str, object] = {
                "policy": self.config.inference_dtype,
                "verdict_agreement": 0.0,
                "max_abs_divergence": float("inf"),
                "margin": float(margin),
                "num_calibration": len(sample),
                "passed": False,
                "error": str(exc),
            }
            self._parity_report = report
            if self.config.inference_dtype != "float64":
                self._effective_dtype = "float64"
                self._precision_notes = (
                    "precision: float32 parity gate could not run "
                    f"({exc}); fell back to float64",)
                obs_event("precision.fallback", reason="gate-error",
                          error=str(exc),
                          policy=self.config.inference_dtype)
            return report
        agreements = 0
        max_divergence = 0.0
        for processed, ref, got in zip(sample, reference, candidate):
            if not (np.isfinite(ref).all() and np.isfinite(got).all()):
                # Non-finite on either side: argmax and divergence are
                # meaningless — count it as a disagreement.
                max_divergence = float("inf")
                continue
            n = processed.num_stay_points
            if index_to_pair(n, int(np.argmax(ref))) == \
                    index_to_pair(n, int(np.argmax(got))):
                agreements += 1
            max_divergence = max(max_divergence,
                                 float(np.abs(ref - got).max()))
        agreement = agreements / len(sample)
        passed = agreement == 1.0 and max_divergence <= margin
        report = {
            "policy": self.config.inference_dtype,
            "verdict_agreement": agreement,
            "max_abs_divergence": max_divergence,
            "margin": float(margin),
            "num_calibration": len(sample),
            "passed": passed,
        }
        self._parity_report = report
        if self.config.inference_dtype != "float64":
            if passed:
                self._effective_dtype = "float32"
                self._precision_notes = ()
                if len(sample) < self._PARITY_MIN_CALIBRATION:
                    self._precision_notes = (
                        "precision: float32 enabled from a small "
                        f"calibration slice (n={len(sample)} < "
                        f"{self._PARITY_MIN_CALIBRATION}); re-run "
                        "run_parity_gate() with more trajectories to "
                        "confirm",)
            else:
                self._effective_dtype = "float64"
                self._precision_notes = (
                    "precision: float32 parity gate failed "
                    f"(agreement={agreement:.3f}, "
                    f"divergence={max_divergence:.3g} > "
                    f"margin={margin:.3g}); fell back to float64",) \
                    if max_divergence > margin else (
                    "precision: float32 parity gate failed "
                    f"(agreement={agreement:.3f}); fell back to float64",)
                obs_event("precision.fallback", reason="gate-failed",
                          agreement=agreement,
                          max_abs_divergence=max_divergence,
                          margin=float(margin),
                          policy=self.config.inference_dtype)
        return report

    @property
    def parity_report(self) -> dict[str, object] | None:
        """The most recent parity-gate report (``None`` before any run)."""
        return self._parity_report

    def _resolve_inference_dtype(
            self, calibration: list[ProcessedTrajectory]) -> str:
        """The dtype detect calls compute in, gating lazily if needed."""
        if self._effective_dtype is None and calibration:
            self.run_parity_gate(calibration)
        return self._effective_dtype or "float64"

    def _reset_precision_state(self) -> None:
        """Invalidate any committed precision decision.

        Called whenever the weights change (``fit`` retrains, ``load``
        rebinds) — a parity verdict reached against the old weights says
        nothing about the new ones, so float32/auto policies go back to
        "ungated" and the next detect call (or an explicit
        :meth:`run_parity_gate`) re-earns the float32 hot path.
        """
        self._effective_dtype = (
            "float64" if self.config.inference_dtype == "float64" else None)
        self._parity_report = None
        self._precision_notes = ()

    # ------------------------------------------------------------------
    # Batched online stage (fleet-scale throughput)
    # ------------------------------------------------------------------
    def _predict_many(self, processed_list: list[ProcessedTrajectory],
                      direction: str = "both") -> list[np.ndarray]:
        """Merged distributions for many trajectories, *without* the
        finiteness check (callers apply it per trajectory).

        The shared detector forward merges every trajectory's subgroups
        into one padded batch; ``segments`` keeps the flat softmax
        per-trajectory, so each returned distribution equals the
        single-trajectory :meth:`predict_distribution` output up to GEMM
        associativity.
        """
        if not processed_list:
            return []
        cvecs_list = self.encode_candidates_batch(processed_list)
        counts = np.array([len(c) for c in cvecs_list], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        ns = [p.num_stay_points for p in processed_list]
        with no_grad():
            if self.independent_detector is not None:
                with obs_span("detect.score", direction=direction):
                    probs = self.independent_detector(
                        Tensor(np.concatenate(cvecs_list, axis=0))).numpy()
                with obs_span("detect.merge"):
                    return [merge_distributions(probs[int(a):int(b)])
                            for a, b in zip(offsets[:-1], offsets[1:])]
            if direction == "both" and (self.forward_detector is None
                                        or self.backward_detector is None):
                missing = ("forward" if self.forward_detector is None
                           else "backward")
                raise DetectorUnavailableError(
                    f"direction 'both' requires both detectors; the "
                    f"{missing} detector is unavailable")
            forward = backward = None
            all_cvecs = Tensor(np.concatenate(cvecs_list, axis=0))
            with obs_span("detect.score", direction=direction):
                if self.forward_detector is not None and direction in (
                        "both", "forward"):
                    maps: list[np.ndarray] = []
                    for n, off in zip(ns, offsets[:-1]):
                        maps.extend(m + int(off)
                                    for m in forward_index_maps(n))
                    forward = self.forward_detector.score_indexed(
                        all_cvecs, maps, segments=counts,
                        bucket=True).numpy()
                if self.backward_detector is not None and direction in (
                        "both", "backward"):
                    maps = []
                    for n, off in zip(ns, offsets[:-1]):
                        maps.extend(m + int(off)
                                    for m in backward_index_maps(n))
                    backward = self.backward_detector.score_indexed(
                        all_cvecs, maps, segments=counts,
                        bucket=True).numpy()
        if forward is None and backward is None:
            raise DetectorUnavailableError(
                f"direction {direction!r} selects no available detector")
        out: list[np.ndarray] = []
        with obs_span("detect.merge"):
            for a, b in zip(offsets[:-1], offsets[1:]):
                fwd = None if forward is None else forward[int(a):int(b)]
                bwd = None if backward is None else backward[int(a):int(b)]
                if fwd is None:
                    out.append(merge_distributions(bwd))
                else:
                    out.append(merge_distributions(fwd, bwd))
        return out

    @staticmethod
    def _direction_shim(method: str, args: tuple, direction: str) -> str:
        """Absorb the legacy positional ``direction`` argument."""
        if not args:
            return direction
        if len(args) > 1:
            raise TypeError(
                f"{method}() takes the processed list plus the keyword "
                "direction only")
        warnings.warn(
            f"passing direction positionally to LEAD.{method} is "
            f"deprecated; use {method}(batch, direction=...)",
            DeprecationWarning, stacklevel=3)
        return args[0]

    def predict_distribution_batch(self,
                                   processed_list:
                                   list[ProcessedTrajectory],
                                   *args,
                                   direction: str = "both"
                                   ) -> list[np.ndarray]:
        """Batched :meth:`predict_distribution` over many trajectories.

        Same strict semantics (raises on unavailable detectors or any
        non-finite distribution); results line up with the input order
        and are ``allclose`` to per-trajectory calls.  ``direction`` is
        keyword-only; the positional form is deprecated.
        """
        direction = self._direction_shim("predict_distribution_batch",
                                         args, direction)
        self._require_fitted()
        return [self._checked(d)
                for d in self._predict_many(processed_list, direction)]

    def detect_processed_batch(self,
                               processed_list: list[ProcessedTrajectory],
                               *args,
                               direction: str = "both"
                               ) -> list[DetectionResult]:
        """Strict batched detection (the batch analogue of
        :meth:`detect_processed`; raises on failure).  ``direction`` is
        keyword-only; the positional form is deprecated."""
        direction = self._direction_shim("detect_processed_batch",
                                         args, direction)
        distributions = self.predict_distribution_batch(
            processed_list, direction=direction)
        tier = {"both": "both", "forward": "forward-only",
                "backward": "backward-only"}.get(direction, direction)
        if self.independent_detector is not None:
            tier = "independent"
        results = []
        for processed, distribution in zip(processed_list, distributions):
            pair = index_to_pair(processed.num_stay_points,
                                 int(np.argmax(distribution)))
            results.append(DetectionResult(pair, distribution, processed,
                                           DetectionProvenance(tier=tier)))
        return results

    # ------------------------------------------------------------------
    # Telemetry plumbing (no-ops unless a bundle is active; see
    # repro.obs — outputs are bit-identical with telemetry on or off,
    # except that degraded provenance gains an event-correlating note)
    # ------------------------------------------------------------------
    def _observed(self, name: str, fn, **attrs):
        """Run ``fn`` inside a root span + latency histogram."""
        ob = active_obs()
        if ob is None:
            return fn()
        start = time.perf_counter()
        with ob.tracer.span(name, **attrs):
            result = fn()
        ob.registry.histogram(
            "lead_latency_seconds", help="wall time of LEAD entry points",
            labels={"op": name}).observe(time.perf_counter() - start)
        return result

    def _degradation_note(self, tier: str, notes: list[str],
                          sanitized: bool,
                          compute_dtype: str) -> str | None:
        """Emit a ``detection.degraded`` event; return the note citing it.

        The returned note (``obs: degradation event e000123``) is
        appended to the verdict's provenance, so an auditor can join a
        degraded result to the structured event that explains it.  When
        telemetry is off, no note is added and provenance is
        byte-identical to the pre-obs pipeline.
        """
        event = obs_event("detection.degraded", tier=tier,
                          sanitized=sanitized,
                          compute_dtype=compute_dtype, notes=list(notes))
        if event is None:
            return None
        return f"obs: degradation event {event['id']}"

    @staticmethod
    def _count_verdict(tier: str) -> None:
        ob = active_obs()
        if ob is not None:
            ob.registry.counter(
                "detect_verdicts_total",
                help="detection verdicts by answering tier",
                labels={"tier": tier}).inc()

    def detect_batch(self, trajectories: list[Trajectory]
                     ) -> list[DetectionResult | None]:
        """Fleet-scale :meth:`detect`: many raw trajectories, one pass.

        Sanitization and processing run per trajectory (they are cheap
        and can fail independently); every surviving trajectory's
        candidates then share batched encoder and detector forwards.
        The degradation chain is preserved per trajectory: a trajectory
        whose distribution is non-finite at one tier retries the lower
        tiers alone, exactly as in :meth:`detect`, and the returned
        provenance (tier, ``sanitized``, notes) matches the
        per-trajectory path.  Returns one entry per input, ``None``
        where :meth:`detect` would return ``None``.
        """
        self._require_fitted()
        return self._observed("detect_batch",
                              lambda: self._detect_batch_impl(trajectories),
                              trajectories=len(trajectories))

    def _detect_batch_impl(self, trajectories: list[Trajectory]
                           ) -> list[DetectionResult | None]:
        results: list[DetectionResult | None] = [None] * len(trajectories)
        pending_idx: list[int] = []
        pending_processed: list[ProcessedTrajectory] = []
        pending_notes: list[list[str]] = []
        survivors: list[tuple[int, Trajectory, list[str]]] = []
        with obs_span("detect.sanitize"):
            for idx, trajectory in enumerate(trajectories):
                try:
                    trajectory, sanitize_notes = \
                        sanitize_trajectory(trajectory)
                except InvalidTrajectoryError:
                    continue
                survivors.append((idx, trajectory, list(sanitize_notes)))
        with obs_span("detect.extract"):
            for idx, trajectory, sanitize_notes in survivors:
                try:
                    processed = self.processor.process(trajectory)
                except (ValueError, ArithmeticError):
                    continue
                if processed is None:
                    continue
                pending_idx.append(idx)
                pending_processed.append(processed)
                pending_notes.append(sanitize_notes)
        detected = self._detect_many_with_degradation(pending_processed,
                                                      pending_notes)
        for idx, result in zip(pending_idx, detected):
            results[idx] = result
        return results

    def detect_many(self, processed_list: list[ProcessedTrajectory],
                    notes_list: list[list[str]] | None = None
                    ) -> list[DetectionResult]:
        """Degradation-aware batched detection over processed snapshots.

        The serving contract of the streaming layer
        (:class:`repro.stream.FleetSessionManager`): callers that already
        hold :class:`~repro.processing.ProcessedTrajectory` snapshots —
        and, optionally, the sanitize provenance notes that produced
        them — get one fused tier walk over the whole batch.  Results
        line up with the input order and match what
        :meth:`detect` computes per trajectory from the same snapshot
        (same pair, ``allclose`` distribution, identical provenance),
        including the degraded tiers when detectors are missing or
        numerically unstable.
        """
        self._require_fitted()
        if notes_list is None:
            notes_list = [[] for _ in processed_list]
        if len(notes_list) != len(processed_list):
            raise ValueError(
                f"notes_list length {len(notes_list)} != processed_list "
                f"length {len(processed_list)}")
        return self._observed(
            "detect_many",
            lambda: self._detect_many_with_degradation(
                processed_list, [list(n) for n in notes_list]),
            trajectories=len(processed_list))

    def _detect_many_with_degradation(
            self, processed_list: list[ProcessedTrajectory],
            notes_list: list[list[str]]) -> list[DetectionResult]:
        """Batched tier walk mirroring :meth:`_detect_with_degradation`.

        Each tier runs one batched forward over the trajectories still
        unresolved; structural failures (a direction with no live
        detector) disqualify the tier for everyone with the same note
        the serial path records, while per-trajectory numerical failures
        only push that trajectory down to the next tier.
        """
        results: list[DetectionResult | None] = [None] * len(processed_list)
        compute_dtype = self._resolve_inference_dtype(processed_list)
        notes = [list(n) + list(self._precision_notes) for n in notes_list]
        sanitized = [bool(n) for n in notes_list]
        if self.independent_detector is not None:
            tiers: tuple[tuple[str, str], ...] = (("independent", "both"),)
        else:
            tiers = _TIER_DIRECTIONS
        pending = list(range(len(processed_list)))
        for tier, direction in tiers:
            if not pending:
                break
            try:
                with inference_dtype(compute_dtype):
                    raw = self._predict_many(
                        [processed_list[k] for k in pending], direction)
            except DetectorUnavailableError as exc:
                obs_event("detection.tier_failed", tier=tier,
                          error=str(exc), trajectories=len(pending))
                for k in pending:
                    notes[k].append(f"tier {tier!r} failed: {exc}")
                continue
            unresolved: list[int] = []
            for k, distribution in zip(pending, raw):
                if not np.isfinite(distribution).all():
                    exc = NumericalInstabilityError(
                        "detector produced a non-finite probability "
                        "distribution")
                    obs_event("detection.tier_failed", tier=tier,
                              error=str(exc), trajectories=1)
                    notes[k].append(f"tier {tier!r} failed: {exc}")
                    unresolved.append(k)
                    continue
                processed = processed_list[k]
                pair = index_to_pair(processed.num_stay_points,
                                     int(np.argmax(distribution)))
                if tier not in ("both", "independent"):
                    extra = self._degradation_note(
                        tier, notes[k], sanitized[k], compute_dtype)
                    if extra is not None:
                        notes[k].append(extra)
                self._count_verdict(tier)
                results[k] = DetectionResult(
                    pair, distribution, processed,
                    DetectionProvenance(tier=tier, sanitized=sanitized[k],
                                        notes=tuple(notes[k]),
                                        compute_dtype=compute_dtype))
            pending = unresolved
        for k in pending:
            results[k] = self._fallback_result(processed_list[k], notes[k],
                                               sanitized[k])
        return results  # type: ignore[return-value]

    def detect(self, trajectory: Trajectory) -> DetectionResult | None:
        """Full online pipeline on a raw trajectory, never crashing.

        The input is validated and repaired (non-finite fixes dropped),
        then detection walks the tier chain until one answers.  Returns
        ``None`` only when no candidate exists — too few stay points, or
        the trajectory was unsalvageable.  Raises only
        :class:`NotFittedError` (API misuse, not input hostility).
        """
        self._require_fitted()
        return self._observed("detect",
                              lambda: self._detect_impl(trajectory))

    def _detect_impl(self, trajectory: Trajectory
                     ) -> DetectionResult | None:
        notes: list[str] = []
        try:
            with obs_span("detect.sanitize"):
                trajectory, sanitize_notes = \
                    sanitize_trajectory(trajectory)
        except InvalidTrajectoryError as exc:
            # Unsalvageable input: report "no detection" like too-few
            # stay points rather than crashing a serving loop.
            del exc
            return None
        notes.extend(sanitize_notes)
        try:
            with obs_span("detect.extract"):
                processed = self.processor.process(trajectory)
        except (ValueError, ArithmeticError):
            return None
        if processed is None:
            return None
        return self._detect_with_degradation(processed, notes)

    def _detect_with_degradation(self, processed: ProcessedTrajectory,
                                 notes: list[str]) -> DetectionResult:
        """Walk the tier chain; always returns a provenance-tagged result."""
        sanitized = bool(notes)
        compute_dtype = self._resolve_inference_dtype([processed])
        notes = notes + list(self._precision_notes)
        if self.independent_detector is not None:
            tiers: tuple[tuple[str, str], ...] = (("independent", "both"),)
        else:
            tiers = _TIER_DIRECTIONS
        for tier, direction in tiers:
            try:
                with inference_dtype(compute_dtype):
                    distribution = self.predict_distribution(processed,
                                                             direction)
            except (DetectorUnavailableError,
                    NumericalInstabilityError) as exc:
                obs_event("detection.tier_failed", tier=tier,
                          error=str(exc), trajectories=1)
                notes = notes + [f"tier {tier!r} failed: {exc}"]
                continue
            pair = index_to_pair(processed.num_stay_points,
                                 int(np.argmax(distribution)))
            if tier not in ("both", "independent"):
                extra = self._degradation_note(tier, notes, sanitized,
                                               compute_dtype)
                if extra is not None:
                    notes = notes + [extra]
            self._count_verdict(tier)
            return DetectionResult(
                pair, distribution, processed,
                DetectionProvenance(tier=tier, sanitized=sanitized,
                                    notes=tuple(notes),
                                    compute_dtype=compute_dtype))
        return self._fallback_result(processed, notes, sanitized)

    def _fallback_result(self, processed: ProcessedTrajectory,
                         notes: list[str],
                         sanitized: bool) -> DetectionResult:
        """Last-resort tiers: the SP-R white list, then a fixed heuristic."""
        n = processed.num_stay_points
        uniform = np.full(processed.num_candidates,
                          1.0 / processed.num_candidates)
        if self.fallback_detector is not None:
            try:
                pair = tuple(self.fallback_detector.detect(processed))
                distribution = uniform.copy()
                distribution[processed.candidate_index(pair)] = 1.0
                extra = self._degradation_note("sp-r", notes, sanitized,
                                               "float64")
                if extra is not None:
                    notes = notes + [extra]
                self._count_verdict("sp-r")
                return DetectionResult(
                    pair, distribution, processed,
                    DetectionProvenance(tier="sp-r", sanitized=sanitized,
                                        notes=tuple(notes)))
            except (ValueError, KeyError, ArithmeticError) as exc:
                obs_event("detection.tier_failed", tier="sp-r",
                          error=str(exc), trajectories=1)
                notes = notes + [f"tier 'sp-r' failed: {exc}"]
        # Terminal heuristic: the first->last candidate, the single most
        # common loaded pattern in a one-day haul (depot out, depot back).
        pair = (1, n)
        distribution = uniform.copy()
        distribution[processed.candidate_index(pair)] = 1.0
        extra = self._degradation_note("heuristic", notes, sanitized,
                                       "float64")
        if extra is not None:
            notes = notes + [extra]
        self._count_verdict("heuristic")
        return DetectionResult(
            pair, distribution, processed,
            DetectionProvenance(tier="heuristic", sanitized=sanitized,
                                notes=tuple(notes)))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("LEAD is not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist trained weights and the normalizer.

        Every file is written atomically and a checksummed
        ``manifest.json`` covers the directory, so :meth:`load` detects
        torn or corrupted artifacts as a typed error.
        """
        self._require_fitted()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[str] = []
        for name, module in self._detector_modules().items():
            save_module(module, directory / f"{name}.npz")
            written.append(f"{name}.npz")
        payload = {"normalizer": self.featurizer.normalizer.to_dict()}
        atomic_write_json(directory / "state.json", payload)
        written.append("state.json")
        write_manifest(directory, written, kind="lead-model",
                       meta={"seed": self.config.seed,
                             "detectors": sorted(self._detector_modules()),
                             "dtype_policy": self.config.inference_dtype})
        return directory

    def _detector_modules(self) -> dict[str, object]:
        modules: dict[str, object] = {"autoencoder": self.autoencoder}
        if self.forward_detector is not None:
            modules["forward"] = self.forward_detector
        if self.backward_detector is not None:
            modules["backward"] = self.backward_detector
        if self.independent_detector is not None:
            modules["independent"] = self.independent_detector
        return modules

    def load(self, directory: str | Path, *args, strict: bool = True,
             calibration: Sequence[ProcessedTrajectory] | None = None,
             ) -> "LEAD":
        """Load weights saved by :meth:`save` (config must match).

        ``strict`` is keyword-only; the positional form is deprecated.

        ``strict=True`` (default) verifies the manifest and raises
        :class:`ArtifactCorruptedError` / ``FileNotFoundError`` on any
        damage.  ``strict=False`` degrades instead: a missing or
        corrupted *detector* file disables that detector (online
        detection falls down the tier chain and says so in its
        provenance), while the autoencoder and normalizer remain
        mandatory because nothing can run without them.

        A manifest recording an unknown ``dtype_policy`` is rejected in
        both modes — it means the artifact was produced by a newer (or
        tampered-with) precision scheme this build cannot honor.  When
        ``calibration`` trajectories are supplied and the configured
        policy is not ``"float64"``, the float32/float64 parity gate
        runs here instead of lazily at the first detect call.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    "load() takes the directory plus keyword arguments only")
            warnings.warn(
                "passing strict positionally to LEAD.load is deprecated; "
                "use load(directory, strict=...)",
                DeprecationWarning, stacklevel=2)
            strict = args[0]
        directory = Path(directory)
        notes: list[str] = []
        manifest = None
        if strict:
            manifest = verify_manifest(directory)
        else:
            try:
                manifest = verify_manifest(directory)
            except ArtifactCorruptedError as exc:
                notes.append(f"manifest verification failed: {exc.reason}")
        if manifest is not None:
            policy = manifest.meta.get("dtype_policy", "float64")
            if policy not in ("float64", "float32", "auto"):
                raise ArtifactCorruptedError(
                    directory / "manifest.json",
                    f"unknown recorded dtype policy {policy!r}")
        load_module(self.autoencoder, directory / "autoencoder.npz")
        for name in ("forward", "backward", "independent"):
            detector = getattr(self, f"{name}_detector")
            if detector is None:
                continue
            try:
                load_module(detector, directory / f"{name}.npz")
            except (FileNotFoundError, ArtifactCorruptedError) as exc:
                if strict:
                    raise
                setattr(self, f"{name}_detector", None)
                notes.append(f"{name} detector unavailable: {exc}")
        if (self.forward_detector is None and self.backward_detector is None
                and self.independent_detector is None
                and self.fallback_detector is None):
            notes.append("no detector loaded; online detection will use "
                         "the terminal heuristic tier")
        payload = load_checked_json(directory / "state.json")
        try:
            self.featurizer.normalizer = ZScoreNormalizer.from_dict(
                payload["normalizer"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptedError(
                directory / "state.json",
                f"invalid normalizer state: {exc}") from exc
        self._load_notes = tuple(notes)
        self._fitted = True
        self._reset_precision_state()
        if calibration and self.config.inference_dtype != "float64":
            self.run_parity_gate(list(calibration))
        return self
