"""The LEAD framework facade (paper Fig. 2): offline fit, online detect.

Offline stage:

1. process historical raw trajectories (noise filtering, stay point
   extraction, candidate generation);
2. fit the z-score normalizer and train the hierarchical autoencoder on
   the shuffled f-seqs of all candidates (self-supervised);
3. encode every trajectory's candidates with the trained compressor and
   train the forward/backward detectors on the smoothed labels.

Online stage: a single forward computation per component detects the
loaded trajectory of an unseen raw trajectory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.poi import POIDatabase
from ..data.dataset import LabeledSample
from ..detection import (GroupDetector, IndependentDetector,
                         JointDetectorTrainer, TrajectorySpec,
                         build_backward_group, build_forward_group,
                         index_to_pair, merge_distributions, pair_to_index)
from ..encoding import (AutoencoderTrainer, HierarchicalAutoencoder)
from ..features import (CandidateFeaturizer, FeatureExtractor,
                        ZScoreNormalizer)
from ..model import Trajectory
from ..nn import Tensor, TrainingHistory, load_module, no_grad, save_module
from ..processing import ProcessedTrajectory
from .config import LEADConfig

__all__ = ["LEAD", "DetectionResult", "FitReport"]


@dataclass(frozen=True)
class DetectionResult:
    """The outcome of detecting one raw trajectory."""

    pair: tuple[int, int]               # detected (i', j')
    distribution: np.ndarray            # merged probabilities, enum order
    processed: ProcessedTrajectory

    @property
    def candidate(self):
        """The detected loaded trajectory as a CandidateTrajectory."""
        return self.processed.candidates[
            self.processed.candidate_index(self.pair)]


@dataclass
class FitReport:
    """Training record of one offline stage (feeds Figs. 9 and 10)."""

    autoencoder_history: TrainingHistory
    detector_histories: list[TrainingHistory] = field(default_factory=list)
    num_trajectories_used: int = 0
    num_autoencoder_samples: int = 0


class LEAD:
    """LoadEd trAjectory Detection framework."""

    def __init__(self, pois: POIDatabase,
                 config: LEADConfig | None = None) -> None:
        self.config = config or LEADConfig()
        cfg = self.config
        self.processor = cfg.build_processor()
        self.extractor = FeatureExtractor(pois, cfg.feature)
        self.featurizer = CandidateFeaturizer(self.extractor,
                                              ZScoreNormalizer())
        self.autoencoder = HierarchicalAutoencoder(cfg.encoder)
        rng = np.random.default_rng(cfg.seed)
        cvec_dim = cfg.encoder.cvec_dim
        if cfg.use_grouping:
            self.forward_detector = GroupDetector(
                cvec_dim, cfg.detector_hidden, cfg.detector_layers, rng,
                subgroup_softmax=cfg.subgroup_softmax) \
                if cfg.use_forward else None
            self.backward_detector = GroupDetector(
                cvec_dim, cfg.detector_hidden, cfg.detector_layers, rng,
                subgroup_softmax=cfg.subgroup_softmax) \
                if cfg.use_backward else None
            self.independent_detector = None
        else:
            self.forward_detector = None
            self.backward_detector = None
            self.independent_detector = IndependentDetector(cvec_dim, rng)
        self._fitted = False

    # ------------------------------------------------------------------
    # Offline stage
    # ------------------------------------------------------------------
    def fit(self, training: list[LabeledSample],
            verbose: bool = False) -> FitReport:
        """Run the full offline stage on labelled raw trajectories."""
        processed = self._process_training(training)
        if not processed:
            raise ValueError("no usable training trajectories")
        self.featurizer.fit_normalizer([p.cleaned for p, _ in processed])
        report = FitReport(
            autoencoder_history=self._fit_autoencoder(processed, verbose),
            num_trajectories_used=len(processed))
        detector_specs = self._build_detector_specs(processed)
        report.detector_histories = self._fit_detectors(detector_specs,
                                                        verbose)
        self._fitted = True
        return report

    def fit_detectors_only(self, training: list[LabeledSample],
                           verbose: bool = False) -> FitReport:
        """Train only the detection component.

        Requires the normalizer and autoencoder weights to be in place
        already (loaded from another variant's artifacts).  Used to build
        LEAD-NoGro cheaply: it shares LEAD's encoding verbatim, only the
        detector differs.
        """
        if not self.featurizer.normalizer.fitted:
            raise RuntimeError("normalizer must be fitted/loaded first")
        processed = self._process_training(training)
        if not processed:
            raise ValueError("no usable training trajectories")
        specs = self._build_detector_specs(processed)
        report = FitReport(
            autoencoder_history=TrainingHistory(name="(reused)"),
            num_trajectories_used=len(processed))
        report.detector_histories = self._fit_detectors(specs, verbose)
        self._fitted = True
        return report

    def _process_training(self, training: list[LabeledSample]
                          ) -> list[tuple[ProcessedTrajectory,
                                          tuple[int, int]]]:
        out = []
        for sample in training:
            processed = self.processor.process(sample.trajectory,
                                               sample.label)
            if processed is None or processed.label_pair is None:
                continue  # unusable day, as in the paper's data cleaning
            out.append((processed, processed.label_pair))
        return out

    def _fit_autoencoder(self, processed, verbose: bool) -> TrainingHistory:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        features = []
        for trajectory, _ in processed:
            features.extend(self.featurizer.featurize_all(
                trajectory.candidates))
        rng.shuffle(features)
        if cfg.max_autoencoder_samples is not None:
            features = features[:cfg.max_autoencoder_samples]
        trainer = AutoencoderTrainer(self.autoencoder, cfg.encoder_training)
        history = trainer.fit(features, verbose=verbose)
        self._last_report_samples = len(features)
        return history

    def _segments(self, processed: ProcessedTrajectory
                  ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        stay = [self.featurizer._segment_features(sp)
                for sp in processed.stay_points]
        move = [self.featurizer._segment_features(mp)
                for mp in processed.move_points]
        return stay, move

    def encode_candidates(self, processed: ProcessedTrajectory) -> np.ndarray:
        """c-vecs of all candidates in enumeration order, shape (N, 64)."""
        stay, move = self._segments(processed)
        pairs = [c.pair for c in processed.candidates]
        return self.autoencoder.encode_trajectory(stay, move, pairs)

    def _build_detector_specs(self, processed) -> list[TrajectorySpec]:
        specs = []
        for trajectory, pair in processed:
            stay, move = self._segments(trajectory)
            specs.append(TrajectorySpec(
                stay_segments=stay, move_segments=move,
                pairs=[c.pair for c in trajectory.candidates],
                num_stay_points=trajectory.num_stay_points,
                target_index=pair_to_index(trajectory.num_stay_points,
                                           pair)))
        return specs

    def _fit_detectors(self, specs: list[TrajectorySpec],
                       verbose: bool) -> list[TrainingHistory]:
        cfg = self.config
        trainer = JointDetectorTrainer(
            self.autoencoder, self.forward_detector, self.backward_detector,
            self.independent_detector, cfg.detector_training,
            finetune_encoder=cfg.finetune_encoder)
        return trainer.fit(specs, verbose=verbose)

    # ------------------------------------------------------------------
    # Online stage
    # ------------------------------------------------------------------
    def predict_distribution(self, processed: ProcessedTrajectory,
                             direction: str = "both") -> np.ndarray:
        """Merged probability distribution over candidates (Eq. 13).

        ``direction`` restricts inference to one detector ("forward" /
        "backward"), realizing LEAD-NoBac / LEAD-NoFor: the detectors are
        trained separately (paper §V-B), so dropping one at inference is
        exactly the paper's ablation.
        """
        self._require_fitted()
        cvecs = self.encode_candidates(processed)
        n = processed.num_stay_points
        with no_grad():
            if self.independent_detector is not None:
                probs = self.independent_detector(Tensor(cvecs)).numpy()
                return merge_distributions(probs)
            forward = backward = None
            if self.forward_detector is not None and direction in (
                    "both", "forward"):
                forward = self.forward_detector(
                    build_forward_group(cvecs, n)).numpy()
            if self.backward_detector is not None and direction in (
                    "both", "backward"):
                backward = self.backward_detector(
                    build_backward_group(cvecs, n)).numpy()
        if forward is None and backward is None:
            raise ValueError(
                f"direction {direction!r} selects no available detector")
        if forward is None:
            return merge_distributions(backward)
        return merge_distributions(forward, backward)

    def detect_processed(self, processed: ProcessedTrajectory,
                         direction: str = "both") -> DetectionResult:
        distribution = self.predict_distribution(processed, direction)
        pair = index_to_pair(processed.num_stay_points,
                             int(np.argmax(distribution)))
        return DetectionResult(pair, distribution, processed)

    def detect(self, trajectory: Trajectory) -> DetectionResult | None:
        """Full online pipeline on a raw trajectory.

        Returns ``None`` when too few stay points were extracted for any
        candidate to exist.
        """
        processed = self.processor.process(trajectory)
        if processed is None:
            return None
        return self.detect_processed(processed)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("LEAD is not fitted; call fit() first")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist trained weights and the normalizer."""
        self._require_fitted()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_module(self.autoencoder, directory / "autoencoder.npz")
        if self.forward_detector is not None:
            save_module(self.forward_detector, directory / "forward.npz")
        if self.backward_detector is not None:
            save_module(self.backward_detector, directory / "backward.npz")
        if self.independent_detector is not None:
            save_module(self.independent_detector,
                        directory / "independent.npz")
        payload = {"normalizer": self.featurizer.normalizer.to_dict()}
        (directory / "state.json").write_text(json.dumps(payload))
        return directory

    def load(self, directory: str | Path) -> "LEAD":
        """Load weights saved by :meth:`save` (config must match)."""
        directory = Path(directory)
        load_module(self.autoencoder, directory / "autoencoder.npz")
        if self.forward_detector is not None:
            load_module(self.forward_detector, directory / "forward.npz")
        if self.backward_detector is not None:
            load_module(self.backward_detector, directory / "backward.npz")
        if self.independent_detector is not None:
            load_module(self.independent_detector,
                        directory / "independent.npz")
        payload = json.loads((directory / "state.json").read_text())
        self.featurizer.normalizer = ZScoreNormalizer.from_dict(
            payload["normalizer"])
        self._fitted = True
        return self
