"""Integration tests for the LEAD pipeline facade and its variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.pipeline import (LEAD, LEADConfig, VARIANT_NAMES, variant_config)


def tiny_lead_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def tiny_world_and_data():
    world = SyntheticWorld(WorldConfig(seed=6))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=10, num_trucks=5, seed=6),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted_lead(tiny_world_and_data):
    world, dataset = tiny_world_and_data
    lead = LEAD(world.pois, tiny_lead_config())
    report = lead.fit(dataset.samples[:8])
    return lead, report


class TestConfig:
    def test_variant_names_cover_paper(self):
        assert set(VARIANT_NAMES) == {
            "LEAD", "LEAD-NoPoi", "LEAD-NoSel", "LEAD-NoHie", "LEAD-NoGro",
            "LEAD-NoFor", "LEAD-NoBac"}

    def test_variant_config_switches(self):
        base = LEADConfig()
        assert not variant_config("LEAD-NoPoi", base).feature.use_poi
        assert not variant_config("LEAD-NoSel", base).encoder.use_attention
        assert not variant_config("LEAD-NoHie", base).encoder.hierarchical
        assert not variant_config("LEAD-NoGro", base).use_grouping
        assert not variant_config("LEAD-NoFor", base).use_forward
        assert not variant_config("LEAD-NoBac", base).use_backward
        assert variant_config("LEAD", base) is base

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            variant_config("LEAD-NoLSTM")

    def test_both_directions_required(self):
        with pytest.raises(ValueError):
            LEADConfig(use_forward=False, use_backward=False)

    def test_processor_uses_paper_thresholds(self):
        processor = LEADConfig().build_processor()
        assert processor.noise_filter.max_speed_kmh == 130.0
        assert processor.extractor.max_distance_m == 500.0
        assert processor.extractor.min_duration_s == 15 * 60.0


class TestFitDetect:
    def test_fit_report(self, fitted_lead):
        _, report = fitted_lead
        assert report.num_trajectories_used >= 6
        assert report.autoencoder_history.num_epochs >= 1
        assert {h.name for h in report.detector_histories} == {
            "forward-detector", "backward-detector"}

    def test_detect_returns_valid_candidate(self, fitted_lead,
                                            tiny_world_and_data):
        lead, _ = fitted_lead
        _, dataset = tiny_world_and_data
        result = lead.detect(dataset[9].trajectory)
        assert result is not None
        n = result.processed.num_stay_points
        assert 1 <= result.pair[0] < result.pair[1] <= n
        assert result.distribution.shape == (result.processed.num_candidates,)
        assert result.candidate.pair == result.pair

    def test_distribution_in_unit_interval(self, fitted_lead,
                                           tiny_world_and_data):
        lead, _ = fitted_lead
        _, dataset = tiny_world_and_data
        result = lead.detect(dataset[8].trajectory)
        assert result.distribution.min() >= 0.0
        assert result.distribution.max() <= 1.0

    def test_direction_restriction(self, fitted_lead, tiny_world_and_data):
        lead, _ = fitted_lead
        _, dataset = tiny_world_and_data
        processed = lead.processor.process(dataset[9].trajectory)
        both = lead.predict_distribution(processed, "both")
        fwd = lead.predict_distribution(processed, "forward")
        bwd = lead.predict_distribution(processed, "backward")
        assert both.shape == fwd.shape == bwd.shape
        # Forward-only and backward-only generally differ.
        assert not np.allclose(fwd, bwd)

    def test_invalid_direction_rejected(self, fitted_lead,
                                        tiny_world_and_data):
        lead, _ = fitted_lead
        _, dataset = tiny_world_and_data
        processed = lead.processor.process(dataset[9].trajectory)
        with pytest.raises(ValueError):
            lead.predict_distribution(processed, "sideways")

    def test_unfitted_detect_raises(self, tiny_world_and_data):
        world, dataset = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config())
        with pytest.raises(RuntimeError):
            lead.detect(dataset[0].trajectory)

    def test_fit_requires_usable_data(self, tiny_world_and_data):
        world, _ = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config())
        with pytest.raises(ValueError):
            lead.fit([])


class TestPersistence:
    def test_save_load_detection_identical(self, fitted_lead,
                                           tiny_world_and_data, tmp_path):
        lead, _ = fitted_lead
        world, dataset = tiny_world_and_data
        lead.save(tmp_path / "model")
        clone = LEAD(world.pois, tiny_lead_config())
        clone.load(tmp_path / "model")
        original = lead.detect(dataset[9].trajectory)
        restored = clone.detect(dataset[9].trajectory)
        assert original.pair == restored.pair
        np.testing.assert_allclose(original.distribution,
                                   restored.distribution)

    def test_save_requires_fitted(self, tiny_world_and_data, tmp_path):
        world, _ = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config())
        with pytest.raises(RuntimeError):
            lead.save(tmp_path / "nope")


class TestVariants:
    def test_nogro_uses_mlp(self, tiny_world_and_data):
        world, dataset = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config(use_grouping=False))
        assert lead.independent_detector is not None
        assert lead.forward_detector is None
        lead.fit(dataset.samples[:6])
        result = lead.detect(dataset[9].trajectory)
        assert result is not None

    def test_nogro_fit_detectors_only(self, fitted_lead,
                                      tiny_world_and_data):
        lead, _ = fitted_lead
        world, dataset = tiny_world_and_data
        from repro.features import ZScoreNormalizer
        nogro = LEAD(world.pois, tiny_lead_config(use_grouping=False))
        nogro.featurizer.normalizer = ZScoreNormalizer.from_dict(
            lead.featurizer.normalizer.to_dict())
        nogro.autoencoder.load_state_dict(lead.autoencoder.state_dict())
        report = nogro.fit_detectors_only(dataset.samples[:6])
        assert report.detector_histories[0].name == "independent-detector"
        assert nogro.detect(dataset[9].trajectory) is not None

    def test_fit_detectors_only_requires_normalizer(self,
                                                    tiny_world_and_data):
        world, dataset = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config())
        with pytest.raises(RuntimeError):
            lead.fit_detectors_only(dataset.samples[:4])

    def test_nofor_nobac_single_direction(self, tiny_world_and_data):
        world, dataset = tiny_world_and_data
        nofor = LEAD(world.pois, tiny_lead_config(use_forward=False))
        assert nofor.forward_detector is None
        assert nofor.backward_detector is not None
        report = nofor.fit(dataset.samples[:6])
        assert [h.name for h in report.detector_histories] == [
            "backward-detector"]
        assert nofor.detect(dataset[9].trajectory) is not None

    def test_nopoi_features_zeroed(self, tiny_world_and_data):
        world, dataset = tiny_world_and_data
        config = variant_config("LEAD-NoPoi", tiny_lead_config())
        lead = LEAD(world.pois, config)
        processed = lead.processor.process(dataset[0].trajectory)
        features = lead.extractor.trajectory_features(processed.cleaned)
        assert features[:, 3:].sum() == 0.0
