"""Tests for noise filtering, stay point extraction, candidate generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DatasetConfig, SimulatorConfig, generate_dataset)
from repro.model import Trajectory
from repro.processing import (CandidateGenerator, NoiseFilter,
                              RawTrajectoryProcessor, StayPointExtractor,
                              StayPointScanner, extract_move_points)

METERS_PER_DEG = 111_000.0


def make_trajectory(segments, dt=60.0):
    """Build a trajectory from (lat, lng, count) hold segments."""
    lats, lngs, ts = [], [], []
    t = 0.0
    for lat, lng, count in segments:
        for _ in range(count):
            lats.append(lat)
            lngs.append(lng)
            ts.append(t)
            t += dt
    return Trajectory(lats, lngs, ts)


def trajectory_with_stays(num_stays=3, stay_points=20, travel_points=5,
                          dt=60.0, spacing_deg=0.05):
    """Alternating long stays and fast transits between distinct regions."""
    lats, lngs, ts = [], [], []
    t = 0.0
    for s in range(num_stays):
        base_lat = 31.9 + s * spacing_deg
        for _ in range(stay_points):
            lats.append(base_lat)
            lngs.append(120.8)
            ts.append(t)
            t += dt
        if s < num_stays - 1:
            for k in range(1, travel_points + 1):
                alpha = k / (travel_points + 1)
                lats.append(base_lat + alpha * spacing_deg)
                lngs.append(120.8)
                ts.append(t)
                t += dt
    return Trajectory(lats, lngs, ts)


class TestNoiseFilter:
    def test_clean_trajectory_untouched(self):
        tr = trajectory_with_stays()
        filtered = NoiseFilter().filter(tr)
        assert len(filtered) == len(tr)

    def test_outlier_removed(self):
        # 10 km jump and back within 60 s -> 600 km/h, clearly noise.
        tr = make_trajectory([(31.9, 120.8, 3)])
        lats = list(tr.lats) + [31.9 + 10_000 / METERS_PER_DEG, 31.9]
        lngs = list(tr.lngs) + [120.8, 120.8]
        ts = list(tr.ts) + [180.0, 240.0]
        noisy = Trajectory(lats, lngs, ts)
        filtered = NoiseFilter(max_speed_kmh=130.0).filter(noisy)
        assert len(filtered) == 4
        assert NoiseFilter().removed_count(noisy) == 1

    def test_consecutive_outliers_removed(self):
        base = [(31.9, 120.8)] * 3
        outlier = 31.9 + 12_000 / METERS_PER_DEG
        lats = [p[0] for p in base] + [outlier, outlier + 0.001, 31.9]
        lngs = [120.8] * 6
        ts = [0.0, 60.0, 120.0, 180.0, 240.0, 300.0]
        filtered = NoiseFilter().filter(Trajectory(lats, lngs, ts))
        assert len(filtered) == 4
        assert filtered.lats[-1] == 31.9

    def test_short_trajectories_passthrough(self):
        tr = Trajectory([31.9], [120.8], [0.0])
        assert len(NoiseFilter().filter(tr)) == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            NoiseFilter(max_speed_kmh=0.0)

    def test_first_point_always_kept(self):
        tr = make_trajectory([(31.9, 120.8, 5)])
        filtered = NoiseFilter().filter(tr)
        assert filtered.lats[0] == tr.lats[0]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 30))
    def test_filtered_speeds_below_threshold(self, n):
        rng = np.random.default_rng(n)
        lats = 31.9 + np.cumsum(rng.normal(0, 0.01, size=n))
        lngs = 120.8 + np.cumsum(rng.normal(0, 0.01, size=n))
        ts = np.arange(n) * 120.0
        filtered = NoiseFilter().filter(Trajectory(lats, lngs, ts))
        if len(filtered) > 1:
            assert (filtered.segment_speeds_kmh() <= 130.0 + 1e-6).all()


class TestStayPointExtractor:
    def test_single_stay(self):
        tr = make_trajectory([(31.9, 120.8, 20)])
        sps = StayPointExtractor().extract(tr)
        assert len(sps) == 1
        assert sps[0].start == 0
        assert sps[0].end == len(tr) - 1
        assert sps[0].ordinal == 1

    def test_multiple_stays_with_transits(self):
        tr = trajectory_with_stays(num_stays=4)
        sps = StayPointExtractor().extract(tr)
        assert len(sps) == 4
        assert [sp.ordinal for sp in sps] == [1, 2, 3, 4]

    def test_short_stay_rejected(self):
        # 5 points at 60 s = 4 min < Tmin.
        tr = trajectory_with_stays(num_stays=2, stay_points=5)
        sps = StayPointExtractor().extract(tr)
        assert sps == []

    def test_moving_trajectory_has_no_stays(self):
        n = 50
        lats = 31.8 + np.arange(n) * 0.01  # >1 km per step
        tr = Trajectory(lats, np.full(n, 120.8), np.arange(n) * 60.0)
        assert StayPointExtractor().extract(tr) == []

    def test_duration_threshold_boundary(self):
        # Exactly Tmin duration is accepted (>=).
        tr = make_trajectory([(31.9, 120.8, 16)], dt=60.0)  # 15 min span
        sps = StayPointExtractor(min_duration_s=900.0).extract(tr)
        assert len(sps) == 1

    def test_wander_within_dmax_is_one_stay(self):
        rng = np.random.default_rng(0)
        n = 20
        lats = 31.9 + rng.normal(0, 30 / METERS_PER_DEG, size=n)
        lngs = 120.8 + rng.normal(0, 30 / METERS_PER_DEG, size=n)
        tr = Trajectory(lats, lngs, np.arange(n) * 120.0)
        sps = StayPointExtractor().extract(tr)
        assert len(sps) == 1

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            StayPointExtractor(max_distance_m=-1)
        with pytest.raises(ValueError):
            StayPointExtractor(min_duration_s=0)

    def test_stay_points_disjoint_and_ordered(self):
        tr = trajectory_with_stays(num_stays=5)
        sps = StayPointExtractor().extract(tr)
        for a, b in zip(sps, sps[1:]):
            assert a.end < b.start

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6))
    def test_extraction_invariants_on_simulated_styles(self, num_stays):
        tr = trajectory_with_stays(num_stays=num_stays)
        sps = StayPointExtractor().extract(tr)
        # Every stay meets the duration threshold.
        assert all(sp.duration_s >= 900.0 for sp in sps)
        # Ordinals are 1..n.
        assert [sp.ordinal for sp in sps] == list(range(1, len(sps) + 1))


class TestStayPointScanner:
    """The offline extractor is a replay of the online scanner."""

    def _replay_spans(self, extractor, trajectory, checkpoint_every=None):
        """Feed point-by-point; optionally round-trip state as it goes."""
        scanner = extractor.scanner()
        spans = []
        for k, (lat, lng, t) in enumerate(zip(trajectory.lats,
                                              trajectory.lngs,
                                              trajectory.ts)):
            if checkpoint_every and k % checkpoint_every == 0:
                state = scanner.state()
                import json as _json
                state = _json.loads(_json.dumps(state))
                scanner = StayPointScanner.from_state(state)
            spans.extend(scanner.feed(float(lat), float(lng), float(t)))
        spans.extend(scanner.finish())
        return spans

    def test_replay_matches_extract_on_synthetic_styles(self):
        extractor = StayPointExtractor()
        for num_stays in range(1, 6):
            tr = trajectory_with_stays(num_stays=num_stays)
            offline = [(sp.start, sp.end) for sp in extractor.extract(tr)]
            assert self._replay_spans(extractor, tr) == offline

    def test_replay_matches_extract_on_simulated_fleet(self):
        dataset = generate_dataset(DatasetConfig(
            num_trajectories=30, num_trucks=10, seed=11))
        extractor = StayPointExtractor()
        noise = NoiseFilter()
        checked = 0
        for sample in dataset.samples:
            cleaned = noise.filter(sample.trajectory)
            offline = [(sp.start, sp.end)
                       for sp in extractor.extract(cleaned)]
            assert self._replay_spans(extractor, cleaned) == offline
            checked += 1
        assert checked == 30

    def test_state_roundtrip_mid_stream_is_exact(self):
        extractor = StayPointExtractor()
        tr = trajectory_with_stays(num_stays=4)
        direct = self._replay_spans(extractor, tr)
        resumed = self._replay_spans(extractor, tr, checkpoint_every=7)
        assert resumed == direct

    def test_mid_stream_spans_are_final(self):
        """Spans emitted before the flush never change afterwards."""
        extractor = StayPointExtractor()
        tr = trajectory_with_stays(num_stays=3)
        scanner = extractor.scanner()
        seen = []
        for lat, lng, t in zip(tr.lats, tr.lngs, tr.ts):
            before = list(seen)
            seen.extend(scanner.feed(float(lat), float(lng), float(t)))
            assert seen[:len(before)] == before
        final = seen + scanner.finish()
        offline = [(sp.start, sp.end) for sp in extractor.extract(tr)]
        assert final == offline

    def test_feed_requires_increasing_time(self):
        scanner = StayPointExtractor().scanner()
        scanner.feed(31.9, 120.8, 0.0)
        with pytest.raises(ValueError):
            scanner.feed(31.9, 120.8, 0.0)

    def test_finish_is_idempotent(self):
        tr = make_trajectory([(31.9, 120.8, 20)])
        scanner = StayPointExtractor().scanner()
        for lat, lng, t in zip(tr.lats, tr.lngs, tr.ts):
            scanner.feed(float(lat), float(lng), float(t))
        first = scanner.finish()
        assert len(first) == 1
        assert scanner.finish() == []


class TestMovePoints:
    def test_move_points_connect_stays(self):
        tr = trajectory_with_stays(num_stays=3)
        sps = StayPointExtractor().extract(tr)
        mps = extract_move_points(tr, sps)
        assert len(mps) == 2
        for sp, mp in zip(sps, mps):
            assert mp.start == sp.end
        for mp, sp in zip(mps, sps[1:]):
            assert mp.end == sp.start

    def test_move_points_never_empty(self):
        tr = trajectory_with_stays(num_stays=2, travel_points=0)
        sps = StayPointExtractor().extract(tr)
        if len(sps) == 2:
            mps = extract_move_points(tr, sps)
            assert mps[0].num_points >= 2

    def test_empty_for_single_stay(self):
        tr = make_trajectory([(31.9, 120.8, 20)])
        sps = StayPointExtractor().extract(tr)
        assert extract_move_points(tr, sps) == []


class TestCandidateGenerator:
    def test_counts_formula(self):
        assert CandidateGenerator.count_for(5) == 10
        assert CandidateGenerator.count_for(14) == 91
        assert CandidateGenerator.count_for(3) == 3

    def test_generation_order_matches_forward_grouping(self):
        tr = trajectory_with_stays(num_stays=4)
        sps = StayPointExtractor().extract(tr)
        mps = extract_move_points(tr, sps)
        candidates = CandidateGenerator().generate(sps, mps)
        pairs = [c.pair for c in candidates]
        assert pairs == [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]

    def test_cap_enforced(self):
        tr = trajectory_with_stays(num_stays=3)
        sps = StayPointExtractor().extract(tr)
        mps = extract_move_points(tr, sps)
        with pytest.raises(ValueError):
            CandidateGenerator(max_stay_points=2).generate(sps, mps)

    def test_mismatched_move_points_rejected(self):
        tr = trajectory_with_stays(num_stays=3)
        sps = StayPointExtractor().extract(tr)
        with pytest.raises(ValueError):
            CandidateGenerator().generate(sps, [])


class TestProcessorEndToEnd:
    @pytest.fixture(scope="class")
    def processed(self):
        dataset = generate_dataset(DatasetConfig(
            num_trajectories=10, num_trucks=5, seed=13))
        processor = RawTrajectoryProcessor()
        results = []
        for sample in dataset:
            result = processor.process(sample.trajectory, sample.label)
            if result is not None:
                results.append(result)
        return results

    def test_most_samples_processable(self, processed):
        assert len(processed) >= 8

    def test_stay_counts_in_paper_range(self, processed):
        for result in processed:
            assert 2 <= result.num_stay_points <= 16

    def test_labels_mapped_for_most(self, processed):
        mapped = [r for r in processed if r.label_pair is not None]
        assert len(mapped) >= len(processed) * 0.8

    def test_label_pair_is_valid_candidate(self, processed):
        for result in processed:
            if result.label_pair is None:
                continue
            index = result.labeled_candidate_index
            assert result.candidates[index].pair == result.label_pair

    def test_candidate_count_matches_formula(self, processed):
        for result in processed:
            assert result.num_candidates == \
                CandidateGenerator.count_for(result.num_stay_points)

    def test_noise_filter_removes_injected_outliers(self):
        dataset = generate_dataset(DatasetConfig(
            num_trajectories=4, num_trucks=2, seed=21,
            sim=SimulatorConfig(outlier_probability=0.05)))
        nf = NoiseFilter()
        removed = sum(nf.removed_count(s.trajectory) for s in dataset)
        assert removed > 0
        for sample in dataset:
            cleaned = nf.filter(sample.trajectory)
            assert (cleaned.segment_speeds_kmh() <= 130.0 + 1e-6).all()

    def test_processor_returns_none_without_stays(self):
        n = 50
        lats = 31.8 + np.arange(n) * 0.01
        tr = Trajectory(lats, np.full(n, 120.8), np.arange(n) * 60.0)
        assert RawTrajectoryProcessor().process(tr) is None
