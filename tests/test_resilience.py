"""Resilience tests: atomic I/O, checkpoints, kill-and-resume, degradation.

The fault model exercised here, in increasing severity:

* torn / flipped-byte / truncated artifact files (disk or copy damage);
* a training process killed between epochs (OOM killer, preemption);
* hostile online input (NaN coordinates, out-of-order fixes);
* missing components at inference time (a detector file deleted).

Each fault must surface as a typed error or a provenance-tagged
degraded answer — never a raw ``zipfile``/``json`` traceback and never
a silent wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import SPRDetector
from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.errors import (ArtifactCorruptedError, CheckpointCorruptedError,
                          NotFittedError, NumericalInstabilityError)
from repro.io import (atomic_write_json, load_checked_json, load_checked_npz,
                      verify_manifest, write_manifest)
from repro.model import Trajectory
from repro.nn import (Adam, CheckpointManager, EarlyStopping,
                      GradientAccumulator, Linear, Tensor, TrainingHistory,
                      load_module, module_path, mse_loss, save_module)
from repro.pipeline import LEAD, LEADConfig

from .test_robustness import inject_nonfinite

METERS_PER_DEG = 111_000.0


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------
def tiny_lead_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def tiny_world_and_data():
    world = SyntheticWorld(WorldConfig(seed=6))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=10, num_trucks=5, seed=6),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted_lead(tiny_world_and_data):
    world, dataset = tiny_world_and_data
    lead = LEAD(world.pois, tiny_lead_config())
    lead.fit(dataset.samples[:8])
    return lead, dataset


def flip_byte(path, offset: int = None) -> None:
    """Corrupt one byte of a file in place (simulated bit rot)."""
    data = bytearray(path.read_bytes())
    i = len(data) // 2 if offset is None else offset
    data[i] ^= 0xFF
    path.write_bytes(bytes(data))


# ----------------------------------------------------------------------
# Atomic I/O and checksummed loads
# ----------------------------------------------------------------------
class TestAtomicIO:
    def test_json_round_trip_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"answer": 42})
        assert load_checked_json(path) == {"answer": 42}
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"version": 1})
        atomic_write_json(path, {"version": 2})
        assert load_checked_json(path) == {"version": 2}

    def test_truncated_json_is_typed_corruption(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_json(path, {"long": list(range(100))})
        path.write_bytes(path.read_bytes()[:10])  # torn write elsewhere
        with pytest.raises(ArtifactCorruptedError) as excinfo:
            load_checked_json(path)
        assert excinfo.value.path == path

    def test_flipped_byte_in_npz_is_typed_corruption(self, tmp_path):
        path = tmp_path / "weights.npz"
        module = Linear(4, 3)
        save_module(module, path)
        flip_byte(path)
        with pytest.raises(ArtifactCorruptedError):
            load_checked_npz(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checked_json(tmp_path / "nope.json")


class TestManifest:
    def _directory(self, tmp_path):
        atomic_write_json(tmp_path / "a.json", {"x": 1})
        (tmp_path / "b.bin").write_bytes(b"\x00" * 64)
        write_manifest(tmp_path, ["a.json", "b.bin"], kind="test-artifacts")
        return tmp_path

    def test_verify_accepts_intact_directory(self, tmp_path):
        manifest = verify_manifest(self._directory(tmp_path))
        assert set(manifest.files) == {"a.json", "b.bin"}
        assert manifest.kind == "test-artifacts"

    def test_verify_names_the_damaged_file(self, tmp_path):
        directory = self._directory(tmp_path)
        flip_byte(directory / "b.bin")
        with pytest.raises(ArtifactCorruptedError) as excinfo:
            verify_manifest(directory)
        assert "b.bin" in str(excinfo.value)

    def test_verify_detects_deleted_file(self, tmp_path):
        directory = self._directory(tmp_path)
        (directory / "a.json").unlink()
        with pytest.raises(ArtifactCorruptedError):
            verify_manifest(directory)

    def test_absent_manifest_is_legacy_unless_required(self, tmp_path):
        assert verify_manifest(tmp_path) is None
        with pytest.raises(ArtifactCorruptedError):
            verify_manifest(tmp_path, required=True)


class TestModuleSerialization:
    def test_save_returns_the_real_path(self, tmp_path):
        module = Linear(4, 3)
        written = save_module(module, tmp_path / "weights")  # no suffix
        assert written == module_path(tmp_path / "weights")
        assert written.exists()

    def test_load_accepts_suffixless_path(self, tmp_path):
        module = Linear(4, 3)
        save_module(module, tmp_path / "weights")
        clone = Linear(4, 3)
        load_module(clone, tmp_path / "weights")
        for key, value in module.state_dict().items():
            np.testing.assert_array_equal(clone.state_dict()[key], value)

    def test_missing_file_names_both_candidates(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            load_module(Linear(4, 3), tmp_path / "weights")
        message = str(excinfo.value)
        assert "weights" in message and "weights.npz" in message

    def test_mismatched_module_is_typed_corruption(self, tmp_path):
        save_module(Linear(4, 3), tmp_path / "weights.npz")
        with pytest.raises(ArtifactCorruptedError):
            load_module(Linear(5, 3), tmp_path / "weights.npz")


# ----------------------------------------------------------------------
# Numerical-instability guard
# ----------------------------------------------------------------------
class TestNonFiniteGuard:
    def _loss(self, module: Linear, target_value: float) -> Tensor:
        x = np.ones((2, 4))
        target = np.full((2, 3), target_value)
        return mse_loss(module(Tensor(x)), target)

    def test_nan_losses_are_skipped_then_fatal(self):
        module = Linear(4, 3)
        accumulator = GradientAccumulator(Adam(module.parameters()),
                                          accumulate=4, max_nonfinite=2)
        for _ in range(2):
            accumulator.backward(self._loss(module, np.nan))
        assert accumulator.nonfinite_count == 2
        with pytest.raises(NumericalInstabilityError):
            accumulator.backward(self._loss(module, np.nan))

    def test_skipped_losses_do_not_poison_weights(self):
        module = Linear(4, 3)
        before = {k: v.copy() for k, v in module.state_dict().items()}
        accumulator = GradientAccumulator(Adam(module.parameters()),
                                          accumulate=1, max_nonfinite=8)
        accumulator.backward(self._loss(module, np.nan))
        for key, value in module.state_dict().items():
            np.testing.assert_array_equal(value, before[key])
        accumulator.backward(self._loss(module, 1.0))  # finite -> steps
        assert any(not np.array_equal(v, before[k])
                   for k, v in module.state_dict().items())


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
class TestCheckpointManager:
    def _populated(self, tmp_path):
        rng = np.random.default_rng(3)
        module = Linear(4, 3, rng=rng)
        optimizer = Adam(module.parameters(), lr=1e-3)
        # Take a real step so the optimizer has moment buffers.
        loss = mse_loss(module(Tensor(np.ones((2, 4)))), np.zeros((2, 3)))
        loss.backward()
        optimizer.step()
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(2.0)
        history = TrainingHistory("unit", [1.0, 2.0])
        manager = CheckpointManager(tmp_path, "unit")
        manager.save(epoch=1, modules={"linear": module},
                     optimizer=optimizer, rng=rng, stopper=stopper,
                     histories=[history], extra={"note": "after epoch 1"})
        return manager, module, optimizer, rng, stopper

    def test_round_trip_restores_everything(self, tmp_path):
        manager, module, optimizer, rng, stopper = self._populated(tmp_path)
        state = manager.load()
        assert state.epoch == 1 and state.next_epoch == 2
        assert state.extra == {"note": "after epoch 1"}
        assert state.histories[0].epoch_losses == [1.0, 2.0]

        clone = Linear(4, 3)
        clone_opt = Adam(clone.parameters(), lr=1e-3)
        clone_rng = np.random.default_rng(999)
        clone_stop = EarlyStopping(patience=2)
        resume_epoch = manager.restore(state, modules={"linear": clone},
                                       optimizer=clone_opt, rng=clone_rng,
                                       stopper=clone_stop)
        assert resume_epoch == 2
        for key, value in module.state_dict().items():
            np.testing.assert_array_equal(clone.state_dict()[key], value)
        # RNG streams must continue identically after restore.
        np.testing.assert_array_equal(clone_rng.integers(0, 100, 16),
                                      rng.integers(0, 100, 16))
        assert clone_stop.state_dict() == stopper.state_dict()

    def test_empty_slot_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path, "empty").load() is None

    def test_flipped_byte_fails_checksum(self, tmp_path):
        manager, *_ = self._populated(tmp_path)
        flip_byte(manager.arrays_path)
        with pytest.raises(CheckpointCorruptedError) as excinfo:
            manager.load()
        assert "checksum mismatch" in excinfo.value.reason

    def test_lenient_mode_discards_and_warns(self, tmp_path):
        manager, *_ = self._populated(tmp_path)
        flip_byte(manager.arrays_path)
        lenient = CheckpointManager(tmp_path, "unit", strict=False)
        with pytest.warns(UserWarning, match="corrupted checkpoint"):
            assert lenient.load() is None
        assert not lenient.exists()  # slot cleared, retrain from scratch

    def test_truncated_metadata_is_corrupt(self, tmp_path):
        manager, *_ = self._populated(tmp_path)
        manager.meta_path.write_text("{\"epoch\":")
        with pytest.raises(CheckpointCorruptedError):
            manager.load()

    def test_restore_into_wrong_module_is_corrupt(self, tmp_path):
        manager, *_ = self._populated(tmp_path)
        state = manager.load()
        with pytest.raises(CheckpointCorruptedError):
            manager.restore(state, modules={"linear": Linear(7, 3)})

    def test_clear_removes_both_files(self, tmp_path):
        manager, *_ = self._populated(tmp_path)
        manager.clear()
        assert not manager.arrays_path.exists()
        assert not manager.meta_path.exists()


# ----------------------------------------------------------------------
# Kill-and-resume equivalence (the headline acceptance criterion)
# ----------------------------------------------------------------------
class SimulatedCrash(RuntimeError):
    """Stands in for SIGKILL: raised *after* a checkpoint save completes."""


def make_crashing_manager(crash_after: int):
    """A CheckpointManager that dies after ``crash_after`` total saves.

    The counter is shared across instances, so the crash can land inside
    either the autoencoder loop or the detector loop.
    """
    counter = {"saves": 0}

    class CrashingCheckpointManager(CheckpointManager):
        def save(self, **kwargs):
            super().save(**kwargs)
            counter["saves"] += 1
            if counter["saves"] >= crash_after:
                raise SimulatedCrash(
                    f"killed after {counter['saves']} checkpoint saves")

    return CrashingCheckpointManager


class TestKillAndResume:
    @pytest.mark.parametrize("crash_after", [1, 3])
    def test_resumed_fit_is_bit_for_bit_identical(self, tmp_path,
                                                  monkeypatch, crash_after,
                                                  tiny_world_and_data):
        """Kill training after N epoch saves; resuming must reproduce the
        uninterrupted run exactly — weights, histories, and detections.

        With 2 + 2 epochs, ``crash_after=1`` dies inside the autoencoder
        loop and ``crash_after=3`` inside the detector loop.
        """
        world, dataset = tiny_world_and_data
        samples = dataset.samples[:8]
        config = tiny_lead_config(
            encoder_training=AutoencoderTrainingConfig(
                epochs=2, max_samples_per_epoch=30, batch_size=8, seed=0),
            detector_training=DetectorTrainingConfig(
                epochs=2, batch_size=4, seed=0))

        # Reference: one uninterrupted run.
        reference = LEAD(world.pois, config)
        ref_report = reference.fit(samples,
                                   checkpoint_dir=tmp_path / "ref")

        # Interrupted run: crash mid-fit, then re-invoke the same command.
        import repro.pipeline.lead as lead_module
        monkeypatch.setattr(lead_module, "CheckpointManager",
                            make_crashing_manager(crash_after))
        crashed = LEAD(world.pois, config)
        with pytest.raises(SimulatedCrash):
            crashed.fit(samples, checkpoint_dir=tmp_path / "run")
        monkeypatch.undo()

        resumed = LEAD(world.pois, config)
        resumed_report = resumed.fit(samples,
                                     checkpoint_dir=tmp_path / "run")

        # Bit-for-bit identical weights across every trained module.
        for name, module in reference._detector_modules().items():
            twin = resumed._detector_modules()[name]
            for key, value in module.state_dict().items():
                np.testing.assert_array_equal(
                    twin.state_dict()[key], value,
                    err_msg=f"{name}/{key} diverged after resume")

        # Identical loss trajectories (epochs before AND after the kill).
        assert (resumed_report.autoencoder_history.epoch_losses
                == ref_report.autoencoder_history.epoch_losses)
        for ref_h, res_h in zip(ref_report.detector_histories,
                                resumed_report.detector_histories):
            assert res_h.epoch_losses == ref_h.epoch_losses

        # Identical answers on unseen data.
        holdout = dataset.samples[8].trajectory
        ref_result = reference.detect(holdout)
        res_result = resumed.detect(holdout)
        assert (ref_result is None) == (res_result is None)
        if ref_result is not None:
            assert res_result.pair == ref_result.pair
            np.testing.assert_array_equal(res_result.distribution,
                                          ref_result.distribution)

        # Completed fits clear their slots: nothing left to resume from.
        for name in ("autoencoder", "detectors"):
            assert not CheckpointManager(tmp_path / "run", name).exists()


# ----------------------------------------------------------------------
# Model persistence: corruption and lenient degradation
# ----------------------------------------------------------------------
class TestModelArtifacts:
    @pytest.fixture()
    def saved_model(self, tmp_path, fitted_lead):
        lead, _ = fitted_lead
        directory = tmp_path / "model"
        lead.save(directory)
        return directory

    def _fresh(self, fitted_lead) -> LEAD:
        lead, _ = fitted_lead
        return LEAD(lead.extractor.pois, tiny_lead_config())

    def test_save_writes_verified_manifest(self, saved_model):
        manifest = verify_manifest(saved_model, required=True)
        assert manifest.kind == "lead-model"
        assert {"autoencoder.npz", "forward.npz", "backward.npz",
                "state.json"} <= set(manifest.files)

    def test_flipped_byte_fails_strict_load(self, saved_model, fitted_lead):
        flip_byte(saved_model / "forward.npz")
        with pytest.raises(ArtifactCorruptedError):
            self._fresh(fitted_lead).load(saved_model)

    def test_deleted_detector_fails_strict_load(self, saved_model,
                                                fitted_lead):
        (saved_model / "forward.npz").unlink()
        with pytest.raises(ArtifactCorruptedError):
            self._fresh(fitted_lead).load(saved_model)

    def test_lenient_load_disables_damaged_detector(self, saved_model,
                                                    fitted_lead,
                                                    tiny_world_and_data):
        _, dataset = tiny_world_and_data
        flip_byte(saved_model / "forward.npz")
        lead = self._fresh(fitted_lead).load(saved_model, strict=False)
        assert lead.forward_detector is None
        assert lead.backward_detector is not None
        assert any("forward" in note for note in lead._load_notes)
        result = lead.detect(dataset.samples[9].trajectory)
        if result is not None:
            assert result.provenance.tier == "backward-only"
            assert result.provenance.degraded

    def test_corrupted_normalizer_is_typed(self, saved_model, fitted_lead):
        atomic_write_json(saved_model / "state.json", {"normalizer": "junk"})
        with pytest.raises(ArtifactCorruptedError):
            self._fresh(fitted_lead).load(saved_model, strict=False)


# ----------------------------------------------------------------------
# Graceful degradation of online detection
# ----------------------------------------------------------------------
class TestGracefulDegradation:
    def test_unfitted_detect_is_api_misuse(self, tiny_world_and_data):
        world, dataset = tiny_world_and_data
        lead = LEAD(world.pois, tiny_lead_config())
        with pytest.raises(NotFittedError):
            lead.detect(dataset.samples[0].trajectory)
        assert issubclass(NotFittedError, RuntimeError)  # legacy contract

    def test_clean_input_is_full_confidence(self, fitted_lead):
        lead, dataset = fitted_lead
        result = lead.detect(dataset.samples[8].trajectory)
        assert result is not None
        assert result.provenance.tier == "both"
        assert not result.provenance.degraded
        assert not result.provenance.sanitized

    def test_nan_fixes_are_sanitized_not_fatal(self, fitted_lead):
        lead, dataset = fitted_lead
        rng = np.random.default_rng(4)
        corrupted = inject_nonfinite(dataset.samples[8].trajectory,
                                     count=5, rng=rng)
        result = lead.detect(corrupted)
        assert result is not None
        assert result.provenance.sanitized
        assert any("non-finite" in note for note in result.provenance.notes)

    def test_all_nan_trajectory_returns_none(self, fitted_lead):
        lead, dataset = fitted_lead
        trajectory = dataset.samples[8].trajectory
        n = len(trajectory)
        hopeless = Trajectory(np.full(n, np.nan), np.full(n, np.nan),
                              trajectory.ts)
        assert lead.detect(hopeless) is None

    def _one_detector_down(self, fitted_lead, name: str):
        lead, _ = fitted_lead
        saved = getattr(lead, f"{name}_detector")
        setattr(lead, f"{name}_detector", None)
        return lead, saved

    @pytest.mark.parametrize("down,tier", [("forward", "backward-only"),
                                           ("backward", "forward-only")])
    def test_single_detector_tiers(self, fitted_lead, down, tier):
        lead, saved = self._one_detector_down(fitted_lead, down)
        try:
            result = lead.detect(fitted_lead[1].samples[8].trajectory)
            assert result is not None
            assert result.provenance.tier == tier
            assert result.provenance.degraded
            assert any("failed" in note for note in result.provenance.notes)
        finally:
            setattr(lead, f"{down}_detector", saved)

    def test_sp_r_fallback_tier(self, fitted_lead):
        lead, dataset = fitted_lead
        fwd, bwd = lead.forward_detector, lead.backward_detector
        fallback = SPRDetector()
        pairs = []
        for sample in dataset.samples[:8]:
            processed = lead.processor.process(sample.trajectory,
                                               sample.label)
            if processed is not None and processed.label_pair is not None:
                pairs.append((processed, sample.label))
        fallback.fit(pairs)
        lead.forward_detector = lead.backward_detector = None
        lead.fallback_detector = fallback
        try:
            result = lead.detect(dataset.samples[8].trajectory)
            assert result is not None
            assert result.provenance.tier == "sp-r"
            i, j = result.pair
            assert 1 <= i < j <= result.processed.num_stay_points
        finally:
            lead.forward_detector, lead.backward_detector = fwd, bwd
            lead.fallback_detector = None

    def test_terminal_heuristic_tier(self, fitted_lead):
        lead, dataset = fitted_lead
        fwd, bwd = lead.forward_detector, lead.backward_detector
        lead.forward_detector = lead.backward_detector = None
        try:
            result = lead.detect(dataset.samples[8].trajectory)
            assert result is not None
            assert result.provenance.tier == "heuristic"
            assert result.pair == (1, result.processed.num_stay_points)
            # Every neural tier left a note on its way down.
            assert len(result.provenance.notes) == 3
        finally:
            lead.forward_detector, lead.backward_detector = fwd, bwd

    def test_strict_path_still_raises(self, fitted_lead):
        """The evaluation entry point must NOT silently degrade."""
        lead, dataset = fitted_lead
        processed = lead.processor.process(dataset.samples[8].trajectory)
        fwd = lead.forward_detector
        lead.forward_detector = None
        try:
            with pytest.raises(ValueError):  # DetectorUnavailableError
                lead.detect_processed(processed, "forward")
        finally:
            lead.forward_detector = fwd


class TestDetectNeverRaises:
    """Property: a fitted ``detect`` tolerates arbitrary hostile input."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(gaps=st.lists(st.floats(1.0, 900.0), min_size=2, max_size=40),
           seed=st.integers(0, 2**31 - 1),
           corrupt=st.floats(0.0, 0.6))
    def test_detect_returns_result_or_none(self, fitted_lead, gaps, seed,
                                           corrupt):
        lead, _ = fitted_lead
        rng = np.random.default_rng(seed)
        ts = np.concatenate([[0.0], np.cumsum(gaps)])
        lats = 31.9 + rng.normal(0, 2000 / METERS_PER_DEG, size=ts.size)
        lngs = 120.8 + rng.normal(0, 2000 / METERS_PER_DEG, size=ts.size)
        bad = int(corrupt * ts.size)
        if bad:
            idx = rng.choice(ts.size, size=bad, replace=False)
            lats[idx] = rng.choice([np.nan, np.inf, -np.inf, 1e6], size=bad)
        result = lead.detect(Trajectory(lats, lngs, ts))
        if result is not None:
            i, j = result.pair
            assert 1 <= i < j <= result.processed.num_stay_points
            assert np.isfinite(result.distribution).all()
            assert result.provenance.tier in {
                "both", "forward-only", "backward-only", "independent",
                "sp-r", "heuristic"}
