"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the four contracts the subsystem makes:

* instruments are thread-safe and exact under concurrent hammering;
* span identity is deterministic under a seed and survives the
  ``parallel_map`` fan-out with correct nesting;
* telemetry off is a no-op — detection results and cache counters are
  bit-identical with and without an active bundle;
* the JSONL sink is crash-safe: a torn flush leaves a recoverable
  complete-line prefix, and the exposition renderers are golden-stable.
"""

from __future__ import annotations

import json
import pickle
import threading

import numpy as np
import pytest

from repro.chaos import ChaosEngine, FaultSpec
from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.obs import (EventLog, MetricsRegistry, Observability,
                       active_obs, flatten, obs_event, obs_span, observe,
                       read_jsonl, render_prometheus, render_span_tree,
                       render_table)
from repro.obs.core import _NULL_SPAN
from repro.obs.trace import Tracer
from repro.perf import parallel_map
from repro.pipeline import LEAD, LEADConfig


# ---------------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", help="h")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        gauge = registry.gauge("loss")
        gauge.set(2.5)
        gauge.dec(0.5)
        assert gauge.value == 2.0
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        snap = hist.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
        assert snap["count"] == 3

    def test_get_or_create_is_stable_and_label_keyed(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"cache": "x"})
        b = registry.counter("c", labels={"cache": "x"})
        c = registry.counter("c", labels={"cache": "y"})
        assert a is b
        assert a is not c
        assert a.key == 'c{cache="x"}'

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_thread_hammer_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        hist = registry.histogram("hammer_lat", buckets=(0.5,))
        threads, per_thread = 8, 2000

        def worker() -> None:
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.1)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert counter.value == threads * per_thread
        assert hist.count == threads * per_thread
        assert hist.snapshot()["buckets"]["0.5"] == threads * per_thread

    def test_instruments_pickle_without_lock(self):
        counter = MetricsRegistry().counter("c", labels={"k": "v"})
        counter.inc(7)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone.value == 7
        clone.inc()          # the rebuilt lock works
        assert clone.value == 8
        assert counter.value == 7      # detached copy


# ---------------------------------------------------------------------------
# tracing


def _strip_timing(spans: list[dict]) -> list[dict]:
    return [{k: v for k, v in span.items()
             if k not in ("start_s", "duration_s")} for span in spans]


class TestTracer:
    def _run_tree(self, tracer: Tracer) -> None:
        with tracer.span("root", depth=0):
            with tracer.span("child"):
                pass
            with tracer.span("child"):   # same name, distinct child key
                pass

    def test_ids_deterministic_across_runs(self):
        a, b = Tracer(seed=7), Tracer(seed=7)
        self._run_tree(a)
        self._run_tree(b)
        assert _strip_timing(a.finished) == _strip_timing(b.finished)
        other = Tracer(seed=8)
        self._run_tree(other)
        assert (_strip_timing(other.finished)
                != _strip_timing(a.finished))

    def test_nesting_and_sibling_keys(self):
        tracer = Tracer(seed=0)
        self._run_tree(tracer)
        spans = tracer.finished
        root = next(s for s in spans if s["name"] == "root")
        children = [s for s in spans if s["name"] == "child"]
        assert root["parent_id"] is None
        assert all(c["parent_id"] == root["span_id"] for c in children)
        assert len({c["span_id"] for c in children}) == 2
        assert all(c["trace_id"] == root["trace_id"] for c in children)

    def test_attach_parents_remote_work(self):
        tracer = Tracer(seed=0)
        box: dict = {}
        with tracer.span("root") as root:
            context = root.context

            def remote() -> None:
                with tracer.attach(context, child_key=3):
                    with tracer.span("task"):
                        pass
                box["done"] = True

            thread = threading.Thread(target=remote)
            thread.start()
            thread.join()
        assert box["done"]
        task = next(s for s in tracer.finished if s["name"] == "task")
        assert task["parent_id"] == context.span_id
        assert task["trace_id"] == context.trace_id

    def test_bounded_spans_count_drops(self):
        tracer = Tracer(seed=0, max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped == 2


# ---------------------------------------------------------------------------
# events and the ambient context


class TestEvents:
    def test_emit_sets_seq_and_deterministic_id(self):
        log = EventLog()
        event = log.emit("fleet.spill_failed", truck_id="t-1",
                         reason="disk full")
        assert event["id"] == "e000000"
        assert event["fields"]["truck_id"] == "t-1"
        assert log.emit("x")["id"] == "e000001"

    def test_bounded_log_counts_drops(self):
        log = EventLog(maxlen=2)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 2
        assert log.dropped == 3
        assert [e["seq"] for e in log.events] == [3, 4]

    def test_read_jsonl_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []


class TestAmbientContext:
    def test_off_by_default(self):
        assert active_obs() is None
        assert obs_event("anything", x=1) is None
        # The no-op span is a single shared, re-enterable object.
        assert obs_span("detect") is _NULL_SPAN
        assert obs_span("other") is _NULL_SPAN
        with obs_span("detect"):
            pass

    def test_observe_scopes_and_restores(self):
        ob = Observability(seed=1)
        with observe(ob):
            assert active_obs() is ob
            event = obs_event("detection.degraded", tier="sp-r")
            assert event is not None and event["name"] == \
                "detection.degraded"
            with obs_span("stage", items=2):
                pass
        assert active_obs() is None
        assert len(ob.events) == 1
        assert ob.tracer.finished[0]["attrs"] == {"items": 2}

    def test_name_field_does_not_collide(self):
        # Call sites emit fields literally called "name"; the event /
        # span name parameter is positional-only so this must work.
        with observe(Observability()) as ob:
            obs_event("breaker.transition", name="spill", to_state="open")
            with obs_span("s", name="attr-name"):
                pass
        assert ob.events.events[0]["fields"]["name"] == "spill"
        assert ob.tracer.finished[0]["attrs"]["name"] == "attr-name"


# ---------------------------------------------------------------------------
# parallel_map propagation


def _square(x: int) -> int:
    return x * x


class TestParallelPropagation:
    def test_serial_map_nests_task_spans(self):
        def run() -> list[dict]:
            ob = Observability(seed=3)
            with observe(ob):
                assert parallel_map(_square, range(4)) == [0, 1, 4, 9]
            return ob.tracer.finished

        spans = run()
        root = next(s for s in spans if s["name"] == "parallel.map")
        tasks = [s for s in spans if s["name"] == "parallel.task"]
        assert root["attrs"] == {"tasks": 4, "workers": 1}
        assert len(tasks) == 4
        assert all(t["parent_id"] == root["span_id"] for t in tasks)
        assert sorted(t["attrs"]["index"] for t in tasks) == [0, 1, 2, 3]
        # Task ids are pinned by index, so a rerun is byte-identical.
        assert _strip_timing(run()) == _strip_timing(spans)

    def test_pool_map_results_unchanged(self):
        with observe(Observability(seed=3)):
            assert parallel_map(_square, range(6), workers=2) \
                == [0, 1, 4, 9, 16, 25]


# ---------------------------------------------------------------------------
# no-op-mode bit-identity on the real pipeline


@pytest.fixture(scope="module")
def obs_fitted_lead():
    world = SyntheticWorld(WorldConfig(seed=6))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=8, num_trucks=4, seed=6),
        world=world)
    lead = LEAD(world.pois, LEADConfig(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40, seed=0))
    lead.fit(dataset.samples[:6])
    return lead, dataset


class TestNoOpBitIdentity:
    def test_detect_identical_off_and_on(self, obs_fitted_lead):
        lead, dataset = obs_fitted_lead
        trajectory = dataset.samples[0].trajectory
        off_a = lead.detect(trajectory)
        off_b = lead.detect(trajectory)
        assert off_a.pair == off_b.pair
        assert np.array_equal(off_a.distribution, off_b.distribution)
        assert off_a.provenance.notes == off_b.provenance.notes

        with observe(Observability(seed=0)):
            on = lead.detect(trajectory)
        assert on.pair == off_a.pair
        assert np.array_equal(on.distribution, off_a.distribution)

    def test_detect_batch_identical_off_and_on(self, obs_fitted_lead):
        lead, dataset = obs_fitted_lead
        trajectories = [s.trajectory for s in dataset.samples[:4]]
        off = lead.detect_batch(trajectories)
        with observe(Observability(seed=0)):
            on = lead.detect_batch(trajectories)
        for a, b in zip(off, on):
            if a is None:
                assert b is None
                continue
            assert a.pair == b.pair
            assert np.array_equal(a.distribution, b.distribution)

    def test_detect_records_stage_spans_and_verdict_counter(
            self, obs_fitted_lead):
        lead, dataset = obs_fitted_lead
        ob = Observability(seed=0)
        with observe(ob):
            lead.detect(dataset.samples[0].trajectory)
        names = {s["name"] for s in ob.tracer.finished}
        assert {"detect", "detect.sanitize", "detect.extract",
                "detect.featurize", "detect.encode", "detect.score",
                "detect.merge"} <= names
        counters = ob.registry.snapshot()["counters"]
        assert sum(v for k, v in counters.items()
                   if k.startswith("detect_verdicts_total")) == 1

    def test_cache_stats_payload_is_byte_compatible(self, obs_fitted_lead):
        lead, _ = obs_fitted_lead
        stats = lead.feature_cache.stats.as_dict()
        assert set(stats) == {"hits", "misses", "evictions", "hit_rate"}
        assert isinstance(stats["hits"], int)
        assert isinstance(stats["hit_rate"], float)


# ---------------------------------------------------------------------------
# crash-safe JSONL sink


def _populated_bundle() -> Observability:
    ob = Observability(seed=5)
    with observe(ob):
        obs_event("fleet.spill_failed", truck_id="t-9", reason="disk")
        with obs_span("detect"):
            with obs_span("detect.encode", candidates=3):
                pass
        ob.registry.counter("c_total").inc(2)
    return ob


class TestFlushAndTornWrites:
    def test_flush_round_trips(self, tmp_path):
        ob = _populated_bundle()
        path = tmp_path / "telemetry.jsonl"
        ob.flush(path)
        records = read_jsonl(path)
        assert records == ob.to_records()
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta" and kinds[-1] == "metrics"

    def test_torn_write_fuzz_recovers_prefix(self, tmp_path):
        ob = _populated_bundle()
        path = tmp_path / "telemetry.jsonl"
        full = ob.to_records()
        size = len("\n".join(json.dumps(r, sort_keys=True)
                             for r in full) + "\n")
        # Sweep the torn-write cut over the whole byte range: whatever
        # prefix lands on disk, the reader recovers only complete lines
        # and they match the intended stream.
        for cut in range(0, size + 1, max(1, size // 23)):
            spec = FaultSpec(site="io.write", kind="torn", param=cut)
            with ChaosEngine(seed=0, specs=[spec]):
                with pytest.raises(OSError):
                    ob.flush(path)
            recovered = read_jsonl(path)
            assert recovered == full[:len(recovered)]
            path.unlink(missing_ok=True)

    def test_failed_write_leaves_previous_flush(self, tmp_path):
        ob = _populated_bundle()
        path = tmp_path / "telemetry.jsonl"
        ob.flush(path)
        spec = FaultSpec(site="io.write", kind="fail")
        with ChaosEngine(seed=0, specs=[spec]):
            with pytest.raises(OSError):
                ob.flush(path)
        assert read_jsonl(path) == ob.to_records()


# ---------------------------------------------------------------------------
# exporters


class TestExposition:
    def _golden_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("cache_hits_total", help="Cache hits.",
                         labels={"cache": "segment"}).inc(3)
        registry.gauge("fleet_resident_sessions").set(2)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        return registry

    def test_prometheus_golden(self):
        text = render_prometheus(self._golden_registry())
        assert text == (
            '# HELP cache_hits_total Cache hits.\n'
            '# TYPE cache_hits_total counter\n'
            'cache_hits_total{cache="segment"} 3\n'
            '# TYPE fleet_resident_sessions gauge\n'
            'fleet_resident_sessions 2\n'
            '# TYPE lat_seconds histogram\n'
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 2\n'
            'lat_seconds_sum 0.55\n'
            'lat_seconds_count 2\n')

    def test_flatten_and_table(self):
        payload = {"fleet": {"evictions": 2, "keys": ["a", "b"]},
                   "ok": True}
        assert flatten(payload) == {"fleet.evictions": 2,
                                    "fleet.keys": "a,b", "ok": True}
        table = render_table(payload, title="stats")
        lines = table.splitlines()
        assert lines[0] == "stats"
        assert lines[2] == "fleet.evictions  2"
        # Aligned: every value starts at the same column.
        assert lines[3].startswith("fleet.keys       a,b")

    def test_span_tree_golden(self):
        spans = [
            {"seq": 0, "span_id": "aa", "parent_id": None,
             "name": "detect", "duration_s": 0.01, "attrs": {}},
            {"seq": 1, "span_id": "bb", "parent_id": "aa",
             "name": "detect.encode", "duration_s": 0.002,
             "attrs": {"candidates": 3}},
            {"seq": 2, "span_id": "cc", "parent_id": "zz",   # orphan
             "name": "stray", "duration_s": 0.001, "attrs": {}},
        ]
        assert render_span_tree(spans) == (
            "detect (aa) 10.00ms\n"
            "  detect.encode (bb) 2.00ms  [candidates=3]\n"
            "stray (cc) 1.00ms\n")


# ---------------------------------------------------------------------------
# CLI integration


class TestObsCli:
    def test_obs_subcommand_renders_flushed_trace(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.jsonl"
        _populated_bundle().flush(path)
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry schema v1" in out
        assert "detect.encode" in out
        assert "e000000  fleet.spill_failed" in out
        assert 'counters.c_total' in out

    def test_obs_subcommand_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        from repro.cli import main
        assert main(["obs", str(path)]) == 1
