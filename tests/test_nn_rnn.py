"""Tests for recurrent layers and the self-attention aggregator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (BiLSTMLayer, GRU, LSTM, LSTMCell, LSTMDecoder,
                      SelfAttentionAggregator, StackedBiLSTM, Tensor,
                      masked_softmax, sequence_mask)

RNG = np.random.default_rng(23)


def batch(b=3, t=5, f=4):
    return Tensor(RNG.normal(size=(b, t, f)))


class TestSequenceMask:
    def test_values(self):
        mask = sequence_mask(np.array([1, 3]), 4)
        expected = np.array([[1, 0, 0, 0], [1, 1, 1, 0]], dtype=float)
        np.testing.assert_array_equal(mask, expected)

    def test_full_lengths(self):
        mask = sequence_mask(np.array([4]), 4)
        np.testing.assert_array_equal(mask, np.ones((1, 4)))


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(4, 8, RNG)
        outputs, (h, c) = lstm(batch())
        assert outputs.shape == (3, 5, 8)
        assert h.shape == (3, 8)
        assert c.shape == (3, 8)

    def test_padding_invariance(self):
        """Padded garbage must not change outputs on valid steps."""
        lstm = LSTM(4, 6, np.random.default_rng(0))
        x = RNG.normal(size=(1, 3, 4))
        padded = np.concatenate([x, RNG.normal(size=(1, 2, 4)) * 50], axis=1)
        out_short, (h_short, _) = lstm(Tensor(x), np.array([3]))
        out_long, (h_long, _) = lstm(Tensor(padded), np.array([3]))
        np.testing.assert_allclose(out_short.numpy(),
                                   out_long.numpy()[:, :3, :], atol=1e-12)
        np.testing.assert_allclose(h_short.numpy(), h_long.numpy(),
                                   atol=1e-12)

    def test_final_hidden_is_last_valid_step(self):
        lstm = LSTM(4, 6, np.random.default_rng(0))
        x = batch(b=2, t=5)
        lengths = np.array([2, 5])
        outputs, (h, _) = lstm(x, lengths)
        np.testing.assert_allclose(h.numpy()[0], outputs.numpy()[0, 1])
        np.testing.assert_allclose(h.numpy()[1], outputs.numpy()[1, 4])

    def test_reverse_final_hidden_reads_whole_sequence(self):
        lstm = LSTM(4, 6, np.random.default_rng(0), reverse=True)
        x = batch(b=1, t=4)
        outputs, (h, _) = lstm(x, np.array([4]))
        # In reverse mode the state at t=0 has seen everything.
        np.testing.assert_allclose(h.numpy(), outputs.numpy()[:, 0, :])

    def test_gradients_flow_to_cell_weights(self):
        lstm = LSTM(4, 6, RNG)
        outputs, _ = lstm(batch(), np.array([5, 3, 1]))
        outputs.sum().backward()
        for p in lstm.parameters():
            assert p.grad is not None
            assert np.isfinite(p.grad).all()

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        lstm = LSTM(2, 3, rng)
        x = rng.normal(size=(1, 3, 2))
        weight = lstm.cell.w_ih

        def loss_value():
            out, _ = lstm(Tensor(x))
            return float(out.sum().numpy())

        out, _ = lstm(Tensor(x))
        out.sum().backward()
        analytic = weight.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(weight.data)
        it = np.nditer(weight.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = weight.data[idx]
            weight.data[idx] = original + eps
            plus = loss_value()
            weight.data[idx] = original - eps
            minus = loss_value()
            weight.data[idx] = original
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-4)


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(4, 8, RNG)
        outputs, h = gru(batch())
        assert outputs.shape == (3, 5, 8)
        assert h.shape == (3, 8)

    def test_padding_invariance(self):
        gru = GRU(4, 6, np.random.default_rng(0))
        x = RNG.normal(size=(1, 3, 4))
        padded = np.concatenate([x, np.ones((1, 2, 4)) * 9], axis=1)
        _, h_short = gru(Tensor(x), np.array([3]))
        _, h_long = gru(Tensor(padded), np.array([3]))
        np.testing.assert_allclose(h_short.numpy(), h_long.numpy(), atol=1e-12)

    def test_gradients_exist(self):
        gru = GRU(4, 6, RNG)
        outputs, _ = gru(batch())
        outputs.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())


class TestBiLSTM:
    def test_layer_shape(self):
        layer = BiLSTMLayer(4, 8, RNG)
        out = layer(batch())
        assert out.shape == (3, 5, 8)

    def test_stacked_shape_and_depth(self):
        stacked = StackedBiLSTM(4, 8, num_layers=3, rng=RNG)
        assert len(stacked.layers) == 3
        out = stacked(batch())
        assert out.shape == (3, 5, 8)

    def test_stacked_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            StackedBiLSTM(4, 8, num_layers=0)

    def test_bidirectional_sees_future(self):
        """Changing the last element must change the first output."""
        layer = BiLSTMLayer(2, 4, np.random.default_rng(0))
        x = RNG.normal(size=(1, 4, 2))
        y = x.copy()
        y[0, -1, :] += 10.0
        out_x = layer(Tensor(x)).numpy()[0, 0]
        out_y = layer(Tensor(y)).numpy()[0, 0]
        assert np.abs(out_x - out_y).max() > 1e-6

    def test_padding_invariance(self):
        layer = BiLSTMLayer(2, 4, np.random.default_rng(0))
        x = RNG.normal(size=(1, 3, 2))
        padded = np.concatenate([x, np.full((1, 2, 2), 77.0)], axis=1)
        out_short = layer(Tensor(x), np.array([3])).numpy()
        out_long = layer(Tensor(padded), np.array([3])).numpy()
        np.testing.assert_allclose(out_short, out_long[:, :3, :], atol=1e-12)


class TestLSTMDecoder:
    def test_expands_vector_to_sequence(self):
        decoder = LSTMDecoder(6, 4, RNG)
        out = decoder(Tensor(RNG.normal(size=(2, 6))), steps=7)
        assert out.shape == (2, 7, 4)

    def test_steps_differ(self):
        decoder = LSTMDecoder(3, 4, np.random.default_rng(0))
        out = decoder(Tensor(RNG.normal(size=(1, 3))), steps=3).numpy()
        assert np.abs(out[0, 0] - out[0, 1]).max() > 1e-9

    def test_gradients_flow(self):
        decoder = LSTMDecoder(3, 4, RNG)
        v = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        decoder(v, steps=4).sum().backward()
        assert v.grad is not None


class TestAttention:
    def test_masked_softmax_zeroes_invalid(self):
        scores = Tensor(np.zeros((2, 4)))
        mask = sequence_mask(np.array([2, 4]), 4)
        probs = masked_softmax(scores, mask, axis=1).numpy()
        np.testing.assert_allclose(probs[0, 2:], [0.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_aggregator_shape(self):
        attn = SelfAttentionAggregator(8, RNG)
        outputs = Tensor(RNG.normal(size=(3, 5, 8)))
        last = Tensor(RNG.normal(size=(3, 8)))
        assert attn(outputs, last).shape == (3, 8)

    def test_aggregator_rejects_wrong_hidden(self):
        attn = SelfAttentionAggregator(8, RNG)
        with pytest.raises(ValueError):
            attn(Tensor(RNG.normal(size=(3, 5, 4))),
                 Tensor(RNG.normal(size=(3, 4))))

    def test_aggregator_respects_mask(self):
        attn = SelfAttentionAggregator(4, np.random.default_rng(0))
        outputs = RNG.normal(size=(1, 3, 4))
        padded = np.concatenate([outputs, np.full((1, 2, 4), 1e3)], axis=1)
        last = Tensor(outputs[:, -1, :])
        short = attn(Tensor(outputs), last, np.array([3])).numpy()
        long = attn(Tensor(padded), last, np.array([3])).numpy()
        np.testing.assert_allclose(short, long, atol=1e-9)

    def test_aggregator_output_in_convex_hull(self):
        """Attention output is a convex combination of the hidden states."""
        attn = SelfAttentionAggregator(2, np.random.default_rng(0))
        outputs = RNG.normal(size=(1, 4, 2))
        result = attn(Tensor(outputs), Tensor(outputs[:, -1, :])).numpy()[0]
        assert result[0] <= outputs[0, :, 0].max() + 1e-9
        assert result[0] >= outputs[0, :, 0].min() - 1e-9
