"""Tests for the synthetic world, road network, simulator, and dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (DatasetConfig, EDGE_SPEEDS_KMH, HCTDataset,
                        LabeledSample, RoadNetwork, SimulatorConfig,
                        SyntheticWorld, Truck, TruckDaySimulator,
                        WorldConfig, generate_dataset, make_fleet)
from repro.geo import NANTONG_BBOX, haversine_m


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(WorldConfig(seed=3))


@pytest.fixture(scope="module")
def tiny_dataset():
    config = DatasetConfig(num_trajectories=12, num_trucks=6, seed=5)
    return generate_dataset(config)


class TestRoadNetwork:
    def test_graph_is_connected(self, world):
        import networkx as nx
        assert nx.is_connected(world.roads.graph)

    def test_edge_kinds_present(self, world):
        kinds = {attrs["kind"]
                 for _, _, attrs in world.roads.graph.edges(data=True)}
        assert kinds == set(EDGE_SPEEDS_KMH)

    def test_small_grid_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork(NANTONG_BBOX, nx_nodes=2, ny_nodes=2)

    def test_route_endpoints_exact(self, world):
        origin = (31.90, 120.60)
        destination = (32.20, 121.10)
        route = world.roads.route(origin, destination)
        assert (route.lats[0], route.lngs[0]) == origin
        assert (route.lats[-1], route.lngs[-1]) == destination
        assert route.length_m > haversine_m(*origin, *destination) * 0.9
        assert len(route.edge_kinds) == route.num_waypoints - 1

    def test_avoid_urban_reduces_urban_fraction(self, world):
        # A diagonal crossing the city center.
        origin = (NANTONG_BBOX.min_lat + 0.02, NANTONG_BBOX.min_lng + 0.02)
        destination = (NANTONG_BBOX.max_lat - 0.02, NANTONG_BBOX.max_lng - 0.02)
        through = world.roads.route(origin, destination, avoid_urban=False)
        around = world.roads.route(origin, destination, avoid_urban=True)
        assert (world.roads.urban_fraction(around)
                <= world.roads.urban_fraction(through))

    def test_route_same_point(self, world):
        route = world.roads.route((32.0, 120.8), (32.0, 120.8))
        assert route.num_waypoints >= 2
        assert route.length_m < 10_000


class TestWorld:
    def test_summary_counts(self, world):
        summary = world.summary()
        assert summary["lu_sites"] == world.config.num_lu_sites
        assert summary["rest_stops"] == world.config.num_rest_stops
        assert summary["depots"] == world.config.num_depots
        assert summary["pois"] > 500

    def test_lu_sites_are_chemical_categories(self, world):
        from repro.data import CHEMICAL_CATEGORIES
        assert all(s.category in CHEMICAL_CATEGORIES for s in world.lu_sites)

    def test_pois_inside_bbox(self, world):
        assert all(world.config.bbox.contains(p.lat, p.lng)
                   for p in world.pois)

    def test_deterministic_given_seed(self):
        a = SyntheticWorld(WorldConfig(seed=9))
        b = SyntheticWorld(WorldConfig(seed=9))
        assert [(s.lat, s.lng) for s in a.lu_sites] == \
               [(s.lat, s.lng) for s in b.lu_sites]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(num_lu_sites=2)


class TestSimulator:
    def test_truck_needs_sites(self, world):
        with pytest.raises(ValueError):
            Truck("t", world.depots[0], (world.lu_sites[0],))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(ordinary_stay_s=(60.0, 600.0))
        with pytest.raises(ValueError):
            SimulatorConfig(sampling_interval_s=10.0, sampling_jitter_s=20.0)

    def test_simulated_day_is_wellformed(self, world):
        rng = np.random.default_rng(1)
        fleet = make_fleet(world, 4, rng)
        sim = TruckDaySimulator(world)
        for truck in fleet:
            trajectory, label = sim.simulate(truck, "2020-09-01", rng)
            assert len(trajectory) > 50
            assert (np.diff(trajectory.ts) > 0).all()
            # Label ordering: loading before unloading.
            assert label.loading.end <= label.unloading.start
            # The truck is near the loading site during the loading stay.
            mid = (label.loading.start + label.loading.end) / 2
            idx = int(np.argmin(np.abs(trajectory.ts - mid)))
            d = haversine_m(trajectory.lats[idx], trajectory.lngs[idx],
                            label.loading_lat, label.loading_lng)
            assert d < 1_000  # within 1 km despite noise/outliers

    def test_loaded_leg_slower_on_average(self, world):
        """The loaded-speed signal LEAD exploits must exist in the data."""
        rng = np.random.default_rng(2)
        config = SimulatorConfig(outlier_probability=0.0, gps_noise_m=0.0)
        sim = TruckDaySimulator(world, config)
        fleet = make_fleet(world, 12, rng)
        loaded_speeds, empty_speeds = [], []
        for truck in fleet:
            trajectory, label = sim.simulate(truck, "d", rng)
            speeds = trajectory.segment_speeds_kmh()
            mids = (trajectory.ts[:-1] + trajectory.ts[1:]) / 2
            moving = speeds > 8.0
            loaded_mask = ((mids > label.loading.end)
                           & (mids < label.unloading.start) & moving)
            empty_mask = ((mids < label.loading.start)
                          | (mids > label.unloading.end)) & moving
            loaded_speeds.extend(speeds[loaded_mask])
            empty_speeds.extend(speeds[empty_mask])
        assert np.mean(loaded_speeds) < np.mean(empty_speeds) * 0.92

    def test_outliers_injected_when_enabled(self, world):
        rng = np.random.default_rng(3)
        config = SimulatorConfig(outlier_probability=0.05)
        sim = TruckDaySimulator(world, config)
        truck = make_fleet(world, 1, rng)[0]
        trajectory, _ = sim.simulate(truck, "d", rng)
        speeds = trajectory.segment_speeds_kmh()
        assert (speeds > 130.0).any()

    def test_stay_count_targets_buckets(self, world):
        rng = np.random.default_rng(4)
        sim = TruckDaySimulator(world)
        # Planning targets are deliberately shifted above the paper's 3-14
        # because dropped breaks and merged stays shrink the extracted count.
        counts = [sim._target_stay_count(rng) for _ in range(300)]
        assert min(counts) >= 3 and max(counts) <= 16


class TestDataset:
    def test_generation_counts(self, tiny_dataset):
        assert len(tiny_dataset) == 12
        assert len(tiny_dataset.truck_ids) == 6

    def test_split_by_truck_disjoint(self, tiny_dataset):
        train, val, test = tiny_dataset.split_by_truck((4, 1, 1), seed=0)
        assert len(train) + len(val) + len(test) == len(tiny_dataset)
        assert not (set(train.truck_ids) & set(val.truck_ids))
        assert not (set(train.truck_ids) & set(test.truck_ids))

    def test_split_rejects_bad_ratios(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split_by_truck((1, 1), seed=0)

    def test_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = tiny_dataset.save(tmp_path / "ds.json.gz")
        again = HCTDataset.load(path)
        assert len(again) == len(tiny_dataset)
        first_a = tiny_dataset[0]
        first_b = again[0]
        np.testing.assert_allclose(first_a.trajectory.lats,
                                   first_b.trajectory.lats)
        assert first_a.label == first_b.label

    def test_summary(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary["num_samples"] == 12
        assert summary["mean_points"] > 50

    def test_sample_dict_roundtrip(self, tiny_dataset):
        sample = tiny_dataset[0]
        again = LabeledSample.from_dict(sample.to_dict())
        assert again.label == sample.label

    def test_config_caps_trucks(self):
        config = DatasetConfig(num_trajectories=3, num_trucks=10)
        assert config.num_trucks == 3

    def test_determinism(self):
        a = generate_dataset(DatasetConfig(num_trajectories=4,
                                           num_trucks=2, seed=11))
        b = generate_dataset(DatasetConfig(num_trajectories=4,
                                           num_trucks=2, seed=11))
        np.testing.assert_allclose(a[0].trajectory.lats, b[0].trajectory.lats)
