"""Precision-tiered inference: dtype contexts, weight views, parity gates.

Covers the contracts of :mod:`repro.nn.precision` and their wiring
through the LEAD facade:

* a ``float64`` context is byte-identical to the pre-precision code,
  on both the fused kernels and the legacy tape path;
* float32 and float64 inference agree on verdicts for simulated fleets;
* cached weight views are invalidated by both parameter mutation paths
  (in-place optimizer steps, ``load_state_dict`` rebinds);
* the segment feature cache keeps per-dtype key spaces disjoint;
* detection provenance records the compute dtype, and a failing parity
  gate demotes to float64 with a degradation-style note;
* the precision context is thread-local;
* serialization persists float64 master weights regardless of the
  active context, and unknown recorded dtype policies are rejected.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DatasetConfig, SyntheticWorld, WorldConfig,
                        generate_dataset)
from repro.detection import DetectorTrainingConfig
from repro.encoding import AutoencoderTrainingConfig
from repro.errors import ArtifactCorruptedError
from repro.io import write_manifest
from repro.nn import (Adam, Linear, SGD, Tensor, active_dtype,
                      active_dtype_name, clear_weight_views, inference_dtype,
                      inference_param, no_grad, use_fused, weight_view,
                      weight_view_stats)
from repro.perf.cache import SegmentFeatureCache
from repro.pipeline import LEAD, LEADConfig


def tiny_config(**overrides) -> LEADConfig:
    base = dict(
        encoder_training=AutoencoderTrainingConfig(
            epochs=1, max_samples_per_epoch=30, batch_size=8, seed=0),
        detector_training=DetectorTrainingConfig(
            epochs=1, batch_size=4, seed=0),
        max_autoencoder_samples=40,
        seed=0)
    base.update(overrides)
    return LEADConfig(**base)


@pytest.fixture(scope="module")
def world_and_data():
    world = SyntheticWorld(WorldConfig(seed=11))
    dataset = generate_dataset(
        DatasetConfig(num_trajectories=14, num_trucks=5, seed=11),
        world=world)
    return world, dataset


@pytest.fixture(scope="module")
def fitted(world_and_data):
    world, dataset = world_and_data
    lead = LEAD(world.pois, tiny_config())
    lead.fit(dataset.samples[:8])
    return lead, [s.trajectory for s in dataset.samples[8:]]


class TestContext:
    def test_default_is_float64(self):
        assert active_dtype_name() == "float64"
        assert active_dtype() == np.float64

    def test_context_sets_and_restores(self):
        with inference_dtype("float32"):
            assert active_dtype_name() == "float32"
            assert active_dtype() == np.float32
            with inference_dtype("float64"):
                assert active_dtype_name() == "float64"
            assert active_dtype_name() == "float32"
        assert active_dtype_name() == "float64"

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="unknown inference dtype"):
            with inference_dtype("bfloat16"):
                pass

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_dtype("float32"):
                raise RuntimeError("boom")
        assert active_dtype_name() == "float64"

    def test_thread_isolation(self):
        """A float32 context in one thread is invisible to another."""
        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, str] = {}

        def holder():
            with inference_dtype("float32"):
                seen["holder"] = active_dtype_name()
                inside.set()
                release.wait(timeout=10.0)

        def observer():
            inside.wait(timeout=10.0)
            seen["observer"] = active_dtype_name()
            release.set()

        threads = [threading.Thread(target=holder),
                   threading.Thread(target=observer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert seen == {"holder": "float32", "observer": "float64"}


class TestWeightViews:
    def test_float64_request_returns_backing_array(self):
        p = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert weight_view(p, np.dtype(np.float64)) is p.data

    def test_view_is_cached_and_readonly(self):
        clear_weight_views()
        p = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        view = weight_view(p, np.dtype(np.float32))
        assert view.dtype == np.float32
        assert not view.flags.writeable
        again = weight_view(p, np.dtype(np.float32))
        assert again is view
        stats = weight_view_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_optimizer_step_invalidates(self):
        """In-place SGD/Adam updates must not serve stale casts."""
        for optimizer_cls in (SGD, Adam):
            layer = Linear(3, 2, np.random.default_rng(0))
            stale = weight_view(layer.weight, np.dtype(np.float32))
            optimizer = optimizer_cls(layer.parameters(), lr=0.5)
            layer.weight.grad = np.ones_like(layer.weight.data)
            layer.bias.grad = np.ones_like(layer.bias.data)
            optimizer.step()
            fresh = weight_view(layer.weight, np.dtype(np.float32))
            assert fresh is not stale
            np.testing.assert_array_equal(
                fresh, layer.weight.data.astype(np.float32))

    def test_load_state_dict_invalidates(self):
        source = Linear(3, 2, np.random.default_rng(1))
        target = Linear(3, 2, np.random.default_rng(2))
        stale = weight_view(target.weight, np.dtype(np.float32))
        target.load_state_dict(source.state_dict())
        fresh = weight_view(target.weight, np.dtype(np.float32))
        assert fresh is not stale
        np.testing.assert_array_equal(
            fresh, source.weight.data.astype(np.float32))

    def test_inference_param_passthrough_when_float64(self):
        p = Tensor(np.ones((2, 2)), requires_grad=True)
        assert inference_param(p) is p
        with inference_dtype("float32"), no_grad():
            wrapped = inference_param(p)
            assert wrapped is not p
            assert wrapped.data.dtype == np.float32

    def test_inference_param_passthrough_while_training(self):
        """With gradients live, float32 contexts never touch weights."""
        p = Tensor(np.ones((2, 2)), requires_grad=True)
        with inference_dtype("float32"):
            assert inference_param(p) is p  # grads enabled by default
            with no_grad():
                assert inference_param(p) is not p

    def test_thread_safety_under_eviction(self, monkeypatch):
        """Concurrent lookups with a tiny LRU never corrupt the cache.

        Regression: get/move_to_end/popitem used to interleave without a
        lock, so one thread could evict a key between another thread's
        get() and move_to_end(), raising KeyError.
        """
        from repro.nn import precision
        clear_weight_views()
        monkeypatch.setattr(precision, "_VIEW_CACHE_MAX", 8)
        params = [Tensor(np.full((4, 4), float(i)), requires_grad=True)
                  for i in range(32)]
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(300):
                    p = params[int(rng.integers(len(params)))]
                    view = weight_view(p, np.dtype(np.float32))
                    assert view.dtype == np.float32
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        clear_weight_views()


class TestFloat64BitIdentity:
    """An explicit float64 context is the pre-precision code, exactly."""

    def test_linear_fused_vs_tape(self):
        layer = Linear(4, 3, np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).normal(size=(5, 4)))
        with no_grad():
            fused_out = layer(x).numpy()
            with use_fused(False):
                tape_out = layer(x).numpy()
            with inference_dtype("float64"):
                context_out = layer(x).numpy()
        np.testing.assert_array_equal(fused_out, tape_out)
        np.testing.assert_array_equal(fused_out, context_out)

    def test_detect_matches_under_explicit_float64(self, fitted):
        lead, trajectories = fitted
        baseline = lead.detect(trajectories[0])
        with inference_dtype("float64"):
            inside = lead.detect(trajectories[0])
        assert baseline.pair == inside.pair
        np.testing.assert_array_equal(baseline.distribution,
                                      inside.distribution)
        assert baseline.provenance.compute_dtype == "float64"


class TestTrainingStaysFloat64:
    """float32 inputs never leak reduced precision into training."""

    def test_float32_input_coerced_while_grads_live(self):
        x32 = np.ones((2, 3), dtype=np.float32)
        assert Tensor(x32).data.dtype == np.float64
        with inference_dtype("float32"):
            # Gradients are still enabled: the float32 context must not
            # downgrade training inputs.
            assert Tensor(x32).data.dtype == np.float64
            with no_grad():
                assert Tensor(x32).data.dtype == np.float32
        with no_grad():
            # No float32 context: no-grad alone does not opt in.
            assert Tensor(x32).data.dtype == np.float64

    def test_float32_operand_coerced_in_training_ops(self):
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        x32 = np.ones((2, 3), dtype=np.float32)
        out = Tensor(x32) @ w
        assert out.data.dtype == np.float64
        out.sum().backward()
        assert w.grad is not None and w.grad.dtype == np.float64


class TestVerdictAgreement:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_fleet_verdicts_agree(self, fitted, seed):
        """float32 and float64 argmax verdicts agree on simulated fleets."""
        lead, _ = fitted
        world = SyntheticWorld(WorldConfig(seed=seed))
        dataset = generate_dataset(
            DatasetConfig(num_trajectories=3, num_trucks=2, seed=seed),
            world=world)
        processed = []
        for sample in dataset.samples:
            item = lead.processor.process(sample.trajectory)
            if item is not None:
                processed.append(item)
        if not processed:
            return
        with inference_dtype("float64"):
            reference = lead._predict_many(processed)
        with inference_dtype("float32"):
            candidate = lead._predict_many(processed)
        for ref, got in zip(reference, candidate):
            assert int(np.argmax(ref)) == int(np.argmax(got))
            assert float(np.abs(ref - got).max()) < 1e-3


class TestCacheDtypeIsolation:
    def test_disjoint_key_spaces(self, fitted):
        lead, trajectories = fitted
        assert lead.feature_cache is not None
        lead.feature_cache.clear()
        processed = lead.processor.process(trajectories[0])
        segment = next(iter(processed.candidates[0].segments()))
        f64 = lead.featurizer.segment_features(segment)
        assert f64.dtype == np.float64
        with inference_dtype("float32"):
            f32 = lead.featurizer.segment_features(segment)
        assert f32.dtype == np.float32
        counts = lead.feature_cache.dtype_key_counts()
        assert counts.get("float64", 0) >= 1
        assert counts.get("float32", 0) >= 1
        np.testing.assert_allclose(f32, f64.astype(np.float32))

    def test_cache_never_serves_across_dtypes(self):
        cache = SegmentFeatureCache(maxsize=16)

        class FakeTrajectory:
            lats = np.arange(4.0)
            lngs = np.arange(4.0)
            ts = np.arange(4.0)

        class FakeSegment:
            trajectory = FakeTrajectory()
            start, end = 0, 3

        segment = FakeSegment()
        value64 = np.zeros((2, 2))
        cache.put(segment, b"ctx", value64, "float64")
        assert cache.get(segment, b"ctx", "float32") is None
        assert cache.get(segment, b"ctx", "float64") is value64
        cache.put(segment, b"ctx", value64.astype(np.float32), "float32")
        assert cache.dtype_key_counts() == {"float64": 1, "float32": 1}


class TestPolicyAndProvenance:
    def test_float32_policy_records_dtype(self, world_and_data, fitted):
        world, dataset = world_and_data
        _, trajectories = fitted
        lead = LEAD(world.pois, tiny_config(inference_dtype="float32"))
        lead.fit(dataset.samples[:8])
        results = [r for r in lead.detect_batch(trajectories)
                   if r is not None]
        assert results
        report = lead.parity_report
        assert report is not None and report["passed"]
        for result in results:
            assert result.provenance.compute_dtype == "float32"
        # Strict eval paths stay at the ambient (float64) dtype.
        processed = lead.processor.process(trajectories[0])
        strict = lead.detect_processed(processed)
        assert strict.provenance.compute_dtype == "float64"

    def test_failed_gate_falls_back_with_note(self, world_and_data, fitted):
        world, dataset = world_and_data
        _, trajectories = fitted
        # A margin below float32 resolution forces the divergence check
        # to fail, exercising the demotion path end to end.
        lead = LEAD(world.pois, tiny_config(inference_dtype="float32",
                                            precision_margin=1e-12))
        lead.fit(dataset.samples[:8])
        results = [r for r in lead.detect_batch(trajectories)
                   if r is not None]
        assert results
        assert lead.parity_report is not None
        assert not lead.parity_report["passed"]
        for result in results:
            assert result.provenance.compute_dtype == "float64"
            assert any("fell back to float64" in note
                       for note in result.provenance.notes)

    def test_float64_policy_never_gates(self, fitted):
        lead, trajectories = fitted
        result = lead.detect(trajectories[0])
        assert result.provenance.compute_dtype == "float64"
        assert not any("precision" in note
                       for note in result.provenance.notes)

    def test_auto_policy_resolves(self, world_and_data, fitted):
        world, dataset = world_and_data
        _, trajectories = fitted
        lead = LEAD(world.pois, tiny_config(inference_dtype="auto"))
        lead.fit(dataset.samples[:8])
        result = lead.detect(trajectories[0])
        assert result.provenance.compute_dtype in ("float32", "float64")
        assert lead.parity_report is not None

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="inference_dtype"):
            tiny_config(inference_dtype="float16")

    def test_gate_degrades_when_detector_missing(self, world_and_data,
                                                 fitted, tmp_path):
        """A degraded model must not crash the lazy parity gate.

        Regression: with a float32/auto policy and a detector lost to
        ``load(strict=False)``, the gate's batched forward raised
        DetectorUnavailableError out of ``detect`` instead of pinning
        float64 and letting the tier chain answer.
        """
        world, _ = world_and_data
        lead, trajectories = fitted
        directory = lead.save(tmp_path / "model")
        (directory / "forward.npz").unlink()
        degraded = LEAD(world.pois, tiny_config(inference_dtype="float32"))
        degraded.load(directory, strict=False)
        assert degraded.forward_detector is None
        result = degraded.detect(trajectories[0])
        assert result is not None
        assert result.provenance.compute_dtype == "float64"
        assert result.provenance.tier in ("backward-only", "sp-r",
                                          "heuristic")
        assert any("parity gate could not run" in note
                   for note in result.provenance.notes)
        report = degraded.parity_report
        assert report is not None and not report["passed"]
        assert "error" in report

    def test_weight_swap_resets_committed_gate(self, world_and_data,
                                               fitted, tmp_path):
        """fit()/load() invalidate a previously committed precision
        decision, so stale parity passes never survive a weight swap."""
        world, _ = world_and_data
        lead, trajectories = fitted
        directory = lead.save(tmp_path / "model")
        fresh = LEAD(world.pois, tiny_config(inference_dtype="float32"))
        fresh.load(directory)
        assert fresh.parity_report is None
        result = fresh.detect(trajectories[0])
        assert result is not None
        assert fresh.parity_report is not None  # lazy gate committed
        if fresh.parity_report["passed"]:
            # Committed from a single-trajectory slice: the thin
            # calibration is flagged in the provenance.
            assert any("small calibration" in note
                       for note in result.provenance.notes)
        fresh.load(directory)
        assert fresh.parity_report is None
        assert fresh._effective_dtype is None


class TestSerialization:
    def test_masters_stay_float64_under_float32_context(self, fitted,
                                                        tmp_path):
        lead, _ = fitted
        with inference_dtype("float32"):
            lead.save(tmp_path / "model")
        for name, module in lead._detector_modules().items():
            for key, value in module.state_dict().items():
                assert value.dtype == np.float64, (name, key)
        with np.load(tmp_path / "model" / "autoencoder.npz") as archive:
            assert all(archive[name].dtype == np.float64
                       for name in archive.files)

    def test_roundtrip_bit_identical_regardless_of_context(
            self, world_and_data, fitted, tmp_path):
        world, _ = world_and_data
        lead, trajectories = fitted
        baseline = lead.detect(trajectories[0])
        with inference_dtype("float32"):
            lead.save(tmp_path / "model")
        fresh = LEAD(world.pois, tiny_config())
        with inference_dtype("float32"):
            fresh.load(tmp_path / "model")
        restored = fresh.detect(trajectories[0])
        assert restored.pair == baseline.pair
        np.testing.assert_array_equal(restored.distribution,
                                      baseline.distribution)

    def test_manifest_records_policy(self, world_and_data, tmp_path):
        world, dataset = world_and_data
        lead = LEAD(world.pois, tiny_config(inference_dtype="float32"))
        lead.fit(dataset.samples[:8])
        lead.save(tmp_path / "model")
        import json
        manifest = json.loads(
            (tmp_path / "model" / "manifest.json").read_text())
        assert manifest["meta"]["dtype_policy"] == "float32"

    def test_unknown_recorded_policy_rejected(self, world_and_data, fitted,
                                              tmp_path):
        world, _ = world_and_data
        lead, _ = fitted
        directory = lead.save(tmp_path / "model")
        files = [p.name for p in directory.iterdir()
                 if p.name != "manifest.json"]
        write_manifest(directory, files, kind="lead-model",
                       meta={"dtype_policy": "bfloat16"})
        fresh = LEAD(world.pois, tiny_config())
        with pytest.raises(ArtifactCorruptedError,
                           match="unknown recorded dtype policy"):
            fresh.load(directory)

    def test_load_runs_gate_on_calibration(self, world_and_data, fitted,
                                           tmp_path):
        world, _ = world_and_data
        lead, trajectories = fitted
        directory = lead.save(tmp_path / "model")
        fresh = LEAD(world.pois, tiny_config(inference_dtype="float32"))
        calibration = [p for p in (fresh.processor.process(t)
                                   for t in trajectories)
                       if p is not None]
        fresh.load(directory, calibration=calibration)
        assert fresh.parity_report is not None
        assert fresh.parity_report["num_calibration"] == len(calibration)
